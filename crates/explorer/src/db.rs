//! The replay database and the testing campaign driver.
//!
//! "The event sequences generated are stored in a database and used for
//! backtracking and replay" (§5). A [`ReplayDb`] records, for every executed
//! test, the event sequence, the scheduler seed and the decision vector; a
//! stored entry replays to a bit-identical trace via the scripted scheduler.

use droidracer_framework::{compile, App, UiEvent};
use droidracer_sim::{run, ScriptedScheduler, SimConfig, SimResult};

use crate::explore::{enumerate_sequences, run_sequence, ExploreError, ExplorerConfig};

/// One recorded test execution.
#[derive(Debug, Clone)]
pub struct TestEntry {
    /// Sequence number within the campaign.
    pub id: usize,
    /// The UI event sequence driven.
    pub events: Vec<UiEvent>,
    /// Scheduler seed used for the original run.
    pub seed: u64,
    /// Recorded decision vector (replays the exact schedule).
    pub decisions: Vec<usize>,
    /// Whether the original run reached quiescence.
    pub completed: bool,
    /// Length of the emitted trace.
    pub trace_len: usize,
}

/// A store of executed tests supporting exact replay.
#[derive(Debug, Clone, Default)]
pub struct ReplayDb {
    entries: Vec<TestEntry>,
}

impl ReplayDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a run.
    pub fn record(&mut self, events: Vec<UiEvent>, seed: u64, result: &SimResult) -> usize {
        let id = self.entries.len();
        self.entries.push(TestEntry {
            id,
            events,
            seed,
            decisions: result.decisions.clone(),
            completed: result.completed,
            trace_len: result.trace.len(),
        });
        id
    }

    /// All entries.
    pub fn entries(&self) -> &[TestEntry] {
        &self.entries
    }

    /// Entry by id.
    pub fn entry(&self, id: usize) -> Option<&TestEntry> {
        self.entries.get(id)
    }

    /// Number of stored tests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Replays entry `id` against `app`, reproducing the recorded schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError`] if the app no longer compiles with the
    /// stored events, and `None` if the id is unknown.
    pub fn replay(&self, app: &App, id: usize) -> Option<Result<SimResult, ExploreError>> {
        let entry = self.entry(id)?;
        let compiled = match compile(app, &entry.events) {
            Ok(c) => c,
            Err(e) => return Some(Err(e.into())),
        };
        let result = run(
            &compiled.program,
            &mut ScriptedScheduler::new(entry.decisions.clone()),
            &SimConfig::default(),
        )
        .map_err(ExploreError::from);
        Some(result)
    }
}

/// A finished testing campaign: every enumerated sequence executed once.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The replay database of all executed tests.
    pub db: ReplayDb,
    /// The traces paired with their event sequences, in DFS order.
    pub runs: Vec<(Vec<UiEvent>, SimResult)>,
}

/// Runs a full campaign: enumerate sequences depth-first (bounded by the
/// config) and execute each one.
///
/// # Errors
///
/// Returns the first compile/simulation failure; individual incomplete runs
/// (cut off or blocked) are recorded, not errors.
pub fn run_campaign(app: &App, config: &ExplorerConfig) -> Result<Campaign, ExploreError> {
    run_campaign_parallel(app, config, 1)
}

/// Like [`run_campaign`], executing the sequences on `threads` workers.
///
/// Every sequence runs under the same scheduler seed it gets in the
/// sequential campaign, and the database is recorded in DFS enumeration
/// order after the fan-out joins, so the resulting [`Campaign`] — entry
/// ids, decision vectors, traces — is identical for every thread count.
///
/// # Errors
///
/// Returns the first compile/simulation failure (in enumeration order, not
/// completion order); individual incomplete runs are recorded, not errors.
pub fn run_campaign_parallel(
    app: &App,
    config: &ExplorerConfig,
    threads: usize,
) -> Result<Campaign, ExploreError> {
    run_campaign_profiled(app, config, threads).map(|(campaign, _)| campaign)
}

/// Like [`run_campaign_parallel`], additionally returning the campaign's
/// span tree: a root `explore` span with one `explore[i]` child per
/// enumerated sequence (in DFS enumeration order for every thread count),
/// each carrying `trace_ops` and `completed` counters.
///
/// # Errors
///
/// Returns the first compile/simulation failure (in enumeration order, not
/// completion order); individual incomplete runs are recorded, not errors.
pub fn run_campaign_profiled(
    app: &App,
    config: &ExplorerConfig,
    threads: usize,
) -> Result<(Campaign, droidracer_obs::SpanRecord), ExploreError> {
    let sequences = enumerate_sequences(app, config);
    let (results, span) =
        droidracer_core::par_map_profiled(&sequences, threads, "explore", |events, rec| {
            let result = run_sequence(app, events, config);
            if let Ok(result) = &result {
                rec.counter("trace_ops", result.trace.len() as u64);
                rec.counter("completed", u64::from(result.completed));
            }
            result
        });
    let mut db = ReplayDb::new();
    let mut runs = Vec::new();
    for (events, result) in sequences.into_iter().zip(results) {
        let result = result?;
        db.record(events.clone(), config.seed, &result);
        runs.push((events, result));
    }
    Ok((Campaign { db, runs }, span))
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidracer_framework::{AppBuilder, Stmt};
    use droidracer_trace::validate;

    fn app() -> App {
        let mut b = AppBuilder::new("Db");
        let a = b.activity("Main");
        let v = b.var("o", "C.f");
        b.button(a, "go", vec![Stmt::Write(v)]);
        b.finish()
    }

    #[test]
    fn campaign_runs_every_sequence() {
        let app = app();
        let config = ExplorerConfig {
            max_depth: 2,
            ..ExplorerConfig::default()
        };
        let campaign = run_campaign(&app, &config).expect("campaign runs");
        assert_eq!(campaign.db.len(), campaign.runs.len());
        assert!(!campaign.db.is_empty());
        for (events, result) in &campaign.runs {
            assert_eq!(validate(&result.trace), Ok(()), "sequence {events:?}");
        }
    }

    #[test]
    fn replay_reproduces_exact_trace() {
        let app = app();
        let config = ExplorerConfig {
            max_depth: 1,
            seed: 99,
            ..ExplorerConfig::default()
        };
        let campaign = run_campaign(&app, &config).expect("campaign runs");
        for (id, (_, original)) in campaign.runs.iter().enumerate() {
            let replayed = campaign
                .db
                .replay(&app, id)
                .expect("entry exists")
                .expect("replay runs");
            assert_eq!(replayed.trace.ops(), original.trace.ops(), "entry {id}");
        }
    }

    #[test]
    fn unknown_entry_returns_none() {
        let db = ReplayDb::new();
        assert!(db.replay(&app(), 0).is_none());
        assert!(db.entry(3).is_none());
    }

    #[test]
    fn profiled_campaign_has_stable_span_structure() {
        let app = app();
        let config = ExplorerConfig {
            max_depth: 2,
            ..ExplorerConfig::default()
        };
        let (campaign, base) = run_campaign_profiled(&app, &config, 1).expect("campaign runs");
        assert_eq!(base.name, "explore");
        assert_eq!(base.children.len(), campaign.runs.len());
        assert!(base.children[0].counters.iter().any(|(k, _)| k == "trace_ops"));
        for threads in [2, 8] {
            let (c, span) = run_campaign_profiled(&app, &config, threads).expect("campaign runs");
            assert_eq!(c.db.len(), campaign.db.len(), "threads={threads}");
            assert_eq!(span.structure(), base.structure(), "threads={threads}");
        }
    }

    #[test]
    fn record_captures_metadata() {
        let app = app();
        let config = ExplorerConfig::default();
        let seqs = enumerate_sequences(&app, &config);
        let result = run_sequence(&app, &seqs[0], &config).expect("runs");
        let mut db = ReplayDb::new();
        let id = db.record(seqs[0].clone(), config.seed, &result);
        let entry = db.entry(id).expect("stored");
        assert_eq!(entry.trace_len, result.trace.len());
        assert_eq!(entry.completed, result.completed);
        assert_eq!(entry.events, seqs[0]);
    }
}
