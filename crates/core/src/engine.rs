//! The happens-before fixpoint engine.
//!
//! Computes the paper's relation `≺ = ≺st ∪ ≺mt` (Figures 6 and 7) over the
//! nodes of an [`HbGraph`]. The two sub-relations are kept in separate bit
//! matrices because the paper deliberately restricts transitivity:
//!
//! * TRANS-ST closes `≺st` over same-thread chains only;
//! * TRANS-MT derives `αi ≺mt αj` from `αi ≺ αk ≺ αj` only when `αi` and
//!   `αj` run on *different* threads.
//!
//! Consequently two tasks on one thread are never ordered transitively
//! through another thread (e.g. via a lock hand-off) — the naive closure of
//! the union graph would derive exactly those spurious orderings, and the
//! unrestricted mode ([`RuleSet::restricted_transitivity`]` = false`)
//! reproduces that flawed behaviour for the ablation study.
//!
//! The generator rules FIFO and NOPRE consult the combined relation while
//! producing new `≺st` edges, so the whole computation is a worklist
//! fixpoint: saturate transitivity, fire generator rules, repeat until no
//! rule adds an edge.

use std::collections::HashMap;
use std::time::Instant;

use droidracer_trace::{LockId, Op, OpKind, PostKind, TaskId, ThreadId, Trace, TraceIndex};

use crate::bitmatrix::{BitIter, BitMatrix, BitSet};
use crate::graph::{DirectEdges, HbGraph, NodeId};
use crate::robust::{Budget, BudgetExhausted, BudgetReason};
use crate::rules::{HbConfig, RuleSet};
use crate::simd;

/// Minimum rows in one level batch before the parallel closure dispatches
/// it to the worker pool. Program-order chains make the direct-edge DAG
/// deep and narrow, so many levels hold only a handful of rows — those are
/// recomputed inline, where spawning would cost more than the work.
const PAR_GROUP_MIN: usize = 16;

/// Hot-path counters recorded while computing one happens-before relation.
///
/// Every field is deterministic for a given trace and configuration: the
/// engine itself is sequential and iteration orders are fixed, so two runs
/// over the same input produce identical stats. The counters separate the
/// *base* edges (instantaneous rules: program order, POST, ENABLE, FORK,
/// JOIN, LOCK, ATTACH-Q) from edges derived by the two transitivity rules
/// and by the generator rules FIFO and NOPRE — i.e. where the fixpoint
/// actually spends its effort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Edges added by the instantaneous base rules (and assumed edges).
    pub base_edges: usize,
    /// FIFO firings that produced a new `end(A) ≺ begin(B)` edge.
    pub fifo_fired: usize,
    /// NOPRE firings that produced a new `end(A) ≺ begin(B)` edge.
    pub nopre_fired: usize,
    /// Same-thread edges derived by TRANS-ST (or, in the naive unrestricted
    /// mode, all edges derived by the plain transitive closure).
    pub trans_st_edges: usize,
    /// Cross-thread edges derived by TRANS-MT (zero in the naive mode).
    pub trans_mt_edges: usize,
    /// Fixpoint rounds (saturate + generators) until convergence.
    pub rounds: usize,
    /// 64-bit words actually touched by bit-matrix row operations during
    /// saturation — the engine's dominant unit of work. Rows carry sparse
    /// `[lo, hi)` nonzero word bounds, so this counts only words inside the
    /// bounds of the rows involved, not whole matrix rows.
    pub word_ops: u64,
    /// Nodes popped off the dirty-propagation worklist in incremental
    /// rounds (rounds after the first). Zero for the reference engine.
    pub worklist_pops: u64,
    /// Rows recomputed by saturation: all rows in round one, only dirty
    /// rows afterwards. Zero for the reference engine.
    pub rows_recomputed: u64,
    /// Words the row bounds allowed saturation to skip — the all-zero
    /// prefix/suffix words a whole-row scan would have touched.
    pub skipped_words: u64,
    /// Row batches dispatched to the intra-trace worker pool by the
    /// parallel closure. Zero on the sequential path (`intra_threads ≤ 1`)
    /// and independent of the worker count otherwise — the level partition
    /// is a function of the direct-edge DAG alone.
    pub batches: u64,
    /// Direct edges between rows recomputed in the same saturation — the
    /// dependencies that force rows into different level batches. Counted
    /// only when the parallel closure is active; like `batches`, identical
    /// for every worker count ≥ 2.
    pub batch_conflicts: u64,
}

impl EngineStats {
    /// Total edges derived by non-base rules (transitivity + generators).
    pub fn derived_edges(&self) -> usize {
        self.trans_st_edges + self.trans_mt_edges + self.fifo_fired + self.nopre_fired
    }

    /// Adds every counter of `other` into `self` — used to aggregate
    /// per-trace stats into corpus totals.
    pub fn absorb(&mut self, other: &EngineStats) {
        self.base_edges += other.base_edges;
        self.fifo_fired += other.fifo_fired;
        self.nopre_fired += other.nopre_fired;
        self.trans_st_edges += other.trans_st_edges;
        self.trans_mt_edges += other.trans_mt_edges;
        self.rounds += other.rounds;
        self.word_ops += other.word_ops;
        self.worklist_pops += other.worklist_pops;
        self.rows_recomputed += other.rows_recomputed;
        self.skipped_words += other.skipped_words;
        self.batches += other.batches;
        self.batch_conflicts += other.batch_conflicts;
    }

    /// Per-counter difference `self - baseline`: the work done since
    /// `baseline` was captured. Sessions that drive several closure passes
    /// over one accumulating counter set (the streaming engine's per-chunk
    /// accounting) capture a baseline before each pass and report the delta,
    /// so absorbing the deltas never double-counts the shared prefix.
    ///
    /// Every counter of `baseline` must be `<=` the matching counter of
    /// `self` (counters are monotone within a session).
    pub fn since(&self, baseline: &EngineStats) -> EngineStats {
        EngineStats {
            base_edges: self.base_edges - baseline.base_edges,
            fifo_fired: self.fifo_fired - baseline.fifo_fired,
            nopre_fired: self.nopre_fired - baseline.nopre_fired,
            trans_st_edges: self.trans_st_edges - baseline.trans_st_edges,
            trans_mt_edges: self.trans_mt_edges - baseline.trans_mt_edges,
            rounds: self.rounds - baseline.rounds,
            word_ops: self.word_ops - baseline.word_ops,
            worklist_pops: self.worklist_pops - baseline.worklist_pops,
            rows_recomputed: self.rows_recomputed - baseline.rows_recomputed,
            skipped_words: self.skipped_words - baseline.skipped_words,
            batches: self.batches - baseline.batches,
            batch_conflicts: self.batch_conflicts - baseline.batch_conflicts,
        }
    }
}

/// The computed happens-before relation for one trace.
#[derive(Debug, Clone)]
pub struct HappensBefore {
    graph: HbGraph,
    relation: Relation,
    stats: EngineStats,
    config: HbConfig,
}

#[derive(Debug, Clone)]
enum Relation {
    /// The paper's relation: `st` holds same-thread pairs, `mt` cross-thread
    /// pairs.
    Restricted { st: BitMatrix, mt: BitMatrix },
    /// Naive transitive closure of the union of all base edges.
    Plain(BitMatrix),
}

impl HappensBefore {
    /// Computes the happens-before relation of `trace` under `config`.
    ///
    /// Cancelled posts should be stripped first (see
    /// [`Trace::without_cancelled`]); the top-level detector does this
    /// automatically.
    pub fn compute(trace: &Trace, config: HbConfig) -> Self {
        let index = trace.index();
        Self::compute_with_index(trace, &index, config)
    }

    /// Computes the relation with saturation parallelized *within* the
    /// trace: rows to recompute are partitioned into batches of mutually
    /// unreachable rows (equal longest-path level in the direct-edge DAG)
    /// and recomputed concurrently on `threads` scoped workers, each as a
    /// pure function of already-final rows, followed by a deterministic
    /// single-threaded write-back.
    ///
    /// Matrices **and** every [`EngineStats`] counter except
    /// `batches`/`batch_conflicts` are bit-identical to
    /// [`HappensBefore::compute`] for every `threads` value — the partition
    /// only reschedules independent work (asserted across 1/2/8 workers by
    /// `tests/parallel_closure.rs`). `threads ≤ 1` *is* the sequential
    /// engine, batch counters included.
    pub fn compute_parallel(trace: &Trace, config: HbConfig, threads: usize) -> Self {
        let index = trace.index();
        // invariant: an unlimited budget never exhausts.
        Self::compute_inner(trace, &index, config, &[], false, &Budget::unlimited(), threads)
            .expect("unlimited budget cannot exhaust")
    }

    /// Like [`HappensBefore::compute`] but reuses a prebuilt [`TraceIndex`].
    pub fn compute_with_index(trace: &Trace, index: &TraceIndex, config: HbConfig) -> Self {
        Self::compute_with_assumed_edges(trace, index, config, &[])
    }

    /// Computes the relation with additional *assumed* orderings injected as
    /// base edges (`(i, j)` meaning `αi ≺ αj`, trace indices with `i < j`).
    ///
    /// Used by race-coverage analysis (à la Raychev et al., which §6 points
    /// to for ad-hoc synchronization): assuming one race resolves in trace
    /// order may order — *cover* — other races.
    ///
    /// # Panics
    ///
    /// Panics if an assumed edge points backwards (`i ≥ j`) or out of range.
    pub fn compute_with_assumed_edges(
        trace: &Trace,
        index: &TraceIndex,
        config: HbConfig,
        assumed: &[(usize, usize)],
    ) -> Self {
        // invariant: an unlimited budget never exhausts.
        Self::compute_inner(trace, index, config, assumed, false, &Budget::unlimited(), 1)
            .expect("unlimited budget cannot exhaust")
    }

    /// Computes the relation under a resource [`Budget`].
    ///
    /// The engine polls the budget cooperatively (per saturated row, per
    /// worklist pop) and the matrix-allocation cap is checked up front, so
    /// an adversarial trace can neither hang nor OOM a budgeted run.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] — carrying the partial [`EngineStats`]
    /// accumulated up to the cutoff — when a limit trips.
    pub fn compute_budgeted(
        trace: &Trace,
        config: HbConfig,
        budget: &Budget,
    ) -> Result<Self, BudgetExhausted> {
        let index = trace.index();
        Self::compute_inner(trace, &index, config, &[], false, budget, 1)
    }

    /// Computes the relation with the retained naive reference saturation:
    /// every fixpoint round rescans every row of every matrix, exactly as
    /// the engine did before the incremental worklist rewrite.
    ///
    /// This exists for differential testing (`tests/closure_equivalence.rs`
    /// asserts the incremental engine's matrices are bit-identical to this
    /// one's) and is not meant for production use — its `word_ops` grow
    /// with matrix size instead of with change.
    pub fn compute_reference(trace: &Trace, config: HbConfig) -> Self {
        let index = trace.index();
        // invariant: an unlimited budget never exhausts.
        Self::compute_inner(trace, &index, config, &[], true, &Budget::unlimited(), 1)
            .expect("unlimited budget cannot exhaust")
    }

    /// Computes the relation over a prebuilt [`HbGraph`], so callers that
    /// time or otherwise observe the pipeline can separate graph
    /// construction (+ §6 node merging) from the fixpoint closure.
    ///
    /// `graph` must have been built from `trace`/`index` with the same
    /// `merge_accesses` setting as `config` — `Analysis` guarantees this;
    /// ad-hoc callers should prefer [`HappensBefore::compute`].
    pub fn compute_on_graph(
        trace: &Trace,
        index: &TraceIndex,
        graph: HbGraph,
        config: HbConfig,
    ) -> Self {
        Self::compute_on_graph_parallel(trace, index, graph, config, 1)
    }

    /// [`HappensBefore::compute_on_graph`] with the intra-trace parallel
    /// closure on `threads` workers; see [`HappensBefore::compute_parallel`]
    /// for the determinism contract.
    pub fn compute_on_graph_parallel(
        trace: &Trace,
        index: &TraceIndex,
        graph: HbGraph,
        config: HbConfig,
        threads: usize,
    ) -> Self {
        // invariant: an unlimited budget never exhausts.
        Self::close_over(trace, index, config, &[], false, graph, &Budget::unlimited(), threads)
            .expect("unlimited budget cannot exhaust")
    }

    /// Like [`HappensBefore::compute_on_graph`] but under a [`Budget`];
    /// see [`HappensBefore::compute_budgeted`].
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when a limit trips.
    pub fn compute_on_graph_budgeted(
        trace: &Trace,
        index: &TraceIndex,
        graph: HbGraph,
        config: HbConfig,
        budget: &Budget,
    ) -> Result<Self, BudgetExhausted> {
        Self::compute_on_graph_budgeted_parallel(trace, index, graph, config, budget, 1)
    }

    /// [`HappensBefore::compute_on_graph_budgeted`] with the intra-trace
    /// parallel closure on `threads` workers. A *limited* budget forces the
    /// sequential path regardless of `threads` — the cooperative poll
    /// granularity (per saturated row, per worklist pop) is part of the
    /// budget contract and must not depend on scheduling.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when a limit trips.
    pub fn compute_on_graph_budgeted_parallel(
        trace: &Trace,
        index: &TraceIndex,
        graph: HbGraph,
        config: HbConfig,
        budget: &Budget,
        threads: usize,
    ) -> Result<Self, BudgetExhausted> {
        Self::close_over(trace, index, config, &[], false, graph, budget, threads)
    }

    #[allow(clippy::too_many_arguments)]
    fn compute_inner(
        trace: &Trace,
        index: &TraceIndex,
        config: HbConfig,
        assumed: &[(usize, usize)],
        reference: bool,
        budget: &Budget,
        intra_threads: usize,
    ) -> Result<Self, BudgetExhausted> {
        // Anchor the assumed edges precisely: their endpoints must not be
        // swallowed by access blocks, or the injected edge would order whole
        // blocks the assumption says nothing about.
        let breaks: Vec<usize> = assumed.iter().flat_map(|&(i, j)| [i, j]).collect();
        let graph = HbGraph::build_with_breaks(trace, index, config.merge_accesses, &breaks);
        Self::close_over(trace, index, config, assumed, reference, graph, budget, intra_threads)
    }

    #[allow(clippy::too_many_arguments)]
    fn close_over(
        trace: &Trace,
        index: &TraceIndex,
        config: HbConfig,
        assumed: &[(usize, usize)],
        reference: bool,
        graph: HbGraph,
        budget: &Budget,
        intra_threads: usize,
    ) -> Result<Self, BudgetExhausted> {
        // The matrices are the engine's dominant allocation; enforce the
        // memory cap before allocating rather than after the OOM.
        if let Some(cap) = budget.max_matrix_bits {
            let n = graph.node_count() as u64;
            let matrices: u64 = if config.rules.restricted_transitivity { 2 } else { 1 };
            if n.saturating_mul(n).saturating_mul(matrices) > cap {
                return Err(BudgetExhausted {
                    reason: BudgetReason::MatrixBits,
                    partial: EngineStats::default(),
                    ops_processed: 0,
                });
            }
        }
        let mut builder =
            EngineState::new(trace, index, &graph, config.rules, reference, budget, intra_threads);
        builder.add_base_edges();
        for &(i, j) in assumed {
            assert!(i < j, "assumed edges must point forward");
            let (a, b) = (graph.node_of(i), graph.node_of(j));
            builder.add_edge(a, b);
        }
        let (base_st, base_mt) = builder.relation_sizes();
        builder.stats.base_edges = base_st + base_mt;
        if let Err(reason) = builder.run_fixpoint() {
            return Err(BudgetExhausted {
                reason,
                ops_processed: builder.stats.word_ops,
                partial: builder.stats,
            });
        }
        Ok(HappensBefore {
            relation: builder.relation,
            stats: builder.stats,
            graph,
            config,
        })
    }

    /// The underlying graph (nodes, merging information).
    pub fn graph(&self) -> &HbGraph {
        &self.graph
    }

    /// The configuration used.
    pub fn config(&self) -> &HbConfig {
        &self.config
    }

    /// Number of fixpoint rounds until convergence.
    pub fn rounds(&self) -> usize {
        self.stats.rounds
    }

    /// Hot-path counters recorded while computing this relation.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Whether node `a` happens before node `b`.
    pub fn ordered_nodes(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        match &self.relation {
            Relation::Restricted { st, mt } => st.get(a, b) || mt.get(a, b),
            Relation::Plain(r) => r.get(a, b),
        }
    }

    /// Whether the operation at trace index `i` happens before the one at
    /// `j` (`αi ≺ αj`). Reflexive, as in the paper.
    pub fn ordered(&self, i: usize, j: usize) -> bool {
        if i == j {
            return true;
        }
        let (a, b) = (self.graph.node_of(i), self.graph.node_of(j));
        if a == b {
            // Same access block: same thread, same task, no intervening
            // synchronization — program order applies.
            return i < j;
        }
        self.ordered_nodes(a, b)
    }

    /// Whether the two operations are unordered in both directions
    /// (the race condition on ordering).
    pub fn concurrent(&self, i: usize, j: usize) -> bool {
        !self.ordered(i, j) && !self.ordered(j, i)
    }

    /// Total number of ordered node pairs in the closed relation.
    pub fn ordered_pairs(&self) -> usize {
        match &self.relation {
            Relation::Restricted { st, mt } => st.count_ones() + mt.count_ones(),
            Relation::Plain(r) => r.count_ones(),
        }
    }

    /// The closed relation's matrices: `(st, Some(mt))` under restricted
    /// transitivity, `(plain, None)` in the naive ablation mode. Exposed for
    /// the differential equivalence suite.
    pub fn relation_matrices(&self) -> (&BitMatrix, Option<&BitMatrix>) {
        match &self.relation {
            Relation::Restricted { st, mt } => (st, Some(mt)),
            Relation::Plain(r) => (r, None),
        }
    }
}

/// A FIFO/NOPRE candidate: a pair of tasks executed on the same thread,
/// `first` ending before `second` begins, not yet derived to be ordered.
#[derive(Debug, Clone, Copy)]
struct TaskPairCandidate {
    end_node: NodeId,
    begin_node: NodeId,
    /// Post node + kind of the first task, if posted.
    post1: Option<(NodeId, PostKind)>,
    /// Post node + kind of the second task, if posted.
    post2: Option<(NodeId, PostKind)>,
    first_task: TaskId,
}

struct EngineState<'a> {
    trace: &'a Trace,
    index: &'a TraceIndex,
    graph: &'a HbGraph,
    rules: RuleSet,
    relation: Relation,
    candidates: Vec<TaskPairCandidate>,
    /// Nodes of each task, used by NOPRE.
    task_nodes: HashMap<TaskId, Vec<NodeId>>,
    stats: EngineStats,
    /// Run the retained whole-matrix reference saturation instead of the
    /// incremental worklist (differential-testing aid).
    reference: bool,
    /// Direct same-thread edges — base rules, assumed edges and generator
    /// firings, before any saturation. In `Plain` mode this holds *all*
    /// direct edges (the naive closure does not split by thread).
    st_edges: DirectEdges,
    /// Direct cross-thread edges (empty in `Plain` mode). The predecessor
    /// lists of both edge sets drive dirty propagation.
    mt_edges: DirectEdges,
    /// Sources `a` of direct edges added since the last saturation: a row
    /// `x` can only change if `x` reaches one of them.
    dirty_sources: Vec<NodeId>,
    /// Rows the last saturation recomputed — generator candidates are
    /// re-examined only if they watch one of these.
    last_dirty: Vec<NodeId>,
    /// Membership mark for the dirty backward traversal.
    dirty_mark: BitSet,
    /// Scratch stack, reused for dirty propagation and as the TRANS-MT
    /// composition frontier.
    frontier: Vec<NodeId>,
    /// Candidate indices per watched node: a FIFO candidate watches its
    /// first post, a NOPRE candidate every node of its first task — exactly
    /// the rows whose recomputation can flip the rule's guard.
    watchers: Vec<Vec<u32>>,
    /// Per-candidate examine-epoch stamp deduplicating the examine list.
    examine_stamp: Vec<u32>,
    /// Monotone epoch, bumped once per incremental [`Self::fire_generators`]
    /// sweep. Deliberately *not* derived from `stats.rounds`: stats may be
    /// rebaselined between passes of a multi-pass (streaming) session, and a
    /// stamp reused across passes would silently skip candidates whose
    /// guards flipped in the later pass.
    examine_epoch: u32,
    /// Candidates that fired or whose conclusion was derived otherwise.
    candidate_done: Vec<bool>,
    /// Scratch for the per-round examine list.
    examine_buf: Vec<u32>,
    /// Cooperative budget poller, consulted at loop granularity.
    poll: BudgetPoll,
    /// Worker count for the intra-trace parallel closure; `≤ 1` keeps every
    /// saturation on the sequential in-place path.
    intra_threads: usize,
    /// Scratch: per-node longest-path level in the union direct-edge DAG —
    /// the batch-partition key of the parallel closure, recomputed at each
    /// saturation (generator firings grow the DAG between rounds).
    levels: Vec<u32>,
}

/// Cooperative budget polling for the saturation loops.
///
/// Unlimited budgets reduce every check to one branch on `limited`, keeping
/// the unbudgeted hot path (and its deterministic counters) untouched. The
/// deadline is only sampled every 64 ticks — `Instant::now` is the one
/// non-free part of a poll.
struct BudgetPoll {
    limited: bool,
    max_ops: Option<u64>,
    deadline: Option<Instant>,
    ticks: u32,
}

impl BudgetPoll {
    fn new(budget: &Budget) -> Self {
        BudgetPoll {
            limited: budget.max_ops.is_some() || budget.deadline.is_some(),
            max_ops: budget.max_ops,
            deadline: budget.deadline,
            ticks: 0,
        }
    }

    /// Checks the budget against `work_done` (the engine's `word_ops`).
    #[inline]
    fn check(&mut self, work_done: u64) -> Result<(), BudgetReason> {
        if !self.limited {
            return Ok(());
        }
        if let Some(cap) = self.max_ops {
            if work_done > cap {
                return Err(BudgetReason::OpCap);
            }
        }
        if let Some(deadline) = self.deadline {
            if self.ticks & 63 == 0 && Instant::now() >= deadline {
                return Err(BudgetReason::Deadline);
            }
            self.ticks = self.ticks.wrapping_add(1);
        }
        Ok(())
    }
}

impl<'a> EngineState<'a> {
    fn new(
        trace: &'a Trace,
        index: &'a TraceIndex,
        graph: &'a HbGraph,
        rules: RuleSet,
        reference: bool,
        budget: &Budget,
        intra_threads: usize,
    ) -> Self {
        let n = graph.node_count();
        let relation = if rules.restricted_transitivity {
            Relation::Restricted {
                st: BitMatrix::new(n),
                mt: BitMatrix::new(n),
            }
        } else {
            Relation::Plain(BitMatrix::new(n))
        };
        let mut task_nodes: HashMap<TaskId, Vec<NodeId>> = HashMap::new();
        for (id, node) in graph.nodes().iter().enumerate() {
            if let Some(task) = node.task {
                task_nodes.entry(task).or_default().push(id);
            }
        }
        EngineState {
            trace,
            index,
            graph,
            rules,
            relation,
            candidates: Vec::new(),
            task_nodes,
            stats: EngineStats::default(),
            reference,
            st_edges: DirectEdges::new(n),
            mt_edges: DirectEdges::new(n),
            dirty_sources: Vec::new(),
            last_dirty: Vec::new(),
            dirty_mark: BitSet::new(n),
            frontier: Vec::new(),
            watchers: vec![Vec::new(); n],
            examine_stamp: Vec::new(),
            examine_epoch: 0,
            candidate_done: Vec::new(),
            examine_buf: Vec::new(),
            poll: BudgetPoll::new(budget),
            intra_threads,
            levels: Vec::new(),
        }
    }

    /// Current `(st, mt)` edge counts (`(plain, 0)` in the naive mode).
    fn relation_sizes(&self) -> (usize, usize) {
        match &self.relation {
            Relation::Restricted { st, mt } => (st.count_ones(), mt.count_ones()),
            Relation::Plain(r) => (r.count_ones(), 0),
        }
    }

    /// Adds the *direct* edge `a → b` (base rule, assumed edge or generator
    /// firing). Newly added edges are recorded in the adjacency lists and
    /// their source is enqueued for the next incremental saturation.
    fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        debug_assert!(a < b, "happens-before edges point forward in the trace");
        let (added, cross) = match &mut self.relation {
            Relation::Restricted { st, mt } => {
                if self.graph.node(a).thread == self.graph.node(b).thread {
                    (st.set(a, b), false)
                } else {
                    (mt.set(a, b), true)
                }
            }
            Relation::Plain(r) => (r.set(a, b), false),
        };
        if added {
            if cross {
                self.mt_edges.push(a, b);
            } else {
                self.st_edges.push(a, b);
            }
            self.dirty_sources.push(a);
        }
        added
    }

    fn ordered(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        match &self.relation {
            Relation::Restricted { st, mt } => st.get(a, b) || mt.get(a, b),
            Relation::Plain(r) => r.get(a, b),
        }
    }

    /// The NOPRE watcher's row scan: whether any node of `nodes` is ordered
    /// before `j` (reflexively, matching [`EngineState::ordered`]). The
    /// column word and bit mask are hoisted out of the loop, leaving one
    /// word load per matrix per node.
    fn any_ordered_to(&self, nodes: &[NodeId], j: NodeId) -> bool {
        let (w, m) = (j / 64, 1u64 << (j % 64));
        match &self.relation {
            Relation::Restricted { st, mt } => nodes
                .iter()
                .any(|&k| k == j || (st.row_word(k, w) | mt.row_word(k, w)) & m != 0),
            Relation::Plain(r) => nodes.iter().any(|&k| k == j || r.row_word(k, w) & m != 0),
        }
    }

    fn add_base_edges(&mut self) {
        self.add_program_order_edges();
        self.add_task_edges();
        self.add_thread_edges();
        self.add_lock_edges();
        self.collect_task_pair_candidates();
    }

    /// NO-Q-PO, ASYNC-PO and the whole-thread variant.
    fn add_program_order_edges(&mut self) {
        let threads: Vec<ThreadId> = self
            .graph
            .nodes()
            .iter()
            .map(|n| n.thread)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for t in threads {
            let node_ids: Vec<NodeId> = self.graph.nodes_of_thread(t).to_vec();
            let loop_node = self.index.loop_on_q(t).map(|i| self.graph.node_of(i));
            let whole = self.rules.whole_thread_program_order || loop_node.is_none();
            if whole {
                if self.rules.no_q_po {
                    for w in node_ids.windows(2) {
                        self.add_edge(w[0], w[1]);
                    }
                }
                continue;
            }
            let lp = loop_node.expect("loop_node checked above");
            if self.rules.no_q_po {
                // Chain the prefix up to loopOnQ, then order loopOnQ before
                // every later node on the thread (NO-Q-PO lets any pre-loop
                // op reach any later same-thread op).
                let mut prev: Option<NodeId> = None;
                for &id in &node_ids {
                    if id <= lp {
                        if let Some(p) = prev {
                            self.add_edge(p, id);
                        }
                        prev = Some(id);
                    } else {
                        self.add_edge(lp, id);
                    }
                }
            }
            if self.rules.async_po {
                for w in node_ids.windows(2) {
                    let (a, b) = (w[0], w[1]);
                    let (ta, tb) = (self.graph.node(a).task, self.graph.node(b).task);
                    if ta.is_some() && ta == tb {
                        self.add_edge(a, b);
                    }
                }
            }
        }
    }

    /// ENABLE-ST/MT, POST-ST/MT, ATTACH-Q-MT.
    fn add_task_edges(&mut self) {
        type TaskEdgeSites = (Option<usize>, Option<usize>, Option<usize>, Option<ThreadId>);
        let tasks: Vec<TaskEdgeSites> = self
            .index
            .tasks()
            .map(|(_, info)| (info.enable, info.post, info.begin, info.target))
            .collect();
        for (enable, post, begin, target) in tasks {
            if self.rules.post {
                if let (Some(p), Some(b)) = (post, begin) {
                    self.add_edge(self.graph.node_of(p), self.graph.node_of(b));
                }
            }
            if self.rules.enable {
                if let (Some(e), Some(p)) = (enable, post) {
                    self.add_edge(self.graph.node_of(e), self.graph.node_of(p));
                }
            }
            if self.rules.attach_q {
                if let (Some(p), Some(target)) = (post, target) {
                    let post_thread = self.trace.op(p).thread;
                    if post_thread != target {
                        if let Some(a) = self.index.attach_q(target) {
                            self.add_edge(self.graph.node_of(a), self.graph.node_of(p));
                        }
                    }
                }
            }
        }
    }

    /// FORK and JOIN.
    fn add_thread_edges(&mut self) {
        let mut init_of: HashMap<ThreadId, usize> = HashMap::new();
        let mut exit_of: HashMap<ThreadId, usize> = HashMap::new();
        for (i, op) in self.trace.iter() {
            match op.kind {
                OpKind::ThreadInit => {
                    init_of.entry(op.thread).or_insert(i);
                }
                OpKind::ThreadExit => {
                    exit_of.entry(op.thread).or_insert(i);
                }
                _ => {}
            }
        }
        for (i, op) in self.trace.iter() {
            match op.kind {
                OpKind::Fork { child } if self.rules.fork => {
                    if let Some(&j) = init_of.get(&child) {
                        if i < j {
                            self.add_edge(self.graph.node_of(i), self.graph.node_of(j));
                        }
                    }
                }
                OpKind::Join { child } if self.rules.join => {
                    if let Some(&j) = exit_of.get(&child) {
                        if j < i {
                            self.add_edge(self.graph.node_of(j), self.graph.node_of(i));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// LOCK (release before a later acquire on a different thread), plus the
    /// deliberately unsound same-thread variant for the naive baseline.
    fn add_lock_edges(&mut self) {
        if !self.rules.lock && !self.rules.same_thread_lock {
            return;
        }
        let mut per_lock: HashMap<LockId, Vec<(usize, bool, Op)>> = HashMap::new();
        for (i, op) in self.trace.iter() {
            match op.kind {
                OpKind::Acquire { lock } => per_lock.entry(lock).or_default().push((i, true, op)),
                OpKind::Release { lock } => per_lock.entry(lock).or_default().push((i, false, op)),
                _ => {}
            }
        }
        for ops in per_lock.values() {
            for (ri, racq, rop) in ops {
                if *racq {
                    continue;
                }
                for (ai, aacq, aop) in ops {
                    if !*aacq || ai < ri {
                        continue;
                    }
                    let cross = rop.thread != aop.thread;
                    if cross && self.rules.lock {
                        self.add_edge(self.graph.node_of(*ri), self.graph.node_of(*ai));
                    } else if !cross && self.rules.same_thread_lock {
                        // The naive combination orders same-thread tasks that
                        // share a lock — exactly the spurious edge the paper's
                        // LOCK rule avoids by requiring distinct threads.
                        let (t1, t2) = (self.index.task_of(*ri), self.index.task_of(*ai));
                        if t1 != t2 {
                            self.add_edge(self.graph.node_of(*ri), self.graph.node_of(*ai));
                        }
                    }
                }
            }
        }
    }

    /// Enumerates same-thread task pairs eligible for FIFO/NOPRE.
    fn collect_task_pair_candidates(&mut self) {
        if !self.rules.fifo && !self.rules.nopre {
            return;
        }
        // Tasks per executing thread, ordered by begin index.
        let mut per_thread: HashMap<ThreadId, Vec<(usize, TaskId)>> = HashMap::new();
        for (task, info) in self.index.tasks() {
            if let (Some(b), Some(target)) = (info.begin, info.target) {
                per_thread.entry(target).or_default().push((b, task));
            }
        }
        for tasks in per_thread.values_mut() {
            tasks.sort_unstable();
            for i in 0..tasks.len() {
                let first = tasks[i].1;
                let first_info = self.index.task(first);
                let Some(end) = first_info.end else { continue };
                let post1 = first_info
                    .post
                    .map(|p| (self.graph.node_of(p), first_info.post_kind));
                for &(b2, second) in &tasks[i + 1..] {
                    let second_info = self.index.task(second);
                    debug_assert!(end < b2, "tasks on one thread run sequentially");
                    let post2 = second_info
                        .post
                        .map(|p| (self.graph.node_of(p), second_info.post_kind));
                    self.register_candidate(TaskPairCandidate {
                        end_node: self.graph.node_of(end),
                        begin_node: self.graph.node_of(b2),
                        post1,
                        post2,
                        first_task: first,
                    });
                }
            }
        }
    }

    /// Stores a candidate and indexes it under the nodes whose row
    /// recomputation can flip its guard. A FIFO guard `post1 ≺ post2` only
    /// flips when row `post1` changes; a NOPRE guard `∃k ∈ nodes(taskA):
    /// k ≺ post2` only when some row `k` changes. Candidates that can never
    /// fire under the active rules are dropped outright.
    fn register_candidate(&mut self, cand: TaskPairCandidate) {
        let fifo_possible = self.rules.fifo
            && matches!(
                (cand.post1, cand.post2),
                (Some((_, k1)), Some((_, k2))) if fifo_delay_ok(k1, k2, self.rules.delayed_fifo)
            );
        let nopre_possible = self.rules.nopre
            && cand.post2.is_some()
            && self.task_nodes.contains_key(&cand.first_task);
        if !fifo_possible && !nopre_possible {
            return;
        }
        let idx = u32::try_from(self.candidates.len()).expect("fewer than 2^32 candidates");
        self.candidates.push(cand);
        self.candidate_done.push(false);
        self.examine_stamp.push(0);
        if fifo_possible {
            let (p1, _) = cand.post1.expect("fifo_possible implies post1");
            self.watchers[p1].push(idx);
        }
        if nopre_possible {
            let nodes = &self.task_nodes[&cand.first_task];
            for &k in nodes {
                self.watchers[k].push(idx);
            }
        }
    }

    /// Runs generator + transitivity to fixpoint, recording per-rule
    /// counters as it goes.
    ///
    /// Round one performs a full saturation (every row), seeding the
    /// incremental state; each later round recomputes only the rows that
    /// can reach a freshly added generator edge, and re-examines only the
    /// generator candidates watching one of those rows. Since edge addition
    /// is monotone and the per-round rule order is unchanged, the fixpoint
    /// — and even the per-round counter deltas — match the reference
    /// whole-matrix saturation exactly.
    fn run_fixpoint(&mut self) -> Result<(), BudgetReason> {
        loop {
            self.stats.rounds += 1;
            let (st0, mt0) = self.relation_sizes();
            let mut changed = if self.reference {
                self.dirty_sources.clear();
                self.saturate_reference()?
            } else if self.stats.rounds == 1 {
                self.saturate_all()?
            } else {
                self.saturate_dirty()?
            };
            let (st1, mt1) = self.relation_sizes();
            self.stats.trans_st_edges += st1 - st0;
            self.stats.trans_mt_edges += mt1 - mt0;
            let examine_all = self.reference || self.stats.rounds == 1;
            changed |= self.fire_generators(examine_all);
            if !changed {
                return Ok(());
            }
        }
    }

    /// Applies FIFO and NOPRE. With `examine_all` (round one and reference
    /// mode) every pending candidate is evaluated; afterwards only the
    /// candidates watching a row the last saturation recomputed — a guard
    /// bit can only have flipped if its source row went dirty. Returns true
    /// if any new edge was added.
    fn fire_generators(&mut self, examine_all: bool) -> bool {
        if self.candidates.is_empty() {
            return false;
        }
        let mut changed = false;
        if examine_all {
            for c in 0..self.candidates.len() {
                changed |= self.examine_candidate(c);
            }
            return changed;
        }
        let mut examine = std::mem::take(&mut self.examine_buf);
        examine.clear();
        // Fresh stamps init to 0 and the epoch starts its first sweep at 1,
        // so a never-examined candidate always passes the dedup check.
        self.examine_epoch = self.examine_epoch.wrapping_add(1);
        let stamp = self.examine_epoch;
        for di in 0..self.last_dirty.len() {
            let r = self.last_dirty[di];
            for wi in 0..self.watchers[r].len() {
                let c = self.watchers[r][wi] as usize;
                if !self.candidate_done[c] && self.examine_stamp[c] != stamp {
                    self.examine_stamp[c] = stamp;
                    examine.push(c as u32);
                }
            }
        }
        // Evaluate in candidate order, matching the reference engine's
        // full-scan order (candidates are independent within a round, but
        // determinism is part of the stats contract).
        examine.sort_unstable();
        for &c in &examine {
            changed |= self.examine_candidate(c as usize);
        }
        self.examine_buf = examine;
        changed
    }

    /// Evaluates one pending candidate, firing at most one edge. A
    /// candidate is retired once it fired or its conclusion was derived by
    /// other rules.
    fn examine_candidate(&mut self, c: usize) -> bool {
        if self.candidate_done[c] {
            return false;
        }
        let cand = self.candidates[c];
        if self.ordered(cand.end_node, cand.begin_node) {
            self.candidate_done[c] = true;
            return false;
        }
        let mut fifo_fire = false;
        if self.rules.fifo {
            if let (Some((p1, k1)), Some((p2, k2))) = (cand.post1, cand.post2) {
                if fifo_delay_ok(k1, k2, self.rules.delayed_fifo) && self.ordered(p1, p2) {
                    fifo_fire = true;
                }
            }
        }
        let mut nopre_fire = false;
        if !fifo_fire && self.rules.nopre {
            if let Some((p2, _)) = cand.post2 {
                if let Some(nodes) = self.task_nodes.get(&cand.first_task) {
                    nopre_fire = self.any_ordered_to(nodes, p2);
                }
            }
        }
        if (fifo_fire || nopre_fire) && self.add_edge(cand.end_node, cand.begin_node) {
            self.candidate_done[c] = true;
            if fifo_fire {
                self.stats.fifo_fired += 1;
            } else {
                self.stats.nopre_fired += 1;
            }
            return true;
        }
        false
    }

    /// Round one of the incremental engine: recompute every row once, in
    /// reverse trace order. Edges always point forward, so when row `i` is
    /// processed every successor row `j > i` is already complete and one
    /// pass reaches the closure.
    fn saturate_all(&mut self) -> Result<bool, BudgetReason> {
        let n = self.graph.node_count();
        // Base edges enqueued their sources; a full pass covers them all.
        self.dirty_sources.clear();
        self.last_dirty.clear();
        if self.par_closure_active() {
            let rows: Vec<NodeId> = (0..n).rev().collect();
            return self.recompute_rows_batched(&rows, true);
        }
        let mut changed = false;
        for i in (0..n).rev() {
            changed |= self.recompute_row(i);
            self.poll.check(self.stats.word_ops)?;
        }
        Ok(changed)
    }

    /// Incremental rounds: a row `x` can only change if `x` reaches the
    /// source of a freshly added direct edge, so walk the predecessor lists
    /// backwards from the dirty sources and recompute exactly the marked
    /// rows — again in reverse order, which keeps the complete-successor
    /// invariant (an unmarked successor is provably unchanged, a marked one
    /// has a larger id and was recomputed first).
    fn saturate_dirty(&mut self) -> Result<bool, BudgetReason> {
        self.last_dirty.clear();
        if self.dirty_sources.is_empty() {
            return Ok(false);
        }
        self.dirty_mark.clear();
        let mut stack = std::mem::take(&mut self.frontier);
        stack.clear();
        for si in 0..self.dirty_sources.len() {
            let s = self.dirty_sources[si];
            if !self.dirty_mark.contains(s) {
                self.dirty_mark.insert(s);
                stack.push(s);
            }
        }
        self.dirty_sources.clear();
        let mut dirty = std::mem::take(&mut self.last_dirty);
        while let Some(x) = stack.pop() {
            self.stats.worklist_pops += 1;
            self.poll.check(self.stats.word_ops)?;
            dirty.push(x);
            for &p in self.st_edges.preds(x) {
                if !self.dirty_mark.contains(p) {
                    self.dirty_mark.insert(p);
                    stack.push(p);
                }
            }
            for &p in self.mt_edges.preds(x) {
                if !self.dirty_mark.contains(p) {
                    self.dirty_mark.insert(p);
                    stack.push(p);
                }
            }
        }
        self.frontier = stack;
        dirty.sort_unstable_by(|a, b| b.cmp(a));
        let mut changed = false;
        if self.par_closure_active() {
            changed = self.recompute_rows_batched(&dirty, false)?;
        } else {
            for &row in &dirty {
                changed |= self.recompute_row(row);
                self.poll.check(self.stats.word_ops)?;
            }
        }
        self.last_dirty = dirty;
        Ok(changed)
    }

    /// Whether saturations run through the level-batched parallel
    /// scheduler. Budgeted runs stay sequential: the poller's per-row
    /// granularity is part of the budget contract.
    fn par_closure_active(&self) -> bool {
        self.intra_threads > 1 && !self.reference && !self.poll.limited
    }

    /// Recomputes `rows` through the level-batched scheduler.
    ///
    /// Longest-path levels over the union direct-edge DAG — `level(i) =
    /// 1 + max(level(d))` over direct successors, `0` at sinks — partition
    /// the rows into batches safe to recompute concurrently: every direct
    /// edge strictly decreases the level, hence so does every nonempty
    /// path, so rows of equal level cannot reach one another, and every row
    /// a recomputation reads (direct st successors plus TRANS-MT frontier
    /// nodes, all *reachable* from the row) lies at a strictly smaller
    /// level and is final before the level's batch starts. Processing
    /// levels in ascending order therefore feeds every row the same inputs
    /// the sequential reverse-id schedule would have — bit-identical rows,
    /// bounds and counters (see DESIGN.md §14).
    ///
    /// `all_rows` marks a round-one full saturation, where every row is in
    /// the recompute set (the dirty mark is not populated).
    fn recompute_rows_batched(&mut self, rows: &[NodeId], all_rows: bool) -> Result<bool, BudgetReason> {
        let n = self.graph.node_count();
        self.levels.clear();
        self.levels.resize(n, 0);
        for i in (0..n).rev() {
            let mut lvl = 0u32;
            for &d in self.st_edges.succs(i) {
                lvl = lvl.max(self.levels[d] + 1);
            }
            for &d in self.mt_edges.succs(i) {
                lvl = lvl.max(self.levels[d] + 1);
            }
            self.levels[i] = lvl;
        }
        // Conflicts: direct edges between two rows of this recompute set —
        // exactly the dependencies that force their endpoints into
        // different batches.
        for &i in rows {
            for &d in self.st_edges.succs(i).iter().chain(self.mt_edges.succs(i)) {
                if all_rows || self.dirty_mark.contains(d) {
                    self.stats.batch_conflicts += 1;
                }
            }
        }
        let mut order: Vec<NodeId> = rows.to_vec();
        order.sort_unstable_by_key(|&i| (self.levels[i], std::cmp::Reverse(i)));
        let mut changed = false;
        let mut at = 0;
        while at < order.len() {
            let lvl = self.levels[order[at]];
            let mut end = at + 1;
            while end < order.len() && self.levels[order[end]] == lvl {
                end += 1;
            }
            let group = &order[at..end];
            if group.len() < PAR_GROUP_MIN {
                // Narrow levels run inline — identical to the sequential
                // path, since batch dispatch for a handful of rows costs
                // more than the rows themselves.
                for &i in &order[at..end] {
                    changed |= self.recompute_row(i);
                    self.poll.check(self.stats.word_ops)?;
                }
            } else {
                self.stats.batches += 1;
                let graph = self.graph;
                let st_edges = &self.st_edges;
                let relation = &self.relation;
                let threads = self.intra_threads;
                let results = crate::par::par_map(group, threads, |&i| {
                    recompute_row_pure(graph, st_edges, relation, i)
                });
                for (&i, res) in group.iter().zip(results) {
                    self.stats.rows_recomputed += 1;
                    self.stats.word_ops += res.word_ops;
                    self.stats.skipped_words += res.skipped_words;
                    changed |= res.changed;
                    match (&mut self.relation, res.rows) {
                        (Relation::Plain(r), RowData::Plain { row, lo, hi }) => {
                            r.store_row(i, &row, lo, hi);
                        }
                        (
                            Relation::Restricted { st, mt },
                            RowData::Restricted { st_row, st_lo, st_hi, mt_row, mt_lo, mt_hi },
                        ) => {
                            st.store_row(i, &st_row, st_lo, st_hi);
                            mt.store_row(i, &mt_row, mt_lo, mt_hi);
                        }
                        _ => unreachable!("row data matches the relation variant"),
                    }
                }
                self.poll.check(self.stats.word_ops)?;
            }
            at = end;
        }
        Ok(changed)
    }

    /// Recomputes row `i`'s closure from its *direct* successors, relying
    /// on their rows being complete.
    ///
    /// * `Plain`: the naive closure is the ordinary transitive closure of
    ///   the direct-edge graph, so row `i` is the OR of its direct
    ///   successors' rows.
    /// * `Restricted`: TRANS-ST composes over same-thread chains only, and
    ///   every same-thread successor of `i` is reached through a *direct*
    ///   same-thread successor, so the st row is the OR of the direct st
    ///   successors' st rows. TRANS-MT then composes the combined relation
    ///   through a frontier seeded with the direct st successors and the
    ///   current mt row: each popped node `k` contributes
    ///   `(mt(k) | st(k)) & ¬thread(i)`, and every *newly* derived mt bit
    ///   re-enters the frontier (a new cross-thread successor can enable
    ///   further compositions — direct successors alone are not enough).
    ///   Same-thread intermediates beyond the direct ones need no frontier
    ///   entry: they are covered through the direct st successor that
    ///   reaches them, which shares `i`'s thread mask.
    fn recompute_row(&mut self, i: NodeId) -> bool {
        self.stats.rows_recomputed += 1;
        let row_words = self.graph.node_count().div_ceil(64) as u64;
        match &mut self.relation {
            Relation::Plain(r) => {
                let mut changed = false;
                for &d in self.st_edges.succs(i) {
                    let (lo, hi) = r.row_bounds(d);
                    self.stats.word_ops += (hi - lo) as u64;
                    self.stats.skipped_words += row_words - (hi - lo) as u64;
                    changed |= r.or_row_into(d, i);
                }
                changed
            }
            Relation::Restricted { st, mt } => {
                let mut changed = false;
                for &d in self.st_edges.succs(i) {
                    let (lo, hi) = st.row_bounds(d);
                    self.stats.word_ops += (hi - lo) as u64;
                    self.stats.skipped_words += row_words - (hi - lo) as u64;
                    changed |= st.or_row_into(d, i);
                }
                let mask = self
                    .graph
                    .thread_mask(self.graph.node(i).thread)
                    .expect("every node's thread has a mask")
                    .words();
                let frontier = &mut self.frontier;
                frontier.clear();
                frontier.extend_from_slice(self.st_edges.succs(i));
                mt.for_each_set_in_row(i, |b| frontier.push(b));
                let mut new_mt_bits = false;
                while let Some(k) = frontier.pop() {
                    let touched = mt.or_union_masked_into(k, st, mask, i, |b| {
                        new_mt_bits = true;
                        frontier.push(b);
                    }) as u64;
                    self.stats.word_ops += touched;
                    self.stats.skipped_words += row_words - touched;
                }
                changed | new_mt_bits
            }
        }
    }

    /// One full whole-matrix saturation — the pre-rewrite algorithm,
    /// retained verbatim as the differential-testing reference (its
    /// `word_ops` still count whole rows per operation). Returns true if
    /// anything changed.
    fn saturate_reference(&mut self) -> Result<bool, BudgetReason> {
        let n = self.graph.node_count();
        if n == 0 {
            return Ok(false);
        }
        let threads: Vec<ThreadId> = self.graph.nodes().iter().map(|node| node.thread).collect();
        let row_words = n.div_ceil(64) as u64;
        match &mut self.relation {
            Relation::Plain(r) => {
                let mut changed = false;
                loop {
                    let mut pass_changed = false;
                    for i in (0..n).rev() {
                        let succs: Vec<usize> = r.iter_row(i).collect();
                        for j in succs {
                            pass_changed |= r.or_row_into(j, i);
                            self.stats.word_ops += row_words;
                        }
                        self.poll.check(self.stats.word_ops)?;
                    }
                    changed |= pass_changed;
                    if !pass_changed {
                        return Ok(changed);
                    }
                }
            }
            Relation::Restricted { st, mt } => {
                let words = n.div_ceil(64);
                let mut full = vec![0u64; words];
                let mut cand = vec![0u64; words];
                let mut changed = false;
                for i in (0..n).rev() {
                    // TRANS-ST: rows of st-successors are already complete
                    // (edges point forward, iteration is reverse).
                    let succs: Vec<usize> = st.iter_row(i).collect();
                    for j in succs {
                        changed |= st.or_row_into(j, i);
                        self.stats.word_ops += row_words;
                    }
                    // TRANS-MT: compose the combined relation; only bits on
                    // threads other than thread(i) may be recorded. Repeat
                    // until row i stabilizes, because newly derived cross-
                    // thread bits can enable further compositions.
                    let mask = self
                        .graph
                        .thread_mask(threads[i])
                        .expect("every node's thread has a mask");
                    loop {
                        for (w, f) in full.iter_mut().enumerate() {
                            *f = st.row(i)[w] | mt.row(i)[w];
                        }
                        cand.copy_from_slice(&full);
                        for j in BitIter::new(&full) {
                            let (sj, mj) = (st.row(j), mt.row(j));
                            for w in 0..words {
                                cand[w] |= sj[w] | mj[w];
                            }
                            self.stats.word_ops += row_words;
                        }
                        for (c, m) in cand.iter_mut().zip(mask.words()) {
                            *c &= !*m;
                        }
                        self.stats.word_ops += 2 * row_words;
                        self.poll.check(self.stats.word_ops)?;
                        if mt.or_words_into(&cand, i) {
                            changed = true;
                        } else {
                            break;
                        }
                    }
                }
                Ok(changed)
            }
        }
    }
}

/// Result of one pure row recomputation: the row's new contents and bounds
/// plus its counter deltas, produced without touching the shared matrices.
struct RowResult {
    word_ops: u64,
    skipped_words: u64,
    changed: bool,
    rows: RowData,
}

enum RowData {
    Plain {
        row: Vec<u64>,
        lo: usize,
        hi: usize,
    },
    Restricted {
        st_row: Vec<u64>,
        st_lo: usize,
        st_hi: usize,
        mt_row: Vec<u64>,
        mt_lo: usize,
        mt_hi: usize,
    },
}

/// Local-bounds replica of `BitMatrix::widen`: same empty-row encoding
/// (`lo == hi`), same min/max growth, so a pure recomputation produces the
/// exact bounds an in-place one would.
fn widen_local(lo: &mut usize, hi: &mut usize, wlo: usize, whi: usize) {
    if wlo >= whi {
        return;
    }
    if lo == hi {
        *lo = wlo;
        *hi = whi;
    } else {
        *lo = (*lo).min(wlo);
        *hi = (*hi).max(whi);
    }
}

/// Pure counterpart of [`EngineState::recompute_row`]: computes row `i`'s
/// new contents, bounds and counter deltas from the shared matrices without
/// mutating them — the concurrent half of the parallel closure, with
/// [`BitMatrix::store_row`] as its deterministic write-back.
///
/// It mirrors the in-place version operation for operation — same kernels,
/// same `widen` sequence, same frontier push order — so the write-back
/// leaves matrices *and* counters bit-identical to a sequential
/// recomputation. Sound only when every row it reads is final, which the
/// level partition of [`EngineState::recompute_rows_batched`] guarantees.
fn recompute_row_pure(
    graph: &HbGraph,
    st_edges: &DirectEdges,
    relation: &Relation,
    i: NodeId,
) -> RowResult {
    let row_words = graph.node_count().div_ceil(64) as u64;
    let mut word_ops = 0u64;
    let mut skipped_words = 0u64;
    match relation {
        Relation::Plain(r) => {
            let mut row = r.row(i).to_vec();
            let (mut lo, mut hi) = r.row_bounds(i);
            let mut changed = false;
            for &d in st_edges.succs(i) {
                debug_assert!(d > i, "happens-before edges point forward");
                let (slo, shi) = r.row_bounds(d);
                word_ops += (shi - slo) as u64;
                skipped_words += row_words - (shi - slo) as u64;
                if slo >= shi {
                    continue;
                }
                if simd::or_into(&mut row[slo..shi], &r.row(d)[slo..shi]) {
                    widen_local(&mut lo, &mut hi, slo, shi);
                    changed = true;
                }
            }
            RowResult {
                word_ops,
                skipped_words,
                changed,
                rows: RowData::Plain { row, lo, hi },
            }
        }
        Relation::Restricted { st, mt } => {
            let mut st_row = st.row(i).to_vec();
            let (mut st_lo, mut st_hi) = st.row_bounds(i);
            let mut changed = false;
            for &d in st_edges.succs(i) {
                debug_assert!(d > i, "happens-before edges point forward");
                let (slo, shi) = st.row_bounds(d);
                word_ops += (shi - slo) as u64;
                skipped_words += row_words - (shi - slo) as u64;
                if slo >= shi {
                    continue;
                }
                if simd::or_into(&mut st_row[slo..shi], &st.row(d)[slo..shi]) {
                    widen_local(&mut st_lo, &mut st_hi, slo, shi);
                    changed = true;
                }
            }
            let mask = graph
                .thread_mask(graph.node(i).thread)
                .expect("every node's thread has a mask")
                .words();
            let mut mt_row = mt.row(i).to_vec();
            let (mut mt_lo, mut mt_hi) = mt.row_bounds(i);
            let mut frontier: Vec<NodeId> = Vec::new();
            frontier.extend_from_slice(st_edges.succs(i));
            mt.for_each_set_in_row(i, |b| frontier.push(b));
            let mut new_mt_bits = false;
            while let Some(k) = frontier.pop() {
                debug_assert!(k != i, "a row never reaches itself");
                // Mirror of BitMatrix::or_union_masked_into with the
                // destination row held locally: same bounds-union span,
                // same touched-word accounting.
                let (alo, ahi) = mt.row_bounds(k);
                let (blo, bhi) = st.row_bounds(k);
                let span = match (alo < ahi, blo < bhi) {
                    (false, false) => None,
                    (true, false) => Some((alo, ahi)),
                    (false, true) => Some((blo, bhi)),
                    (true, true) => Some((alo.min(blo), ahi.max(bhi))),
                };
                let Some((lo, hi)) = span else {
                    skipped_words += row_words;
                    continue;
                };
                let ch = simd::union_masked_collect(
                    &mt.row(k)[lo..hi],
                    &st.row(k)[lo..hi],
                    &mask[lo..hi],
                    &mut mt_row[lo..hi],
                    lo,
                    |b| {
                        new_mt_bits = true;
                        frontier.push(b);
                    },
                );
                if ch {
                    widen_local(&mut mt_lo, &mut mt_hi, lo, hi);
                }
                word_ops += (hi - lo) as u64;
                skipped_words += row_words - (hi - lo) as u64;
            }
            RowResult {
                word_ops,
                skipped_words,
                changed: changed | new_mt_bits,
                rows: RowData::Restricted {
                    st_row,
                    st_lo,
                    st_hi,
                    mt_row,
                    mt_lo,
                    mt_hi,
                },
            }
        }
    }
}

/// The §4.2 refinement of the FIFO rule for delayed posts, extended to
/// front-of-queue posts:
///
/// * neither delayed → ordinary FIFO applies;
/// * second delayed, first not → the delayed task runs no earlier;
/// * first delayed, second not → no ordering (the delayed task may be
///   overtaken);
/// * both delayed → ordered iff the first timeout is no larger;
/// * second posted to the front (extension) → no FIFO ordering, the front
///   post may overtake anything queued.
pub(crate) fn fifo_delay_ok(k1: PostKind, k2: PostKind, refined: bool) -> bool {
    if !refined {
        return true;
    }
    if matches!(k2, PostKind::Front) {
        return false;
    }
    match (k1.delay(), k2.delay()) {
        (None, None) | (None, Some(_)) => true,
        (Some(_), None) => false,
        (Some(d1), Some(d2)) => d1 <= d2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidracer_trace::{validate, ThreadKind, TraceBuilder};

    fn hb(trace: &Trace) -> HappensBefore {
        assert_eq!(validate(trace), Ok(()), "test traces must be feasible");
        HappensBefore::compute(trace, HbConfig::new())
    }

    #[test]
    fn fifo_delay_table() {
        use PostKind::*;
        assert!(fifo_delay_ok(Plain, Plain, true));
        assert!(fifo_delay_ok(Plain, Delayed(5), true));
        assert!(!fifo_delay_ok(Delayed(5), Plain, true));
        assert!(fifo_delay_ok(Delayed(5), Delayed(5), true));
        assert!(fifo_delay_ok(Delayed(5), Delayed(9), true));
        assert!(!fifo_delay_ok(Delayed(9), Delayed(5), true));
        assert!(!fifo_delay_ok(Plain, Front, true));
        assert!(fifo_delay_ok(Front, Plain, true));
        // unrefined mode ignores post kinds entirely
        assert!(fifo_delay_ok(Delayed(9), Delayed(5), false));
        assert!(fifo_delay_ok(Plain, Front, false));
    }

    #[test]
    fn program_order_on_plain_thread() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t", ThreadKind::App, true);
        let loc = b.loc("o", "C.f");
        b.thread_init(t);
        b.write(t, loc);
        b.read(t, loc);
        b.thread_exit(t);
        let trace = b.finish();
        let hb = hb(&trace);
        assert!(hb.ordered(0, 3));
        assert!(hb.ordered(1, 2));
        assert!(!hb.ordered(3, 0));
    }

    #[test]
    fn fork_orders_parent_prefix_before_child() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("o", "C.f");
        b.thread_init(main); // 0
        b.write(main, loc); // 1
        b.fork(main, bg); // 2
        b.thread_init(bg); // 3
        b.read(bg, loc); // 4
        let trace = b.finish();
        let hb = hb(&trace);
        assert!(hb.ordered(1, 4), "write before fork ≺ read in child");
        assert!(hb.ordered(2, 3));
        assert!(!hb.ordered(4, 1));
    }

    #[test]
    fn join_orders_child_before_parent_suffix() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("o", "C.f");
        b.thread_init(main); // 0
        b.fork(main, bg); // 1
        b.thread_init(bg); // 2
        b.write(bg, loc); // 3
        b.thread_exit(bg); // 4
        b.join(main, bg); // 5
        b.read(main, loc); // 6
        let trace = b.finish();
        let hb = hb(&trace);
        assert!(hb.ordered(3, 6));
        assert!(!hb.concurrent(0, 3), "fork chain orders 0 before 3");
    }

    #[test]
    fn lock_edges_cross_threads_only() {
        // Two threads handing a lock across: release ≺ acquire.
        let mut b = TraceBuilder::new();
        let a = b.thread("a", ThreadKind::App, true);
        let c = b.thread("c", ThreadKind::App, true);
        let l = b.lock("m");
        let loc = b.loc("o", "C.f");
        b.thread_init(a); // 0
        b.thread_init(c); // 1
        b.acquire(a, l); // 2
        b.write(a, loc); // 3
        b.release(a, l); // 4
        b.acquire(c, l); // 5
        b.read(c, loc); // 6
        b.release(c, l); // 7
        let trace = b.finish();
        let hb = hb(&trace);
        assert!(hb.ordered(4, 5));
        assert!(hb.ordered(3, 6), "write ≺ read through lock + program order");
        assert!(!hb.ordered(1, 0));
    }

    /// The motivating restriction: two tasks on the same thread using the
    /// same lock must NOT be ordered by the lock (locks cannot order tasks
    /// that already run sequentially on one thread). The naive combination
    /// derives the ordering; the paper's rules do not.
    #[test]
    fn same_thread_tasks_sharing_lock_stay_unordered() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let binder = b.thread("binder", ThreadKind::Binder, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        let l = b.lock("m");
        let loc = b.loc("o", "C.f");
        b.thread_init(main); // 0
        b.attach_q(main); // 1
        b.loop_on_q(main); // 2
        b.thread_init(binder); // 3
        b.post(binder, t1, main); // 4
        b.post(binder, t2, main); // 5  (unordered wrt. 4? no — same thread
                                  //     binder program order orders them!)
        b.begin(main, t1); // 6
        b.acquire(main, l); // 7
        b.write(main, loc); // 8
        b.release(main, l); // 9
        b.end(main, t1); // 10
        b.begin(main, t2); // 11
        b.acquire(main, l); // 12
        b.read(main, loc); // 13
        b.release(main, l); // 14
        b.end(main, t2); // 15
        let trace = b.finish();
        // Full rules: the two posts are on the same (non-queue) binder
        // thread, so NO-Q-PO orders them and FIFO orders the tasks: the
        // accesses are ordered — but through FIFO, not through the lock.
        let full = hb(&trace);
        assert!(full.ordered(8, 13));

        // Drop FIFO (and NOPRE) to isolate the lock: the paper's rules now
        // leave the two accesses unordered, the naive combination orders
        // them via the same-thread lock edge.
        let mut rules = RuleSet::full();
        rules.fifo = false;
        rules.nopre = false;
        let paper = HappensBefore::compute(
            &trace,
            HbConfig {
                rules,
                merge_accesses: true,
            },
        );
        assert!(
            paper.concurrent(8, 13),
            "lock must not order same-thread tasks"
        );

        let mut naive = HbMode::NaiveCombined.rule_set();
        naive.fifo = false;
        naive.nopre = false;
        let naive = HappensBefore::compute(
            &trace,
            HbConfig {
                rules: naive,
                merge_accesses: true,
            },
        );
        assert!(
            naive.ordered(8, 13),
            "naive combination derives the spurious ordering"
        );
    }

    use crate::rules::HbMode;

    #[test]
    fn lock_transitivity_through_other_thread_is_blocked() {
        // Task A on main releases l; bg acquires/releases l; task B on main
        // acquires l. Naive closure orders A ≺ B through bg; the paper's
        // restricted transitivity does not (same-thread pair).
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        let l = b.lock("m");
        let loc = b.loc("o", "C.f");
        b.thread_init(main); // 0
        b.attach_q(main); // 1
        b.loop_on_q(main); // 2
        b.thread_init(bg); // 3
        b.post(bg, t1, main); // 4
        b.begin(main, t1); // 5
        b.acquire(main, l); // 6
        b.write(main, loc); // 7
        b.release(main, l); // 8
        b.end(main, t1); // 9
        b.acquire(bg, l); // 10
        b.release(bg, l); // 11
        b.post(bg, t2, main); // 12 — NB: posted after t1's post on bg, so
                              // FIFO would order the tasks; disable it below.
        b.begin(main, t2); // 13
        b.acquire(main, l); // 14
        b.read(main, loc); // 15
        b.release(main, l); // 16
        b.end(main, t2); // 17
        let trace = b.finish();
        let mut rules = RuleSet::full();
        rules.fifo = false;
        rules.nopre = false;
        let paper = HappensBefore::compute(
            &trace,
            HbConfig {
                rules,
                merge_accesses: false,
            },
        );
        // Cross-thread orderings through the lock hold…
        assert!(paper.ordered(8, 10));
        assert!(paper.ordered(11, 14));
        // …but the same-thread composition 8 ≺ 10 ≺ 11 ≺ 14 is blocked.
        assert!(!paper.ordered(8, 14), "restricted transitivity");
        assert!(paper.concurrent(7, 15));

        let mut naive_rules = HbMode::NaiveCombined.rule_set();
        naive_rules.fifo = false;
        naive_rules.nopre = false;
        let naive = HappensBefore::compute(
            &trace,
            HbConfig {
                rules: naive_rules,
                merge_accesses: false,
            },
        );
        assert!(naive.ordered(8, 14));
        assert!(naive.ordered(7, 15), "naive closure is unrestricted");
    }

    #[test]
    fn fifo_orders_same_thread_tasks() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        let loc = b.loc("o", "C.f");
        b.thread_init(main); // 0
        b.attach_q(main); // 1
        b.loop_on_q(main); // 2
        b.post(main, t1, main); // 3
        b.post(main, t2, main); // 4
        b.begin(main, t1); // 5
        b.write(main, loc); // 6
        b.end(main, t1); // 7
        b.begin(main, t2); // 8
        b.read(main, loc); // 9
        b.end(main, t2); // 10
        let trace = b.finish();
        let hb = hb(&trace);
        // posts 3,4 ordered pre-loop? No: they are after loopOnQ on main but
        // outside tasks… NO-Q-PO does not apply. They are both posted from
        // the looping thread itself though — in a real trace posts happen
        // inside tasks; here the FIFO premise β3 ≺ β4 needs another source.
        // loopOnQ ≺ every later node on main (NO-Q-PO), but 3 ⊀ 4 unless
        // derived. So this asserts NOPRE-free behaviour carefully:
        // end(A) ≺ begin(B) iff post(A) ≺ post(B).
        let ordered_posts = hb.ordered(3, 4);
        assert_eq!(hb.ordered(7, 8), ordered_posts);
        assert_eq!(hb.ordered(6, 9), ordered_posts);
    }

    #[test]
    fn fifo_via_cross_thread_posts() {
        // Binder posts A then B to main (binder has no queue → program
        // order): FIFO orders the tasks on main.
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let binder = b.thread("binder", ThreadKind::Binder, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        let loc = b.loc("o", "C.f");
        b.thread_init(main); // 0
        b.attach_q(main); // 1
        b.loop_on_q(main); // 2
        b.thread_init(binder); // 3
        b.post(binder, t1, main); // 4
        b.post(binder, t2, main); // 5
        b.begin(main, t1); // 6
        b.write(main, loc); // 7
        b.end(main, t1); // 8
        b.begin(main, t2); // 9
        b.read(main, loc); // 10
        b.end(main, t2); // 11
        let trace = b.finish();
        let hb = hb(&trace);
        assert!(hb.ordered(4, 5), "binder program order");
        assert!(hb.ordered(8, 9), "FIFO edge end(A) ≺ begin(B)");
        assert!(hb.ordered(7, 10), "accesses ordered transitively");
    }

    #[test]
    fn nopre_orders_task_before_task_it_posts() {
        // Task A posts B to its own thread: run-to-completion means A ends
        // before B begins, even without comparing post operations.
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        let loc = b.loc("o", "C.f");
        b.thread_init(main); // 0
        b.attach_q(main); // 1
        b.loop_on_q(main); // 2
        b.post(main, t1, main); // 3
        b.begin(main, t1); // 4
        b.write(main, loc); // 5
        b.post(main, t2, main); // 6 (inside task A)
        b.end(main, t1); // 7
        b.begin(main, t2); // 8
        b.read(main, loc); // 9
        b.end(main, t2); // 10
        let trace = b.finish();
        let hb = hb(&trace);
        assert!(hb.ordered(7, 8), "NOPRE edge");
        assert!(hb.ordered(5, 9));
    }

    #[test]
    fn unordered_posts_leave_tasks_unordered() {
        // Two different threads post to main with no ordering between the
        // posts: the two tasks race (single-threaded race candidate).
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg1 = b.thread("bg1", ThreadKind::App, true);
        let bg2 = b.thread("bg2", ThreadKind::App, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        let loc = b.loc("o", "C.f");
        b.thread_init(main); // 0
        b.attach_q(main); // 1
        b.loop_on_q(main); // 2
        b.thread_init(bg1); // 3
        b.thread_init(bg2); // 4
        b.post(bg1, t1, main); // 5
        b.post(bg2, t2, main); // 6
        b.begin(main, t1); // 7
        b.write(main, loc); // 8
        b.end(main, t1); // 9
        b.begin(main, t2); // 10
        b.read(main, loc); // 11
        b.end(main, t2); // 12
        let trace = b.finish();
        let hb = hb(&trace);
        assert!(!hb.ordered(5, 6));
        assert!(hb.concurrent(8, 11), "the accesses race");
    }

    #[test]
    fn enable_orders_into_posted_task() {
        // Task A enables event task B; B is posted by binder later. The
        // enable ≺ post edge plus NOPRE order A entirely before B.
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let binder = b.thread("binder", ThreadKind::Binder, true);
        let t1 = b.task("LAUNCH_ACTIVITY");
        let t2 = b.task("onDestroy");
        let loc = b.loc("DwFileAct-obj", "isActivityDestroyed");
        b.thread_init(main); // 0
        b.attach_q(main); // 1
        b.loop_on_q(main); // 2
        b.thread_init(binder); // 3
        b.post(binder, t1, main); // 4
        b.begin(main, t1); // 5
        b.write(main, loc); // 6
        b.enable(main, t2); // 7
        b.end(main, t1); // 8
        b.post(binder, t2, main); // 9
        b.begin(main, t2); // 10
        b.write(main, loc); // 11
        b.end(main, t2); // 12
        let trace = b.finish();
        let hb = hb(&trace);
        assert!(hb.ordered(7, 9), "enable ≺ post");
        assert!(hb.ordered(8, 10), "NOPRE through the enable edge");
        assert!(hb.ordered(6, 11), "no race between the writes");
    }

    #[test]
    fn delayed_post_breaks_fifo_one_way() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let binder = b.thread("binder", ThreadKind::Binder, true);
        let slow = b.task("slow");
        let fast = b.task("fast");
        let loc = b.loc("o", "C.f");
        b.thread_init(main); // 0
        b.attach_q(main); // 1
        b.loop_on_q(main); // 2
        b.thread_init(binder); // 3
        b.post_delayed(binder, slow, main, 1000); // 4
        b.post(binder, fast, main); // 5
        b.begin(main, fast); // 6
        b.write(main, loc); // 7
        b.end(main, fast); // 8
        b.begin(main, slow); // 9
        b.read(main, loc); // 10
        b.end(main, slow); // 11
        let trace = b.finish();
        let hb = hb(&trace);
        // posts ordered 4 ≺ 5 (binder PO), but FIFO must NOT order
        // end(slow)…; here `fast` ran first. Check: end(fast) ≺ begin(slow)?
        // That needs post(fast) ≺ post(slow) — false (5 after 4). And
        // delayed-FIFO forbids slow-before-fast ordering. So the accesses
        // race (delayed race category).
        assert!(hb.concurrent(7, 10));
    }

    #[test]
    fn delayed_posts_order_by_timeout() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let binder = b.thread("binder", ThreadKind::Binder, true);
        let short = b.task("short");
        let long = b.task("long");
        let loc = b.loc("o", "C.f");
        b.thread_init(main); // 0
        b.attach_q(main); // 1
        b.loop_on_q(main); // 2
        b.thread_init(binder); // 3
        b.post_delayed(binder, short, main, 10); // 4
        b.post_delayed(binder, long, main, 1000); // 5
        b.begin(main, short); // 6
        b.write(main, loc); // 7
        b.end(main, short); // 8
        b.begin(main, long); // 9
        b.read(main, loc); // 10
        b.end(main, long); // 11
        let trace = b.finish();
        let hb = hb(&trace);
        assert!(hb.ordered(8, 9), "δ=10 ≤ δ=1000: FIFO applies");
        assert!(hb.ordered(7, 10));
    }

    #[test]
    fn front_post_extension_suppresses_fifo() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let binder = b.thread("binder", ThreadKind::Binder, true);
        let a = b.task("A");
        let urgent = b.task("urgent");
        let loc = b.loc("o", "C.f");
        b.thread_init(main); // 0
        b.attach_q(main); // 1
        b.loop_on_q(main); // 2
        b.thread_init(binder); // 3
        b.post(binder, a, main); // 4
        b.post_front(binder, urgent, main); // 5
        b.begin(main, urgent); // 6
        b.write(main, loc); // 7
        b.end(main, urgent); // 8
        b.begin(main, a); // 9
        b.read(main, loc); // 10
        b.end(main, a); // 11
        let trace = b.finish();
        let hb = hb(&trace);
        // post(A) ≺ post(urgent) but urgent may overtake: no FIFO edge, the
        // accesses are concurrent.
        assert!(hb.concurrent(7, 10));
    }

    #[test]
    fn attach_q_precedes_cross_thread_posts() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, true);
        let t1 = b.task("A");
        b.thread_init(main); // 0
        b.attach_q(main); // 1
        b.loop_on_q(main); // 2
        b.thread_init(bg); // 3
        b.post(bg, t1, main); // 4
        b.begin(main, t1); // 5
        b.end(main, t1); // 6
        let trace = b.finish();
        let hb = hb(&trace);
        assert!(hb.ordered(1, 4), "ATTACH-Q-MT");
    }

    #[test]
    fn merged_and_unmerged_agree_on_op_ordering() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc1 = b.loc("o1", "C.f");
        let loc2 = b.loc("o2", "C.g");
        b.thread_init(main);
        b.write(main, loc1);
        b.write(main, loc2);
        b.fork(main, bg);
        b.read(main, loc1);
        b.thread_init(bg);
        b.read(bg, loc1);
        b.write(bg, loc2);
        let trace = b.finish();
        let merged = HappensBefore::compute(&trace, HbConfig::new());
        let unmerged = HappensBefore::compute(&trace, HbConfig::new().without_merging());
        for i in 0..trace.len() {
            for j in 0..trace.len() {
                assert_eq!(
                    merged.ordered(i, j),
                    unmerged.ordered(i, j),
                    "ops {i},{j} disagree"
                );
            }
        }
        assert!(merged.graph().node_count() < unmerged.graph().node_count());
    }

    #[test]
    fn empty_trace_is_fine() {
        let trace = TraceBuilder::new().finish();
        let hb = HappensBefore::compute(&trace, HbConfig::new());
        assert_eq!(hb.graph().node_count(), 0);
        assert_eq!(hb.ordered_pairs(), 0);
        // One (empty) round always runs; no edges, no word-ops.
        assert_eq!(
            *hb.stats(),
            EngineStats {
                rounds: 1,
                ..EngineStats::default()
            }
        );
    }

    /// Hand-derived counter expectations on a small queue trace. Binder
    /// posts two tasks to main; every edge of the computation is derivable
    /// on paper:
    ///
    /// * base (14): NO-Q-PO on main `0→1, 1→2, 2→{6,7,8,9}` and on binder
    ///   `3→4, 4→5`; ASYNC-PO `6→7, 8→9`; POST `4→6, 5→8`; ATTACH-Q-MT
    ///   `1→4, 1→5`;
    /// * round 1 TRANS-ST (10): `3→5`, `1→{6,7,8,9}`, `0→{2,6,7,8,9}`;
    /// * round 1 TRANS-MT (10): `5→9`, `4→{7,8,9}`, `3→{6,7,8,9}`,
    ///   `0→{4,5}`;
    /// * round 1 FIFO (1): posts 4 ≺ 5 fire `end(A)=7 ≺ begin(B)=8`;
    /// * round 2 TRANS-ST (3): `7→9, 6→8, 6→9`; round 3 changes nothing.
    #[test]
    fn stats_match_hand_derived_counts() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let binder = b.thread("binder", ThreadKind::Binder, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        b.thread_init(main); // 0
        b.attach_q(main); // 1
        b.loop_on_q(main); // 2
        b.thread_init(binder); // 3
        b.post(binder, t1, main); // 4
        b.post(binder, t2, main); // 5
        b.begin(main, t1); // 6
        b.end(main, t1); // 7
        b.begin(main, t2); // 8
        b.end(main, t2); // 9
        let trace = b.finish();
        let hb = hb(&trace);
        let s = hb.stats();
        assert_eq!(s.base_edges, 14);
        assert_eq!(s.fifo_fired, 1);
        assert_eq!(s.nopre_fired, 0);
        assert_eq!(s.trans_st_edges, 13);
        assert_eq!(s.trans_mt_edges, 10);
        assert_eq!(s.rounds, 3);
        assert!(s.word_ops > 0, "saturation touched the bit matrices");
        // Incremental-engine counters, also hand-derivable. Round 1
        // recomputes all 10 rows. The FIFO edge 7 → 8 dirties exactly the
        // nodes reaching 7 through direct edges: {7, 6, 2, 4, 1, 3, 0} —
        // seven pops, seven rows in round 2. Round 3 has no dirty sources.
        assert_eq!(s.worklist_pops, 7);
        assert_eq!(s.rows_recomputed, 17);
        // The counters partition the closed relation exactly.
        assert_eq!(hb.ordered_pairs(), s.base_edges + s.derived_edges());
    }

    fn arbitrary_stats(k: usize) -> EngineStats {
        EngineStats {
            base_edges: 3 + k,
            fifo_fired: k,
            nopre_fired: 2 * k,
            trans_st_edges: 5 + k,
            trans_mt_edges: 7,
            rounds: 1 + k,
            word_ops: 100 + k as u64,
            worklist_pops: 11,
            rows_recomputed: 13 + k as u64,
            skipped_words: 17,
            batches: 19 + k as u64,
            batch_conflicts: 23,
        }
    }

    /// `since` is the inverse of `absorb`: absorbing per-pass deltas
    /// reproduces the accumulated totals, so a multi-pass session that
    /// rebaselines between passes never double-counts.
    #[test]
    fn stats_since_inverts_absorb() {
        let pass1 = arbitrary_stats(2);
        let pass2 = arbitrary_stats(9);
        let mut accumulated = pass1;
        accumulated.absorb(&pass2);
        assert_eq!(accumulated.since(&pass1), pass2);
        assert_eq!(accumulated.since(&pass2), pass1);
        assert_eq!(accumulated.since(&accumulated), EngineStats::default());
        // Re-absorbing the deltas from a fresh baseline reproduces the
        // accumulated totals exactly.
        let mut replayed = EngineStats::default();
        replayed.absorb(&accumulated.since(&pass2));
        replayed.absorb(&accumulated.since(&pass1));
        assert_eq!(replayed, accumulated);
    }

    /// The generator examine-stamp dedup must not key off `stats.rounds`:
    /// two independent closures of the same trace (the second standing in
    /// for a later pass of a multi-pass session with rebaselined stats)
    /// fire the same generator edges and report identical semantic
    /// counters.
    #[test]
    fn repeated_closures_reuse_no_stale_stamps() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let binder = b.thread("binder", ThreadKind::Binder, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.thread_init(binder);
        b.post(binder, t1, main);
        b.post(binder, t2, main);
        b.begin(main, t1);
        b.end(main, t1);
        b.begin(main, t2);
        b.end(main, t2);
        let trace = b.finish();
        let first = HappensBefore::compute(&trace, HbConfig::new());
        let second = HappensBefore::compute(&trace, HbConfig::new());
        assert_eq!(first.stats(), second.stats());
        assert_eq!(first.stats().fifo_fired, 1);
        assert_eq!(first.relation_matrices().0, second.relation_matrices().0);
    }

    /// The incremental engine and the retained reference saturation derive
    /// bit-identical matrices and identical semantic counters (the
    /// work-accounting counters legitimately differ).
    #[test]
    fn incremental_matches_reference_on_unit_traces() {
        let traces = [
            {
                let mut b = TraceBuilder::new();
                let main = b.thread("main", ThreadKind::Main, true);
                let binder = b.thread("binder", ThreadKind::Binder, true);
                let t1 = b.task("A");
                let t2 = b.task("B");
                let loc = b.loc("o", "C.f");
                b.thread_init(main);
                b.attach_q(main);
                b.loop_on_q(main);
                b.thread_init(binder);
                b.post(binder, t1, main);
                b.post(binder, t2, main);
                b.begin(main, t1);
                b.write(main, loc);
                b.end(main, t1);
                b.begin(main, t2);
                b.read(main, loc);
                b.end(main, t2);
                b.finish()
            },
            {
                let mut b = TraceBuilder::new();
                let main = b.thread("main", ThreadKind::Main, true);
                let bg = b.thread("bg", ThreadKind::App, false);
                let l = b.lock("m");
                let loc = b.loc("o", "C.f");
                b.thread_init(main);
                b.acquire(main, l);
                b.write(main, loc);
                b.release(main, l);
                b.fork(main, bg);
                b.thread_init(bg);
                b.acquire(bg, l);
                b.read(bg, loc);
                b.release(bg, l);
                b.thread_exit(bg);
                b.join(main, bg);
                b.finish()
            },
        ];
        for trace in &traces {
            for mode in HbMode::all() {
                let config = HbConfig {
                    rules: mode.rule_set(),
                    merge_accesses: true,
                };
                let inc = HappensBefore::compute(trace, config);
                let rf = HappensBefore::compute_reference(trace, config);
                let (inc_a, inc_b) = inc.relation_matrices();
                let (ref_a, ref_b) = rf.relation_matrices();
                assert_eq!(inc_a, ref_a, "{mode:?}: primary matrix differs");
                assert_eq!(inc_b, ref_b, "{mode:?}: mt matrix differs");
                let (i, r) = (inc.stats(), rf.stats());
                assert_eq!(
                    (i.base_edges, i.fifo_fired, i.nopre_fired, i.rounds),
                    (r.base_edges, r.fifo_fired, r.nopre_fired, r.rounds),
                    "{mode:?}: semantic counters differ"
                );
                assert_eq!(i.trans_st_edges, r.trans_st_edges, "{mode:?}");
                assert_eq!(i.trans_mt_edges, r.trans_mt_edges, "{mode:?}");
                assert_eq!((r.worklist_pops, r.rows_recomputed), (0, 0));
            }
        }
    }

    /// Row bounds make saturation cheaper than whole-row scanning: the
    /// incremental engine's `word_ops` undercut the reference's, and the
    /// skipped words account for real all-zero prefix/suffix words.
    #[test]
    fn incremental_word_ops_undercut_reference() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let binder = b.thread("binder", ThreadKind::Binder, true);
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.thread_init(binder);
        let mut tasks = Vec::new();
        for i in 0..40 {
            let t = b.task(format!("t{i}"));
            b.post(binder, t, main);
            tasks.push(t);
        }
        for t in tasks {
            b.begin(main, t);
            b.write(main, loc);
            b.end(main, t);
        }
        let trace = b.finish();
        let config = HbConfig::new();
        let inc = HappensBefore::compute(&trace, config);
        let rf = HappensBefore::compute_reference(&trace, config);
        assert_eq!(inc.relation_matrices().0, rf.relation_matrices().0);
        assert!(
            inc.stats().word_ops < rf.stats().word_ops,
            "incremental {} !< reference {}",
            inc.stats().word_ops,
            rf.stats().word_ops
        );
        assert!(inc.stats().skipped_words > 0);
        assert!(inc.stats().worklist_pops > 0, "later rounds used the worklist");
    }

    #[test]
    fn stats_absorb_sums_every_counter() {
        let mut a = EngineStats {
            base_edges: 1,
            fifo_fired: 2,
            nopre_fired: 3,
            trans_st_edges: 4,
            trans_mt_edges: 5,
            rounds: 6,
            word_ops: 7,
            worklist_pops: 8,
            rows_recomputed: 9,
            skipped_words: 10,
            batches: 11,
            batch_conflicts: 12,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(
            a,
            EngineStats {
                base_edges: 2,
                fifo_fired: 4,
                nopre_fired: 6,
                trans_st_edges: 8,
                trans_mt_edges: 10,
                rounds: 12,
                word_ops: 14,
                worklist_pops: 16,
                rows_recomputed: 18,
                skipped_words: 20,
                batches: 22,
                batch_conflicts: 24,
            }
        );
    }

    /// NOPRE firing is counted separately from FIFO: a delayed first post
    /// blocks the FIFO premise (δ-refinement), but the second task is
    /// posted *from inside* the first, so NOPRE orders them.
    #[test]
    fn stats_count_nopre_separately() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        b.thread_init(main); // 0
        b.attach_q(main); // 1
        b.loop_on_q(main); // 2
        b.post_delayed(main, t1, main, 100); // 3
        b.begin(main, t1); // 4
        b.post(main, t2, main); // 5 (inside task A)
        b.end(main, t1); // 6
        b.begin(main, t2); // 7
        b.end(main, t2); // 8
        let trace = b.finish();
        let hb = hb(&trace);
        let s = hb.stats();
        assert_eq!(s.fifo_fired, 0, "Delayed→Plain blocks FIFO");
        assert_eq!(s.nopre_fired, 1);
        assert!(hb.ordered(6, 7), "NOPRE edge end(A) ≺ begin(B)");
        assert_eq!(hb.ordered_pairs(), s.base_edges + s.derived_edges());
    }

    /// The counters are deterministic: recomputing the same trace under the
    /// same configuration yields bit-identical stats.
    #[test]
    fn stats_are_deterministic() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.fork(main, bg);
        b.write(main, loc);
        b.thread_init(bg);
        b.read(bg, loc);
        let trace = b.finish();
        let a = hb(&trace);
        let b2 = hb(&trace);
        assert_eq!(a.stats(), b2.stats());
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use crate::robust::{Budget, BudgetReason};
    use droidracer_trace::{ThreadKind, TraceBuilder};
    use std::time::{Duration, Instant};

    /// A trace big enough that the engine does real work: many tasks posted
    /// across threads with interleaved accesses and lock traffic.
    fn busy_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let binder = b.thread("binder", ThreadKind::Binder, true);
        let bg = b.thread("bg", ThreadKind::App, true);
        let l = b.lock("m");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.thread_init(binder);
        b.thread_init(bg);
        let locs: Vec<_> = (0..8).map(|i| b.loc("o", format!("C.f{i}"))).collect();
        for k in 0..24 {
            let task = b.task(format!("T{k}"));
            b.post(binder, task, main);
            b.begin(main, task);
            b.write(main, locs[k % locs.len()]);
            b.read(main, locs[(k + 3) % locs.len()]);
            b.end(main, task);
            b.acquire(bg, l);
            b.write(bg, locs[k % locs.len()]);
            b.release(bg, l);
        }
        b.finish()
    }

    #[test]
    fn unlimited_budget_matches_plain_compute() {
        let trace = busy_trace();
        let plain = HappensBefore::compute(&trace, HbConfig::new());
        let budgeted = HappensBefore::compute_budgeted(&trace, HbConfig::new(), &Budget::unlimited())
            .expect("unlimited budget cannot exhaust");
        assert_eq!(plain.stats(), budgeted.stats());
        assert_eq!(plain.ordered_pairs(), budgeted.ordered_pairs());
    }

    #[test]
    fn op_cap_exhausts_with_partial_stats() {
        let trace = busy_trace();
        let full = HappensBefore::compute(&trace, HbConfig::new());
        assert!(full.stats().word_ops > 8, "trace must exercise the engine");
        let err = HappensBefore::compute_budgeted(
            &trace,
            HbConfig::new(),
            &Budget::unlimited().with_max_ops(8),
        )
        .expect_err("tiny op cap must trip");
        assert_eq!(err.reason, BudgetReason::OpCap);
        assert!(err.ops_processed > 8, "cutoff past the cap by at most one poll");
        assert!(
            err.partial.word_ops == err.ops_processed && err.partial.rows_recomputed > 0,
            "partial stats reflect work done: {:?}",
            err.partial
        );
        assert!(err.partial.word_ops < full.stats().word_ops);
        // The input is fine — re-running unbudgeted (and via the reference
        // engine) agrees completely.
        let again = HappensBefore::compute(&trace, HbConfig::new());
        assert_eq!(again.stats(), full.stats());
        let reference = HappensBefore::compute_reference(&trace, HbConfig::new());
        assert_eq!(reference.ordered_pairs(), full.ordered_pairs());
        assert_eq!(reference.stats().base_edges, full.stats().base_edges);
    }

    #[test]
    fn past_deadline_exhausts_immediately() {
        let trace = busy_trace();
        let err = HappensBefore::compute_budgeted(
            &trace,
            HbConfig::new(),
            &Budget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1)),
        )
        .expect_err("expired deadline must trip");
        assert_eq!(err.reason, BudgetReason::Deadline);
        // Afterwards the unbudgeted run still works and is deterministic.
        let a = HappensBefore::compute(&trace, HbConfig::new());
        let b2 = HappensBefore::compute(&trace, HbConfig::new());
        assert_eq!(a.stats(), b2.stats());
    }

    #[test]
    fn matrix_bit_cap_blocks_allocation_up_front() {
        let trace = busy_trace();
        let err = HappensBefore::compute_budgeted(
            &trace,
            HbConfig::new(),
            &Budget::unlimited().with_max_matrix_bits(64),
        )
        .expect_err("tiny matrix cap must trip");
        assert_eq!(err.reason, BudgetReason::MatrixBits);
        assert_eq!(err.ops_processed, 0, "tripped before any work");
        assert_eq!(err.partial, EngineStats::default());
        // A generous cap admits the same result as the unbudgeted run.
        let n = HappensBefore::compute(&trace, HbConfig::new()).graph().node_count() as u64;
        let ok = HappensBefore::compute_budgeted(
            &trace,
            HbConfig::new(),
            &Budget::unlimited().with_max_matrix_bits(2 * n * n),
        )
        .expect("exact cap admits the run");
        assert_eq!(ok.stats(), HappensBefore::compute(&trace, HbConfig::new()).stats());
    }

    #[test]
    fn budgeted_reference_engine_also_polls() {
        let trace = busy_trace();
        let index = trace.index();
        let config = HbConfig::new();
        let graph =
            crate::graph::HbGraph::build(&trace, &index, config.merge_accesses);
        // The reference saturator goes through the same close_over path only
        // via compute_reference (unlimited); exercise the budgeted worklist
        // path on a prebuilt graph instead.
        let err = HappensBefore::compute_on_graph_budgeted(
            &trace,
            &index,
            graph,
            config,
            &Budget::unlimited().with_max_ops(1),
        )
        .expect_err("op cap of 1 must trip");
        assert_eq!(err.reason, BudgetReason::OpCap);
    }

    #[test]
    fn detector_passes_respect_budgets() {
        use crate::robust::BudgetReason;
        let trace = busy_trace();
        let full = crate::fasttrack::detect(&trace);
        let ft = crate::fasttrack::detect_budgeted(&trace, &Budget::unlimited())
            .expect("unlimited budget cannot exhaust");
        assert_eq!(ft, full);
        let err = crate::fasttrack::detect_budgeted(&trace, &Budget::unlimited().with_max_ops(5))
            .expect_err("op cap must trip");
        assert_eq!(err.reason, BudgetReason::OpCap);
        assert_eq!(err.ops_processed, 5);
        let err = crate::fasttrack::detect_budgeted(
            &trace,
            &Budget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1)),
        )
        .expect_err("expired deadline must trip");
        assert_eq!(err.reason, BudgetReason::Deadline);
        let vc_full = crate::vc::detect_multithreaded(&trace);
        let vc_budgeted =
            crate::vc::detect_multithreaded_budgeted(&trace, &Budget::unlimited())
                .expect("unlimited budget cannot exhaust");
        assert_eq!(vc_budgeted, vc_full);
        let err =
            crate::vc::detect_multithreaded_budgeted(&trace, &Budget::unlimited().with_max_ops(3))
                .expect_err("op cap must trip");
        assert_eq!(err.reason, BudgetReason::OpCap);
    }
}
