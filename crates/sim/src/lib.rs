//! A deterministic simulator for the Android concurrency model.
//!
//! This crate is the reproduction's substitute for the instrumented Dalvik
//! VM that DroidRacer runs applications on: programs written in the core
//! language of §3 (threads, task queues, asynchronous posts, locks, memory
//! accesses, `enable` operations) are interpreted under a pluggable
//! [`Scheduler`], emitting execution traces that satisfy the operational
//! semantics of Figure 5 (checked by [`droidracer_trace::validate`]).
//!
//! * [`Program`] / [`ProgramBuilder`] — the application model,
//! * [`run`] — the interpreter,
//! * [`RoundRobinScheduler`], [`RandomScheduler`], [`ScriptedScheduler`] —
//!   schedules, including exact replay from a recorded decision vector (the
//!   backbone of the UI Explorer's backtracking).
//!
//! # Examples
//!
//! ```
//! use droidracer_sim::{run, Action, ProgramBuilder, RandomScheduler, SimConfig, ThreadSpec};
//! use droidracer_trace::{validate, PostKind, ThreadKind};
//!
//! let mut p = ProgramBuilder::new();
//! let main = p.thread(ThreadSpec::app("main").kind(ThreadKind::Main).initial().with_queue());
//! let bg = p.thread(ThreadSpec::app("bg"));
//! let flag = p.loc("activity", "Act.destroyed");
//! let update = p.task("onUpdate", vec![Action::Read(flag)]);
//! p.set_thread_body(main, vec![Action::Write(flag), Action::Fork(bg)]);
//! p.set_thread_body(bg, vec![
//!     Action::Read(flag),
//!     Action::Post { task: update, target: main, kind: PostKind::Plain },
//! ]);
//!
//! let result = run(&p.finish()?, &mut RandomScheduler::new(7), &SimConfig::default())?;
//! assert!(result.completed);
//! validate(&result.trace)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod explore;
mod program;
mod runtime;
mod scheduler;

pub use explore::{explore_schedules, explore_schedules_reduced, Exploration, ExploreConfig};
pub use program::{
    Action, Injection, LocRef, LockRef, Program, ProgramBuilder, ProgramError, TaskRef, ThreadRef,
    ThreadSpec,
};
pub use runtime::{run, SimConfig, SimError, SimResult};
pub use scheduler::{
    Choice, RandomScheduler, RoundRobinScheduler, Scheduler, ScriptedScheduler, StallScheduler,
};
