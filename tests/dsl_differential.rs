//! DSL-faithfulness differential tests.
//!
//! The compiler's Activity lowering is derived from the declarative
//! [`droidracer::framework::dsl::ACTIVITY`] automaton. These tests prove the
//! derivation changes nothing: a hand-built plan transcribing the original
//! hard-coded lowering is equal to the DSL-derived one, and compiling every
//! corpus application through either plan yields bit-identical traces and
//! identical race reports under every happens-before mode.

use droidracer::apps::{component_corpus, corpus, strip_untracked, CorpusEntry};
use droidracer::core::{AnalysisBuilder, HbMode};
use droidracer::framework::lifecycle::Callback;
use droidracer::framework::{compile_with_activity_plan, ActivityPlan, LifecycleTask, PlanTask};
use droidracer::sim::{run, RandomScheduler, SimConfig};
use droidracer::trace::{to_text, Trace};

/// The original hand-coded Activity lowering, transcribed literally: which
/// callbacks each lifecycle transition runs and which transitions it
/// enables on completion. This is the plan the compiler used before the
/// DSL existed; it must never drift from [`ActivityPlan::from_dsl`].
fn legacy_plan() -> ActivityPlan {
    let t = |task, runs: &[Callback], enables: &[LifecycleTask], initial| PlanTask {
        task,
        runs: runs.to_vec(),
        enables: enables.to_vec(),
        initial,
    };
    ActivityPlan {
        tasks: vec![
            t(
                LifecycleTask::Launch,
                &[Callback::Create, Callback::Start, Callback::Resume],
                &[LifecycleTask::Pause, LifecycleTask::Destroy],
                true,
            ),
            t(
                LifecycleTask::Pause,
                &[Callback::Pause],
                &[LifecycleTask::Stop, LifecycleTask::Resume],
                false,
            ),
            t(
                LifecycleTask::Stop,
                &[Callback::Stop],
                &[LifecycleTask::Relaunch],
                false,
            ),
            t(
                LifecycleTask::Destroy,
                &[Callback::Destroy],
                &[LifecycleTask::Launch],
                false,
            ),
            t(
                LifecycleTask::Resume,
                &[Callback::Resume],
                &[LifecycleTask::Pause, LifecycleTask::Destroy],
                false,
            ),
            t(
                LifecycleTask::Relaunch,
                &[Callback::Restart, Callback::Start, Callback::Resume],
                &[LifecycleTask::Pause, LifecycleTask::Destroy],
                false,
            ),
        ],
    }
}

/// Compiles and runs `entry` under an explicit activity plan, mirroring
/// [`CorpusEntry::generate_trace`] exactly (same scheduler, seed, step
/// bound and untracked stripping).
fn trace_with_plan(entry: &CorpusEntry, plan: &ActivityPlan) -> Trace {
    let compiled =
        compile_with_activity_plan(&entry.app, &entry.events, plan).expect("entry compiles");
    let result = run(
        &compiled.program,
        &mut RandomScheduler::new(entry.seed),
        &SimConfig { max_steps: 600_000 },
    )
    .expect("entry simulates");
    assert!(result.completed, "{}: run did not complete", entry.name);
    strip_untracked(&result.trace)
}

fn full_catalog() -> Vec<CorpusEntry> {
    let mut entries = corpus();
    entries.extend(component_corpus());
    entries
}

#[test]
fn dsl_plan_equals_the_hand_coded_lowering() {
    assert_eq!(ActivityPlan::from_dsl(), legacy_plan());
}

#[test]
fn dsl_traces_are_bit_identical_across_the_catalog() {
    let dsl = ActivityPlan::from_dsl();
    let legacy = legacy_plan();
    for entry in full_catalog() {
        let a = trace_with_plan(&entry, &dsl);
        let b = trace_with_plan(&entry, &legacy);
        assert_eq!(
            to_text(&a),
            to_text(&b),
            "{}: DSL-compiled trace diverges from the legacy lowering",
            entry.name
        );
        // The default compile() path is the DSL plan; the entry's own trace
        // must be the same artifact.
        let own = entry.generate_trace().expect("entry runs");
        assert_eq!(to_text(&a), to_text(&own), "{}: generate_trace differs", entry.name);
    }
}

#[test]
fn dsl_race_reports_match_under_every_hb_mode() {
    let dsl = ActivityPlan::from_dsl();
    let legacy = legacy_plan();
    for entry in full_catalog() {
        let a = trace_with_plan(&entry, &dsl);
        let b = trace_with_plan(&entry, &legacy);
        for mode in HbMode::all() {
            let ra = AnalysisBuilder::new().mode(mode).analyze(&a).expect("analysis");
            let rb = AnalysisBuilder::new().mode(mode).analyze(&b).expect("analysis");
            assert_eq!(
                ra.races(),
                rb.races(),
                "{} under {mode:?}: race sets diverge",
                entry.name
            );
            assert_eq!(
                ra.representatives(),
                rb.representatives(),
                "{} under {mode:?}: representatives diverge",
                entry.name
            );
        }
    }
}
