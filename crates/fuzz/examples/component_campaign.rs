//! 10k-iteration component-substructure fuzz campaign.
//!
//! Generates programs with all four component substructures boosted, runs
//! every iteration through the full oracle stack (any divergence is a
//! detector bug and aborts the campaign), then — for each component tag —
//! picks the smallest divergence-free spec whose trace exhibits that
//! component's engine shape, shrinks it with the campaign predicate as the
//! keep-condition, and writes the shrunk trace to
//! `tests/data/fuzz_regressions/component_<tag>.trace`.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run --release -p droidracer-fuzz --example component_campaign
//! ```

use std::collections::BTreeSet;
use std::path::Path;

use droidracer_core::HbConfig;
use droidracer_fuzz::corpus::{save_regression, serial_executor_ordering};
use droidracer_fuzz::gen::{generate, ComponentTag, GenBias, GenConfig, ProgramSpec};
use droidracer_fuzz::oracle::check_trace;
use droidracer_fuzz::shrink::shrink_with;
use droidracer_sim::{run, RandomScheduler, SimConfig};
use droidracer_trace::{OpKind, ThreadId, ThreadKind, Trace};

const ITERATIONS: u64 = 10_000;
const CAMPAIGN_SEED: u64 = 0xC011701;

/// Threads that appear as the target of any post.
fn post_receivers(trace: &Trace) -> BTreeSet<ThreadId> {
    trace
        .iter()
        .filter_map(|(_, op)| match op.kind {
            OpKind::Post { target, .. } => Some(target),
            _ => None,
        })
        .collect()
}

fn main_threads(trace: &Trace) -> BTreeSet<ThreadId> {
    trace
        .names()
        .threads()
        .filter(|(_, d)| d.kind == ThreadKind::Main)
        .map(|(id, _)| id)
        .collect()
}

/// Service shape: a never-posted-to thread re-delivers two or more tasks
/// to a main looper while the trace also forks a worker (the loader racing
/// the command handlers).
fn service_shape(trace: &Trace) -> bool {
    let receivers = post_receivers(trace);
    let mains = main_threads(trace);
    let mut redelivery = false;
    let mut per_poster: std::collections::BTreeMap<ThreadId, usize> = Default::default();
    let mut has_fork = false;
    for (_, op) in trace.iter() {
        match op.kind {
            OpKind::Post { target, .. }
                if !receivers.contains(&op.thread) && mains.contains(&target) =>
            {
                let n = per_poster.entry(op.thread).or_insert(0);
                *n += 1;
                redelivery |= *n >= 2;
            }
            OpKind::Fork { .. } => has_fork = true,
            _ => {}
        }
    }
    redelivery && has_fork
}

/// Fragment shape: a fork issued from *inside* a posted task (between its
/// begin and end) on a main looper — background view work launched by a
/// lifecycle callback — with a later task on the same looper (the detach
/// window reader).
fn fragment_shape(trace: &Trace) -> bool {
    let mains = main_threads(trace);
    let mut depth: std::collections::BTreeMap<ThreadId, usize> = Default::default();
    let mut fork_in_task = false;
    let mut begins_after_fork = false;
    for (_, op) in trace.iter() {
        if !mains.contains(&op.thread) {
            continue;
        }
        match op.kind {
            OpKind::Begin { .. } => {
                *depth.entry(op.thread).or_insert(0) += 1;
                begins_after_fork |= fork_in_task;
            }
            OpKind::End { .. } => {
                let d = depth.entry(op.thread).or_insert(0);
                *d = d.saturating_sub(1);
            }
            OpKind::Fork { .. } if depth.get(&op.thread).copied().unwrap_or(0) > 0 => {
                fork_in_task = true;
            }
            _ => {}
        }
    }
    fork_in_task && begins_after_fork
}

/// Broadcast shape: a never-posted-to sender posts a receiver task and
/// then keeps writing on its own thread — the write after the post has no
/// happens-before edge back to the delivered handler.
fn broadcast_shape(trace: &Trace) -> bool {
    let receivers = post_receivers(trace);
    let mut posted: BTreeSet<ThreadId> = BTreeSet::new();
    for (_, op) in trace.iter() {
        match op.kind {
            OpKind::Post { .. } if !receivers.contains(&op.thread) => {
                posted.insert(op.thread);
            }
            OpKind::Write { .. } if posted.contains(&op.thread) => return true,
            _ => {}
        }
    }
    false
}

fn shape_of(tag: ComponentTag) -> fn(&Trace) -> bool {
    match tag {
        ComponentTag::Service => service_shape,
        ComponentTag::Fragment => fragment_shape,
        ComponentTag::SerialExecutor => serial_executor_ordering,
        ComponentTag::Broadcast => broadcast_shape,
    }
}

/// Runs `spec` and returns its trace if it completes divergence-free and
/// exhibits `shape`.
fn qualifies(spec: &ProgramSpec, sched_seed: u64, shape: fn(&Trace) -> bool) -> Option<Trace> {
    let program = spec.lower().ok()?;
    let result = run(
        &program,
        &mut RandomScheduler::new(sched_seed),
        &SimConfig { max_steps: 20_000 },
    )
    .ok()?;
    if !result.completed {
        return None;
    }
    let report = check_trace(&result.trace, HbConfig::new(), HbConfig::new());
    if !report.divergences.is_empty() {
        return None;
    }
    shape(&result.trace).then_some(result.trace)
}

fn main() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let mut bias = GenBias::default();
    for tag in ComponentTag::all() {
        bias.set_component_pct(tag, 50);
    }
    let config = GenConfig::default();

    // (smallest spec so far, its scheduler seed) per tag.
    let mut best: std::collections::BTreeMap<&'static str, (ProgramSpec, u64)> = Default::default();
    let mut divergences = 0usize;

    for iter in 0..ITERATIONS {
        let mut rng = SmallRng::seed_from_u64(CAMPAIGN_SEED ^ iter);
        let spec = generate(&mut rng, &config, &bias);
        let Ok(program) = spec.lower() else {
            panic!("iteration {iter}: generated spec fails to lower");
        };
        let Ok(result) = run(
            &program,
            &mut RandomScheduler::new(iter),
            &SimConfig { max_steps: 20_000 },
        ) else {
            panic!("iteration {iter}: simulation error");
        };
        if !result.completed {
            continue;
        }
        let report = check_trace(&result.trace, HbConfig::new(), HbConfig::new());
        if !report.divergences.is_empty() {
            divergences += 1;
            eprintln!("iteration {iter}: DIVERGENCE {:?}", report.divergences);
            continue;
        }
        for &tag in &spec.components {
            if !shape_of(tag)(&result.trace) {
                continue;
            }
            let slot = best.entry(tag.label());
            let replace = match slot {
                std::collections::btree_map::Entry::Occupied(ref o) => {
                    spec.action_count() < o.get().0.action_count()
                }
                std::collections::btree_map::Entry::Vacant(_) => true,
            };
            if replace {
                match slot {
                    std::collections::btree_map::Entry::Occupied(mut o) => {
                        o.insert((spec.clone(), iter));
                    }
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert((spec.clone(), iter));
                    }
                }
            }
        }
    }

    assert_eq!(divergences, 0, "campaign found oracle divergences");

    let dir = Path::new("tests/data/fuzz_regressions");
    for tag in ComponentTag::all() {
        let Some((spec, sched_seed)) = best.get(tag.label()) else {
            panic!("{}: no qualifying spec in {ITERATIONS} iterations", tag.label());
        };
        let shape = shape_of(tag);
        let (shrunk, trace, rounds) =
            shrink_with(spec, &|s| qualifies(s, *sched_seed, shape)).expect("seed spec qualifies");
        let path = save_regression(dir, &format!("component_{}", tag.label()), &trace)
            .expect("regression written");
        println!(
            "{}: {} actions -> {} actions in {rounds} shrink rounds, {} trace ops -> {}",
            tag.label(),
            spec.action_count(),
            shrunk.action_count(),
            trace.len(),
            path.display(),
        );
    }
}
