//! Happens-before race detection for the Android concurrency model.
//!
//! This crate implements the primary contribution of *Race Detection for
//! Android Applications* (Maiya, Kanade, Majumdar — PLDI 2014):
//!
//! * the combined happens-before relation `≺ = ≺st ∪ ≺mt` of Figures 6
//!   and 7, with the paper's deliberately restricted transitivity
//!   ([`engine::HappensBefore`]);
//! * the graph-based detection algorithm of §4.3 with the §6 node-merging
//!   optimization ([`graph::HbGraph`], [`race::detect`]);
//! * race classification into multi-threaded / co-enabled / delayed /
//!   cross-posted / unknown ([`classify::classify`]);
//! * the baseline relations of §4.1's "Specializations" used in the
//!   evaluation ablation ([`rules::HbMode`]).
//!
//! # Examples
//!
//! ```
//! use droidracer_trace::{TraceBuilder, ThreadKind};
//! use droidracer_core::{AnalysisBuilder, RaceCategory};
//!
//! // The BACK-button scenario of the paper's §2 in miniature: an activity
//! // launch writes a flag, a background task reads it, and onDestroy —
//! // enabled once the launch finished — writes it again.
//! let mut b = TraceBuilder::new();
//! let binder = b.thread("binder", ThreadKind::Binder, true);
//! let main = b.thread("main", ThreadKind::Main, true);
//! let bg = b.thread("bg", ThreadKind::App, false);
//! let launch = b.task("LAUNCH_ACTIVITY");
//! let destroy = b.task("onDestroy");
//! let flag = b.loc("DwFileAct-obj", "isActivityDestroyed");
//!
//! b.thread_init(main);
//! b.attach_q(main);
//! b.loop_on_q(main);
//! b.thread_init(binder);
//! b.post(binder, launch, main);
//! b.begin(main, launch);
//! b.write(main, flag);
//! b.fork(main, bg);
//! b.enable(main, destroy);
//! b.end(main, launch);
//! b.thread_init(bg);
//! b.read(bg, flag);
//! b.thread_exit(bg);
//! b.post(binder, destroy, main);
//! b.begin(main, destroy);
//! b.write(main, flag);
//! b.end(main, destroy);
//!
//! let analysis = AnalysisBuilder::new().analyze(&b.finish()).unwrap();
//! // The bg read races with onDestroy's write (multi-threaded), but the
//! // launch write does not race with onDestroy thanks to the enable edge.
//! assert_eq!(analysis.count(RaceCategory::Multithreaded), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitmatrix;
mod classify;
mod coverage;
mod engine;
mod explain;
pub mod fasttrack;
mod graph;
pub mod par;
mod race;
mod report;
mod robust;
mod rules;
mod service;
mod session;
pub mod simd;
mod stream;
pub mod vc;

pub use classify::{classify, RaceCategory};
pub use coverage::{race_coverage, CoverageReport};
pub use explain::{explain, to_dot};
pub use engine::{EngineStats, HappensBefore};
pub use graph::{DirectEdges, HbGraph, Node, NodeId};
pub use par::{
    analyze_all, analyze_all_profiled, analyze_all_with, default_threads, effective_workers,
    par_map, par_map_profiled, par_try_map, run_isolated, ItemError, SPAWN_MIN_ITEMS,
};
pub use race::{detect, find_races, Race, RaceKind};
pub use report::{Analysis, AnalysisTiming, CategoryCounts, ClassifiedRace};
pub use robust::{Budget, BudgetExhausted, BudgetReason, Quarantined, QuarantineCause};
pub use rules::{HbConfig, HbMode, RuleSet};
pub use service::{
    AnalysisService, ExitClass, JobReport, JobSpec, JobStats, LocalService, ReportedRace,
};
pub use session::{AnalysisBuilder, AnalysisError, FaultHook, StreamReport, StreamingSession};
pub use stream::{
    RaceEvent, StreamEvent, StreamOptions, StreamOutcome, StreamStats, StreamingAnalysis,
};
