//! Resource budgets and fault-isolation types.
//!
//! DroidRacer is an offline detector meant to chew through large batches of
//! traces unattended; a single adversarial input must never hang, OOM, or
//! crash a whole run. This module defines the vocabulary the pipeline uses
//! to degrade gracefully:
//!
//! * [`Budget`] — per-analysis resource limits (op cap, matrix-allocation
//!   cap, wall-clock deadline), threaded through
//!   [`AnalysisBuilder`](crate::AnalysisBuilder) into the happens-before
//!   engine's worklist loop and the FastTrack / vector-clock passes. The
//!   loops poll cooperatively every few iterations, so exhaustion surfaces
//!   as a typed error — never a hang.
//! * [`BudgetExhausted`] — the typed exhaustion error, carrying the partial
//!   [`EngineStats`] accumulated up to the cutoff.
//! * [`Quarantined`] — the per-input verdict produced by the isolated
//!   fan-out paths ([`par_try_map`](crate::par_try_map) users such as
//!   `analyze_corpus_isolated` and `run_campaign_isolated`): the input is
//!   skipped with a cause and payload, and its siblings are unaffected.

use std::fmt;
use std::time::{Duration, Instant};

use crate::engine::EngineStats;

/// Resource limits for one analysis. The default is unlimited.
///
/// Budgets are *cooperative*: the engine polls them at loop granularity
/// (every row / every ~1024 trace ops), so overshoot is bounded by one poll
/// interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Cap on units of work: bit-matrix words touched for the
    /// happens-before engine, trace operations processed for the
    /// FastTrack / vector-clock detectors.
    pub max_ops: Option<u64>,
    /// Cap on total bits the engine may allocate for its relation matrices
    /// (checked up front, before allocation — the engine's dominant memory).
    pub max_matrix_bits: Option<u64>,
    /// Wall-clock deadline.
    pub deadline: Option<Instant>,
}

impl Budget {
    /// No limits at all (the default).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Returns a copy with the work-unit cap set.
    pub fn with_max_ops(mut self, cap: u64) -> Self {
        self.max_ops = Some(cap);
        self
    }

    /// Returns a copy with the matrix-allocation cap (in bits) set.
    pub fn with_max_matrix_bits(mut self, bits: u64) -> Self {
        self.max_matrix_bits = Some(bits);
        self
    }

    /// Returns a copy with the deadline set.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns a copy whose deadline is `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Whether any limit is set. Unlimited budgets let the hot loops skip
    /// all polling.
    pub fn is_limited(&self) -> bool {
        self.max_ops.is_some() || self.max_matrix_bits.is_some() || self.deadline.is_some()
    }

    /// Whether the deadline (if any) has passed.
    pub fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Which limit of a [`Budget`] was hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The work-unit cap (`max_ops`) was exceeded.
    OpCap,
    /// The relation matrices would exceed `max_matrix_bits`.
    MatrixBits,
}

impl fmt::Display for BudgetReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetReason::Deadline => write!(f, "deadline"),
            BudgetReason::OpCap => write!(f, "op cap"),
            BudgetReason::MatrixBits => write!(f, "matrix-bit cap"),
        }
    }
}

/// An analysis ran out of [`Budget`]. Carries whatever deterministic
/// counters were accumulated before the cutoff, so callers can report how
/// far the input got.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// The limit that was hit.
    pub reason: BudgetReason,
    /// Engine counters at the cutoff (all zero when the cutoff happened
    /// before or outside the happens-before engine).
    pub partial: EngineStats,
    /// Work units processed when the limit tripped: bit-matrix word
    /// operations for the engine, trace ops for the detector passes.
    pub ops_processed: u64,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "analysis budget exhausted ({}) after {} work units",
            self.reason, self.ops_processed
        )
    }
}

impl std::error::Error for BudgetExhausted {}

/// Why an input was quarantined by an isolated fan-out run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineCause {
    /// The worker panicked while processing the input.
    Panic,
    /// The input blew its [`Budget`].
    BudgetExhausted(BudgetReason),
    /// The input failed with a typed error (parse, validation, compile…).
    Error,
}

impl fmt::Display for QuarantineCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineCause::Panic => write!(f, "panic"),
            QuarantineCause::BudgetExhausted(r) => write!(f, "budget exhausted ({r})"),
            QuarantineCause::Error => write!(f, "error"),
        }
    }
}

/// One quarantined input from an isolated batch run: the batch kept going,
/// this input's result was withheld, and the sibling results are exactly
/// what a run without this input would have produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// Which input was quarantined (corpus entry name, trace path, …).
    pub input: String,
    /// Why.
    pub cause: QuarantineCause,
    /// Human-readable details: the panic message or error rendering.
    pub payload: String,
}

impl fmt::Display for Quarantined {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "quarantined `{}` [{}]: {}", self.input, self.cause, self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_is_not_limited() {
        assert!(!Budget::unlimited().is_limited());
        assert!(!Budget::default().deadline_passed());
    }

    #[test]
    fn builders_set_limits() {
        let b = Budget::unlimited().with_max_ops(10).with_max_matrix_bits(1 << 20);
        assert!(b.is_limited());
        assert_eq!(b.max_ops, Some(10));
        assert_eq!(b.max_matrix_bits, Some(1 << 20));
        let past = Budget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        assert!(past.is_limited() && past.deadline_passed());
    }

    #[test]
    fn displays_are_informative() {
        let e = BudgetExhausted {
            reason: BudgetReason::OpCap,
            partial: EngineStats::default(),
            ops_processed: 42,
        };
        assert!(e.to_string().contains("op cap"));
        assert!(e.to_string().contains("42"));
        let q = Quarantined {
            input: "App".into(),
            cause: QuarantineCause::Panic,
            payload: "boom".into(),
        };
        let s = q.to_string();
        assert!(s.contains("App") && s.contains("panic") && s.contains("boom"), "{s}");
    }
}
