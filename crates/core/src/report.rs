//! End-to-end analysis: happens-before + detection + classification, with
//! Table 3-style reporting.
//!
//! Sessions are started through [`AnalysisBuilder`](crate::AnalysisBuilder);
//! for the service-shaped result (uniform across batch and streaming, with
//! a stable wire/cache encoding) see [`JobReport`](crate::JobReport).

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

use droidracer_obs::{MetricsRegistry, SpanRecord};
use droidracer_trace::{MemLoc, Trace};

use crate::classify::RaceCategory;
use crate::coverage::CoverageReport;
use crate::engine::HappensBefore;
use crate::race::Race;

/// Wall-clock time spent in each stage of one [`Analysis`] run.
///
/// Timing is *observability only*: it is the single non-deterministic part
/// of an analysis and is deliberately excluded from equality, reports, and
/// the parallel pipeline's determinism contract (see `par`).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisTiming {
    /// Stripping cancelled posts and building the trace index.
    pub prepare: Duration,
    /// Happens-before graph construction (including §6 node merging).
    pub graph: Duration,
    /// The happens-before fixpoint closure.
    pub closure: Duration,
    /// Race detection over unordered conflicting block pairs.
    pub detect: Duration,
    /// Race classification (§4.3 categories).
    pub classify: Duration,
}

impl AnalysisTiming {
    /// Combined graph-construction + closure time (the two stages were one
    /// field before the stage split; kept for reporting continuity).
    pub fn happens_before(&self) -> Duration {
        self.graph + self.closure
    }

    /// Total wall-clock time across all stages.
    pub fn total(&self) -> Duration {
        self.prepare + self.graph + self.closure + self.detect + self.classify
    }
}

/// A race together with its §4.3 category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifiedRace {
    /// The race.
    pub race: Race,
    /// Its category.
    pub category: RaceCategory,
}

/// One representative race per `(location, category)` pair — the reporting
/// granularity of Table 3 ("if there are multiple races belonging to the
/// same category on the same memory location, DroidRacer reports any one of
/// them").
pub(crate) fn representatives_of(races: &[ClassifiedRace]) -> Vec<ClassifiedRace> {
    let mut seen: HashMap<(MemLoc, RaceCategory), ClassifiedRace> = HashMap::new();
    for cr in races {
        seen.entry((cr.race.loc, cr.category)).or_insert(*cr);
    }
    let mut reps: Vec<ClassifiedRace> = seen.into_values().collect();
    reps.sort_by_key(|cr| (cr.race.loc, cr.category, cr.race.first, cr.race.second));
    reps
}

/// The result of analyzing one trace: the (cancellation-stripped) trace, the
/// happens-before relation, the classified races, and the session's
/// observability record (phase spans + engine metrics).
///
/// # Examples
///
/// ```
/// use droidracer_trace::{TraceBuilder, ThreadKind};
/// use droidracer_core::AnalysisBuilder;
///
/// let mut b = TraceBuilder::new();
/// let main = b.thread("main", ThreadKind::Main, true);
/// let bg = b.thread("bg", ThreadKind::App, false);
/// let loc = b.loc("obj", "C.state");
/// b.thread_init(main);
/// b.fork(main, bg);
/// b.thread_init(bg);
/// b.write(bg, loc);
/// b.read(main, loc);
///
/// let analysis = AnalysisBuilder::new().analyze(&b.finish()).unwrap();
/// assert_eq!(analysis.races().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Analysis {
    trace: Trace,
    hb: HappensBefore,
    races: Vec<ClassifiedRace>,
    timing: AnalysisTiming,
    spans: SpanRecord,
    coverage: Option<CoverageReport>,
    explanations: Vec<String>,
}

impl Analysis {
    /// Assembles a result from the pipeline stages (used by the builder;
    /// spans default to an empty placeholder until the session closes).
    pub(crate) fn assemble(
        trace: Trace,
        hb: HappensBefore,
        races: Vec<ClassifiedRace>,
        timing: AnalysisTiming,
    ) -> Self {
        Analysis {
            trace,
            hb,
            races,
            timing,
            spans: SpanRecord::leaf("analysis"),
            coverage: None,
            explanations: Vec::new(),
        }
    }

    pub(crate) fn set_spans(&mut self, spans: SpanRecord) {
        self.spans = spans;
    }

    pub(crate) fn set_coverage(&mut self, coverage: CoverageReport) {
        self.coverage = Some(coverage);
    }

    pub(crate) fn set_explanations(&mut self, explanations: Vec<String>) {
        self.explanations = explanations;
    }

    /// The analyzed trace (after cancellation stripping).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The happens-before relation.
    pub fn hb(&self) -> &HappensBefore {
        &self.hb
    }

    /// Per-stage wall-clock timing of this run (observability only; never
    /// part of report equality).
    pub fn timing(&self) -> &AnalysisTiming {
        &self.timing
    }

    /// The session's phase span tree (root `analysis`, children per pipeline
    /// stage). Span *structure* — names, nesting, counters — is
    /// deterministic; only `start_ns`/`dur_ns` carry wall-clock values.
    pub fn spans(&self) -> &SpanRecord {
        &self.spans
    }

    /// The session's metrics: every engine counter, graph/trace sizes, and
    /// per-category race counts as deterministic counters, plus the total
    /// wall-clock time as a gauge.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.counter_add("trace.ops", self.trace.len() as u64);
        m.counter_add("graph.nodes", self.hb.graph().node_count() as u64);
        let stats = self.hb.stats();
        m.counter_add("hb.base_edges", stats.base_edges as u64);
        m.counter_add("hb.fifo_fired", stats.fifo_fired as u64);
        m.counter_add("hb.nopre_fired", stats.nopre_fired as u64);
        m.counter_add("hb.trans_st_edges", stats.trans_st_edges as u64);
        m.counter_add("hb.trans_mt_edges", stats.trans_mt_edges as u64);
        m.counter_add("hb.rounds", stats.rounds as u64);
        m.counter_add("hb.word_ops", stats.word_ops);
        m.counter_add("hb.worklist_pops", stats.worklist_pops);
        m.counter_add("hb.rows_recomputed", stats.rows_recomputed);
        m.counter_add("hb.skipped_words", stats.skipped_words);
        m.counter_add("races.block_pairs", self.races.len() as u64);
        let counts = self.counts();
        m.counter_add("races.representatives", counts.total() as u64);
        for cat in RaceCategory::all() {
            m.counter_add(format!("races.{cat}"), counts.get(cat) as u64);
        }
        m.gauge_set("time.total_ms", self.timing.total().as_secs_f64() * 1e3);
        m
    }

    /// The coverage report, when the session ran with
    /// [`AnalysisBuilder::with_coverage`](crate::AnalysisBuilder::with_coverage).
    pub fn coverage(&self) -> Option<&CoverageReport> {
        self.coverage.as_ref()
    }

    /// One rendered explanation per representative race, when the session
    /// ran with
    /// [`AnalysisBuilder::with_explanations`](crate::AnalysisBuilder::with_explanations).
    pub fn explanations(&self) -> &[String] {
        &self.explanations
    }

    /// All classified races (one per unordered conflicting block pair).
    pub fn races(&self) -> &[ClassifiedRace] {
        &self.races
    }

    /// One representative race per `(location, category)` pair — the
    /// reporting granularity of Table 3 ("if there are multiple races
    /// belonging to the same category on the same memory location,
    /// DroidRacer reports any one of them").
    pub fn representatives(&self) -> Vec<ClassifiedRace> {
        representatives_of(&self.races)
    }

    /// Number of representative races in `category`.
    pub fn count(&self, category: RaceCategory) -> usize {
        self.representatives()
            .iter()
            .filter(|cr| cr.category == category)
            .count()
    }

    /// Representative counts for every category, in presentation order.
    pub fn counts(&self) -> CategoryCounts {
        let mut counts = CategoryCounts::default();
        for cr in self.representatives() {
            counts.add(cr.category, 1);
        }
        counts
    }

    /// Renders a human-readable report using the trace's name table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let names = self.trace.names();
        let reps = self.representatives();
        out.push_str(&format!(
            "{} race report(s) on {} location(s)\n",
            reps.len(),
            reps.iter()
                .map(|cr| cr.race.loc)
                .collect::<std::collections::HashSet<_>>()
                .len()
        ));
        for cr in &reps {
            let r = &cr.race;
            out.push_str(&format!(
                "  [{}] {} on {}: op {} `{}` vs op {} `{}`\n",
                cr.category,
                r.kind,
                names.loc_name(r.loc),
                r.first,
                self.trace.op(r.first),
                r.second,
                self.trace.op(r.second),
            ));
        }
        out
    }
}

/// Race counts per category, in the shape of one row of Table 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CategoryCounts {
    /// Multi-threaded races.
    pub multithreaded: usize,
    /// Co-enabled single-threaded races.
    pub co_enabled: usize,
    /// Delayed single-threaded races.
    pub delayed: usize,
    /// Cross-posted single-threaded races.
    pub cross_posted: usize,
    /// Unclassified races.
    pub unknown: usize,
}

impl CategoryCounts {
    /// Adds `n` to `category`.
    pub fn add(&mut self, category: RaceCategory, n: usize) {
        match category {
            RaceCategory::Multithreaded => self.multithreaded += n,
            RaceCategory::CoEnabled => self.co_enabled += n,
            RaceCategory::Delayed => self.delayed += n,
            RaceCategory::CrossPosted => self.cross_posted += n,
            RaceCategory::Unknown => self.unknown += n,
        }
    }

    /// Count for `category`.
    pub fn get(&self, category: RaceCategory) -> usize {
        match category {
            RaceCategory::Multithreaded => self.multithreaded,
            RaceCategory::CoEnabled => self.co_enabled,
            RaceCategory::Delayed => self.delayed,
            RaceCategory::CrossPosted => self.cross_posted,
            RaceCategory::Unknown => self.unknown,
        }
    }

    /// Total across categories.
    pub fn total(&self) -> usize {
        self.multithreaded + self.co_enabled + self.delayed + self.cross_posted + self.unknown
    }

    /// Element-wise sum.
    pub fn merged(mut self, other: &CategoryCounts) -> CategoryCounts {
        for cat in RaceCategory::all() {
            self.add(cat, other.get(cat));
        }
        self
    }
}

impl fmt::Display for CategoryCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mt={} cross-posted={} co-enabled={} delayed={} unknown={}",
            self.multithreaded, self.cross_posted, self.co_enabled, self.delayed, self.unknown
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::HbMode;
    use crate::session::AnalysisBuilder;
    use droidracer_trace::{ThreadKind, TraceBuilder};

    fn racy_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("obj", "C.state");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.write(bg, loc);
        b.read(main, loc);
        b.finish()
    }

    fn analyze(trace: &Trace) -> Analysis {
        AnalysisBuilder::new().analyze(trace).expect("runs")
    }

    #[test]
    fn analysis_finds_and_classifies() {
        let analysis = analyze(&racy_trace());
        assert_eq!(analysis.races().len(), 1);
        assert_eq!(analysis.count(RaceCategory::Multithreaded), 1);
        assert_eq!(analysis.counts().total(), 1);
    }

    #[test]
    fn representatives_dedup_by_location_and_category() {
        // Two bg accesses in separate blocks race with main's block on the
        // same location → 2 block-pair races, 1 representative.
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("obj", "C.state");
        let l = b.lock("m");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.write(bg, loc);
        b.acquire(bg, l); // splits bg's accesses into two blocks
        b.release(bg, l);
        b.write(bg, loc);
        b.read(main, loc);
        let trace = b.finish();
        let analysis = analyze(&trace);
        assert_eq!(analysis.races().len(), 2);
        assert_eq!(analysis.representatives().len(), 1);
    }

    #[test]
    fn cancelled_posts_are_stripped_before_analysis() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let t1 = b.task("A");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.post(main, t1, main);
        b.cancel(main, t1);
        let trace = b.finish();
        let analysis = analyze(&trace);
        assert_eq!(analysis.trace().len(), 3);
        assert!(analysis.races().is_empty());
    }

    #[test]
    fn render_mentions_location_names() {
        let analysis = analyze(&racy_trace());
        let text = analysis.render();
        assert!(text.contains("C.state"), "got: {text}");
        assert!(text.contains("multithreaded"), "got: {text}");
    }

    #[test]
    fn counts_arithmetic() {
        let mut a = CategoryCounts::default();
        a.add(RaceCategory::CoEnabled, 3);
        a.add(RaceCategory::Unknown, 1);
        let mut b = CategoryCounts::default();
        b.add(RaceCategory::CoEnabled, 2);
        let m = a.merged(&b);
        assert_eq!(m.co_enabled, 5);
        assert_eq!(m.total(), 6);
        assert_eq!(m.get(RaceCategory::Unknown), 1);
    }

    #[test]
    fn baseline_mode_analysis_runs() {
        let trace = racy_trace();
        for mode in HbMode::all() {
            let analysis = AnalysisBuilder::new().mode(mode).analyze(&trace).expect("runs");
            // The mt race is visible to every mode that has fork edges; the
            // async-only baseline misses fork and reports it too (as a
            // "race") — either way analysis must not crash.
            let _ = analysis.counts();
        }
    }

    #[test]
    fn metrics_mirror_engine_stats() {
        let analysis = analyze(&racy_trace());
        let m = analysis.metrics();
        let stats = analysis.hb().stats();
        assert_eq!(m.counter("hb.word_ops"), Some(stats.word_ops));
        assert_eq!(m.counter("hb.base_edges"), Some(stats.base_edges as u64));
        assert_eq!(m.counter("hb.rounds"), Some(stats.rounds as u64));
        assert_eq!(m.counter("trace.ops"), Some(analysis.trace().len() as u64));
        assert_eq!(
            m.counter("races.representatives"),
            Some(analysis.counts().total() as u64)
        );
        assert!(m.gauge("time.total_ms").is_some());
    }

    #[test]
    fn timing_totals_sum_stages() {
        let t = AnalysisTiming {
            prepare: Duration::from_millis(1),
            graph: Duration::from_millis(2),
            closure: Duration::from_millis(3),
            detect: Duration::from_millis(4),
            classify: Duration::from_millis(5),
        };
        assert_eq!(t.happens_before(), Duration::from_millis(5));
        assert_eq!(t.total(), Duration::from_millis(15));
    }
}
