//! Property suite for the `core::simd` chunked bit kernels.
//!
//! Every vector kernel ships with a scalar reference implementation; these
//! tests pin them bit-identical — results, change reports, callback
//! orders — on proptest-generated random rows and on the `[lo, hi)` edge
//! shapes the engine feeds them (empty spans, single words, lengths
//! around the 4-word chunk boundary where the scalar tail kicks in).

use proptest::prelude::*;

use droidracer::core::simd;

/// Lengths covering every tail shape: empty, sub-chunk, exact chunks,
/// chunk+tail, and a long row.
const EDGE_LENS: [usize; 9] = [0, 1, 2, 3, 4, 5, 8, 13, 131];

/// Deterministic xorshift64* fill with roughly `density` bits per word.
fn fill(seed: u64, len: usize, density: u32) -> Vec<u64> {
    let mut s = seed.max(1);
    (0..len)
        .map(|_| {
            let mut w = 0u64;
            for _ in 0..density {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                w |= 1u64 << (s % 64);
            }
            w
        })
        .collect()
}

fn assert_all_kernels_agree(a: &[u64], b: &[u64], mask: &[u64], offset: usize, context: &str) {
    let n = a.len().min(b.len()).min(mask.len());

    let (mut v, mut s) = (b.to_vec(), b.to_vec());
    assert_eq!(
        simd::or_into(&mut v, a),
        simd::or_into_scalar(&mut s, a),
        "{context}: or_into changed-flag"
    );
    assert_eq!(v, s, "{context}: or_into bits");

    let (mut v, mut s) = (b.to_vec(), b.to_vec());
    assert_eq!(
        simd::or_into_track(&mut v, a),
        simd::or_into_track_scalar(&mut s, a),
        "{context}: or_into_track range"
    );
    assert_eq!(v, s, "{context}: or_into_track bits");

    let (mut v, mut s) = (vec![0u64; n], vec![0u64; n]);
    let (mut nv, mut ns) = (Vec::new(), Vec::new());
    assert_eq!(
        simd::union_masked_collect(&a[..n], &b[..n], &mask[..n], &mut v, offset, |bit| {
            nv.push(bit)
        }),
        simd::union_masked_collect_scalar(&a[..n], &b[..n], &mask[..n], &mut s, offset, |bit| {
            ns.push(bit)
        }),
        "{context}: union_masked_collect changed-flag"
    );
    assert_eq!(v, s, "{context}: union_masked_collect bits");
    assert_eq!(nv, ns, "{context}: union_masked_collect new-bit order");
    let sorted = {
        let mut c = nv.clone();
        c.sort_unstable();
        c
    };
    assert_eq!(nv, sorted, "{context}: new bits must arrive ascending");

    let (mut v, mut s) = (a.to_vec(), a.to_vec());
    simd::and_not(&mut v, mask);
    simd::and_not_scalar(&mut s, mask);
    assert_eq!(v, s, "{context}: and_not bits");

    assert_eq!(
        simd::count_ones(a),
        simd::count_ones_scalar(a),
        "{context}: count_ones"
    );

    let (mut bv, mut bs) = (Vec::new(), Vec::new());
    simd::for_each_set(a, offset, |bit| bv.push(bit));
    simd::for_each_set_scalar(a, offset, |bit| bs.push(bit));
    assert_eq!(bv, bs, "{context}: for_each_set order");
}

/// Every edge length × a few densities, including all-zero and all-one
/// words — the `[lo, hi)` shapes the engine slices out of matrix rows.
#[test]
fn edge_lengths_and_densities_agree() {
    for &len in &EDGE_LENS {
        for density in [0u32, 1, 8, 64] {
            let a = fill(0x9E37 + len as u64, len, density);
            let b = fill(0xD1B5 + len as u64, len, density.max(1) / 2);
            let mask = fill(0x8CB9 + len as u64, len, density / 2);
            let context = format!("len={len} density={density}");
            assert_all_kernels_agree(&a, &b, &mask, len % 7, &context);
        }
    }
}

/// Mismatched slice lengths: kernels operate on the common prefix.
#[test]
fn short_source_prefix_semantics_agree() {
    let long = fill(1, 13, 8);
    let short = fill(2, 5, 8);
    let (mut v, mut s) = (long.clone(), long.clone());
    assert_eq!(
        simd::or_into(&mut v, &short),
        simd::or_into_scalar(&mut s, &short)
    );
    assert_eq!(v, s);
    assert_eq!(v[5..], long[5..], "words past the source must be untouched");

    let (mut v, mut s) = (short.clone(), short.clone());
    assert_eq!(
        simd::or_into_track(&mut v, &long),
        simd::or_into_track_scalar(&mut s, &long)
    );
    assert_eq!(v, s);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random rows of arbitrary length and content: vector ≡ scalar for
    /// every kernel, including callback orders.
    #[test]
    fn random_rows_agree(
        a in proptest::collection::vec(any::<u64>(), 0..40),
        b in proptest::collection::vec(any::<u64>(), 0..40),
        mask in proptest::collection::vec(any::<u64>(), 0..40),
        offset in 0usize..1000,
    ) {
        assert_all_kernels_agree(&a, &b, &mask, offset, "proptest");
    }

    /// The tracked change range is exact: re-ORing the reported `[lo, hi)`
    /// sub-slice alone reproduces the full OR.
    #[test]
    fn tracked_range_is_exact(
        src in proptest::collection::vec(any::<u64>(), 1..32),
        dst in proptest::collection::vec(any::<u64>(), 1..32),
    ) {
        let mut full = dst.clone();
        let range = simd::or_into_track(&mut full, &src);
        match range {
            None => prop_assert_eq!(&full, &dst, "no-change report must mean no change"),
            Some((lo, hi)) => {
                prop_assert!(lo < hi);
                let mut partial = dst.clone();
                let n = partial.len().min(src.len());
                prop_assert!(hi <= n);
                simd::or_into(&mut partial[lo..hi], &src[lo..hi]);
                prop_assert_eq!(partial, full, "changed words escaped the reported range");
            }
        }
    }
}
