//! The program model interpreted by the simulator.
//!
//! A [`Program`] is the simulator's analogue of an Android application
//! (§3: `A = (Threads, Procs, Init)`): a set of thread definitions (some
//! initial, some forked dynamically), a set of task definitions
//! (asynchronously postable procedures), and the locks, events and memory
//! locations they mention. Bodies are flat lists of [`Action`]s in the
//! paper's core language; higher-level constructs (loops, calls) are
//! unrolled by whoever builds the program — typically the framework model.

use std::error::Error;
use std::fmt;

use droidracer_trace::{PostKind, ThreadKind};

/// Reference to a thread definition in a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadRef(pub(crate) usize);

/// Reference to a task definition in a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskRef(pub(crate) usize);

/// Reference to a lock declared in a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockRef(pub(crate) usize);

/// Reference to a memory location (object + field) declared in a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocRef(pub(crate) usize);

impl ThreadRef {
    /// Raw index (for corpus generators that compute references).
    pub fn index(self) -> usize {
        self.0
    }
}

impl TaskRef {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One statement of a thread or task body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Read the location.
    Read(LocRef),
    /// Write the location.
    Write(LocRef),
    /// Acquire the lock (blocks while another thread holds it).
    Acquire(LockRef),
    /// Release the lock.
    Release(LockRef),
    /// Post an instance of the task to the (latest running instance of the)
    /// target thread's queue. If the task requires enabling, the post blocks
    /// until an enabled instance is pending.
    Post {
        /// The task definition to instantiate.
        task: TaskRef,
        /// The queue thread receiving the task.
        target: ThreadRef,
        /// FIFO / delayed / front-of-queue.
        kind: PostKind,
    },
    /// Enable a future posting of the task (models the runtime environment's
    /// lifecycle/event constraints).
    Enable(TaskRef),
    /// Cancel the oldest pending (posted, not begun) instance of the task;
    /// a no-op when none is pending.
    Cancel(TaskRef),
    /// Register the task as a one-shot idle handler on the target looper:
    /// when the looper's queue drains, it posts the task to itself and runs
    /// it (Android's `MessageQueue.addIdleHandler`). Emits an `enable` at
    /// registration, connecting registration to execution as §5 describes.
    AddIdle {
        /// The task to run at idle time.
        task: TaskRef,
        /// The looper whose idleness triggers it.
        target: ThreadRef,
    },
    /// Fork a fresh instance of the (non-initial) thread definition.
    Fork(ThreadRef),
    /// Join the most recently forked instance of the thread definition
    /// (blocks until it exits).
    Join(ThreadRef),
}

/// Static description of a thread.
#[derive(Debug, Clone)]
pub struct ThreadSpec {
    /// Display name (instances get `#k` suffixes).
    pub name: String,
    /// Runtime role.
    pub kind: ThreadKind,
    /// Whether the thread exists at startup (the paper's `Threads` set) or
    /// is forked dynamically.
    pub initial: bool,
    /// Whether the thread attaches a task queue and loops on it after
    /// running its body.
    pub queue: bool,
}

impl ThreadSpec {
    /// A non-initial plain application thread.
    pub fn app(name: impl Into<String>) -> Self {
        ThreadSpec {
            name: name.into(),
            kind: ThreadKind::App,
            initial: false,
            queue: false,
        }
    }

    /// Marks the thread as existing at startup.
    pub fn initial(mut self) -> Self {
        self.initial = true;
        self
    }

    /// Gives the thread a task queue (attach + loop).
    pub fn with_queue(mut self) -> Self {
        self.queue = true;
        self
    }

    /// Sets the thread kind.
    pub fn kind(mut self, kind: ThreadKind) -> Self {
        self.kind = kind;
        self
    }
}

#[derive(Debug, Clone, Default)]
pub(crate) struct ThreadDef {
    pub spec: ThreadSpecData,
    pub body: Vec<Action>,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct ThreadSpecData {
    pub name: String,
    pub kind: ThreadKind,
    pub initial: bool,
    pub queue: bool,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct TaskDef {
    pub name: String,
    pub body: Vec<Action>,
    /// Display name of the environment event this task handles, if any —
    /// posts of the task are tagged with it.
    pub event: Option<String>,
    /// Whether posting requires a prior `enable` of an instance.
    pub needs_enable: bool,
}

/// A pending environment-event injection: a post the `poster` looper thread
/// performs while idle, between tasks — the way DroidRacer's looper "posts
/// and later runs" a UI event handler (Figure 3, op 19). The injection list
/// is how the UI Explorer feeds an event sequence into a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// The idle looper performing the post.
    pub poster: ThreadRef,
    /// The handler task to post.
    pub task: TaskRef,
    /// The thread receiving the task (usually the poster itself).
    pub target: ThreadRef,
    /// FIFO / delayed / front.
    pub kind: PostKind,
}

/// A complete simulated application.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub(crate) threads: Vec<ThreadDef>,
    pub(crate) tasks: Vec<TaskDef>,
    pub(crate) locks: Vec<String>,
    pub(crate) locs: Vec<(String, String)>,
    pub(crate) injections: Vec<Injection>,
}

/// Why a [`Program`] failed its static checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// No initial thread exists; nothing could ever run.
    NoInitialThread,
    /// A `Post` targets a thread definition without a queue.
    PostToQueuelessThread {
        /// Index of the offending target definition.
        target: usize,
    },
    /// A `Fork` references an initial thread definition.
    ForkOfInitialThread {
        /// Index of the offending definition.
        thread: usize,
    },
    /// A reference is out of range.
    DanglingReference {
        /// Human-readable description of the bad reference.
        what: &'static str,
        /// The out-of-range index.
        index: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::NoInitialThread => write!(f, "program has no initial thread"),
            ProgramError::PostToQueuelessThread { target } => {
                write!(f, "post targets thread definition {target} which has no queue")
            }
            ProgramError::ForkOfInitialThread { thread } => {
                write!(f, "fork of initial thread definition {thread}")
            }
            ProgramError::DanglingReference { what, index } => {
                write!(f, "dangling {what} reference {index}")
            }
        }
    }
}

impl Error for ProgramError {}

impl Program {
    /// Number of thread definitions.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Number of task definitions.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Checks internal consistency of all references and structural rules.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found.
    pub fn check(&self) -> Result<(), ProgramError> {
        if !self.threads.iter().any(|t| t.spec.initial) {
            return Err(ProgramError::NoInitialThread);
        }
        let bodies = self
            .threads
            .iter()
            .map(|t| &t.body)
            .chain(self.tasks.iter().map(|t| &t.body));
        for body in bodies {
            for action in body {
                self.check_action(action)?;
            }
        }
        for inj in &self.injections {
            self.check_action(&Action::Post {
                task: inj.task,
                target: inj.target,
                kind: inj.kind,
            })?;
            if inj.poster.0 >= self.threads.len() {
                return Err(ProgramError::DanglingReference {
                    what: "injection poster",
                    index: inj.poster.0,
                });
            }
            if !self.threads[inj.poster.0].spec.queue {
                return Err(ProgramError::PostToQueuelessThread {
                    target: inj.poster.0,
                });
            }
        }
        Ok(())
    }

    /// The environment-event injections in order.
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    fn check_action(&self, action: &Action) -> Result<(), ProgramError> {
        let thread_ok = |r: ThreadRef, what| {
            if r.0 < self.threads.len() {
                Ok(())
            } else {
                Err(ProgramError::DanglingReference { what, index: r.0 })
            }
        };
        match *action {
            Action::Read(l) | Action::Write(l) => {
                if l.0 >= self.locs.len() {
                    return Err(ProgramError::DanglingReference {
                        what: "location",
                        index: l.0,
                    });
                }
            }
            Action::Acquire(l) | Action::Release(l) => {
                if l.0 >= self.locks.len() {
                    return Err(ProgramError::DanglingReference {
                        what: "lock",
                        index: l.0,
                    });
                }
            }
            Action::Post { task, target, .. } => {
                if task.0 >= self.tasks.len() {
                    return Err(ProgramError::DanglingReference {
                        what: "task",
                        index: task.0,
                    });
                }
                thread_ok(target, "post target")?;
                if !self.threads[target.0].spec.queue {
                    return Err(ProgramError::PostToQueuelessThread { target: target.0 });
                }
            }
            Action::Enable(t) | Action::Cancel(t) => {
                if t.0 >= self.tasks.len() {
                    return Err(ProgramError::DanglingReference {
                        what: "task",
                        index: t.0,
                    });
                }
            }
            Action::AddIdle { task, target } => {
                if task.0 >= self.tasks.len() {
                    return Err(ProgramError::DanglingReference {
                        what: "task",
                        index: task.0,
                    });
                }
                thread_ok(target, "idle target")?;
                if !self.threads[target.0].spec.queue {
                    return Err(ProgramError::PostToQueuelessThread { target: target.0 });
                }
            }
            Action::Fork(t) => {
                thread_ok(t, "fork target")?;
                if self.threads[t.0].spec.initial {
                    return Err(ProgramError::ForkOfInitialThread { thread: t.0 });
                }
            }
            Action::Join(t) => thread_ok(t, "join target")?,
        }
        Ok(())
    }
}

/// Incrementally constructs a [`Program`].
///
/// # Examples
///
/// ```
/// use droidracer_sim::{Action, ProgramBuilder, ThreadSpec};
/// use droidracer_trace::ThreadKind;
///
/// let mut p = ProgramBuilder::new();
/// let main = p.thread(ThreadSpec::app("main").kind(ThreadKind::Main).initial().with_queue());
/// let flag = p.loc("obj", "C.flag");
/// let handler = p.task("onClick", vec![Action::Write(flag)]);
/// p.set_thread_body(main, vec![Action::Post {
///     task: handler,
///     target: main,
///     kind: droidracer_trace::PostKind::Plain,
/// }]);
/// let program = p.finish()?;
/// assert_eq!(program.thread_count(), 1);
/// # Ok::<(), droidracer_sim::ProgramError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a thread.
    pub fn thread(&mut self, spec: ThreadSpec) -> ThreadRef {
        let r = ThreadRef(self.program.threads.len());
        self.program.threads.push(ThreadDef {
            spec: ThreadSpecData {
                name: spec.name,
                kind: spec.kind,
                initial: spec.initial,
                queue: spec.queue,
            },
            body: Vec::new(),
        });
        r
    }

    /// Sets (replaces) the body of a thread.
    ///
    /// # Panics
    ///
    /// Panics if `thread` was not returned by this builder.
    pub fn set_thread_body(&mut self, thread: ThreadRef, body: Vec<Action>) {
        self.program.threads[thread.0].body = body;
    }

    /// Declares a task with its body.
    pub fn task(&mut self, name: impl Into<String>, body: Vec<Action>) -> TaskRef {
        let r = TaskRef(self.program.tasks.len());
        self.program.tasks.push(TaskDef {
            name: name.into(),
            body,
            event: None,
            needs_enable: false,
        });
        r
    }

    /// Declares a task that handles environment event `event` (its posts are
    /// tagged, feeding the co-enabled race category).
    pub fn event_task(
        &mut self,
        name: impl Into<String>,
        event: impl Into<String>,
        body: Vec<Action>,
    ) -> TaskRef {
        let r = self.task(name, body);
        self.program.tasks[r.0].event = Some(event.into());
        r
    }

    /// Requires an `enable` before each post of `task` (lifecycle modeling).
    pub fn require_enable(&mut self, task: TaskRef) {
        self.program.tasks[task.0].needs_enable = true;
    }

    /// Replaces the body of a task.
    pub fn set_task_body(&mut self, task: TaskRef, body: Vec<Action>) {
        self.program.tasks[task.0].body = body;
    }

    /// Declares a lock.
    pub fn lock(&mut self, name: impl Into<String>) -> LockRef {
        let r = LockRef(self.program.locks.len());
        self.program.locks.push(name.into());
        r
    }

    /// Declares a memory location `object.field`.
    pub fn loc(&mut self, object: impl Into<String>, field: impl Into<String>) -> LocRef {
        let r = LocRef(self.program.locs.len());
        self.program.locs.push((object.into(), field.into()));
        r
    }

    /// Appends an environment-event injection (see [`Injection`]).
    pub fn inject(&mut self, injection: Injection) {
        self.program.injections.push(injection);
    }

    /// Checks and returns the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if any reference dangles or a structural
    /// rule is violated.
    pub fn finish(self) -> Result<Program, ProgramError> {
        self.program.check()?;
        Ok(self.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_consistent_program() {
        let mut p = ProgramBuilder::new();
        let main = p.thread(ThreadSpec::app("main").kind(ThreadKind::Main).initial().with_queue());
        let bg = p.thread(ThreadSpec::app("bg"));
        let loc = p.loc("o", "C.f");
        let lock = p.lock("m");
        let t = p.task("T", vec![Action::Read(loc)]);
        p.set_thread_body(
            main,
            vec![
                Action::Fork(bg),
                Action::Post {
                    task: t,
                    target: main,
                    kind: PostKind::Plain,
                },
            ],
        );
        p.set_thread_body(bg, vec![Action::Acquire(lock), Action::Release(lock)]);
        let program = p.finish().expect("valid program");
        assert_eq!(program.thread_count(), 2);
        assert_eq!(program.task_count(), 1);
    }

    #[test]
    fn no_initial_thread_is_rejected() {
        let mut p = ProgramBuilder::new();
        p.thread(ThreadSpec::app("bg"));
        assert_eq!(p.finish().unwrap_err(), ProgramError::NoInitialThread);
    }

    #[test]
    fn post_to_queueless_thread_is_rejected() {
        let mut p = ProgramBuilder::new();
        let main = p.thread(ThreadSpec::app("main").initial()); // no queue
        let t = p.task("T", vec![]);
        p.set_thread_body(
            main,
            vec![Action::Post {
                task: t,
                target: main,
                kind: PostKind::Plain,
            }],
        );
        assert!(matches!(
            p.finish().unwrap_err(),
            ProgramError::PostToQueuelessThread { .. }
        ));
    }

    #[test]
    fn fork_of_initial_thread_is_rejected() {
        let mut p = ProgramBuilder::new();
        let main = p.thread(ThreadSpec::app("main").initial());
        let other = p.thread(ThreadSpec::app("other").initial());
        p.set_thread_body(main, vec![Action::Fork(other)]);
        assert!(matches!(
            p.finish().unwrap_err(),
            ProgramError::ForkOfInitialThread { .. }
        ));
    }

    #[test]
    fn dangling_reference_is_rejected() {
        let mut p = ProgramBuilder::new();
        let main = p.thread(ThreadSpec::app("main").initial());
        p.set_thread_body(main, vec![Action::Read(LocRef(7))]);
        assert!(matches!(
            p.finish().unwrap_err(),
            ProgramError::DanglingReference { what: "location", .. }
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ProgramError::PostToQueuelessThread { target: 3 };
        assert!(e.to_string().contains("no queue"));
    }
}
