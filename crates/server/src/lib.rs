//! A sharded, multi-tenant analysis daemon for the DroidRacer pipeline.
//!
//! The paper's detector is a one-shot offline tool; this crate gives it a
//! front door. Clients speak a simple length-prefixed framed protocol over
//! TCP or Unix sockets ([`protocol`]), submitting whole traces or
//! streaming uploads under a tenant identity; the server routes each job
//! to one of N shard workers by tenant hash ([`server`]), answers repeat
//! submissions from a content-addressed result cache ([`store`]), and
//! isolates tenants from each other with per-tenant budgets, quotas and
//! panic quarantine built on `droidracer-core`'s [`Budget`] and
//! [`run_isolated`] primitives.
//!
//! Everything is `std`-only: the protocol, the cache format and the
//! threading use no dependencies beyond the workspace's own crates.
//!
//! The analysis-facing surface is `droidracer-core`'s [`AnalysisService`]
//! trait — [`Client`] implements it over the wire, `LocalService`
//! implements it in-process, and code written against the trait cannot
//! tell the difference (the server-vs-direct equality tests hold it to
//! that).
//!
//! [`Budget`]: droidracer_core::Budget
//! [`run_isolated`]: droidracer_core::run_isolated
//! [`AnalysisService`]: droidracer_core::AnalysisService

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod client;
pub mod protocol;
pub mod server;
pub mod store;

pub use chaos::{run_soak, ChaosPlan, ChaosReport, Scenario};
pub use client::{Client, ClientStats, RetryPolicy, Submission};
pub use protocol::{Request, Response, WireError, MAX_FRAME, WIRE_VERSION};
pub use server::{status_counter, Server, ServerConfig};
pub use store::{
    job_key, wal_record_ranges, wal_torn_tail_bytes, Fnv64, ResultStore, StoreDiagnostic,
    WalStats, WalStore,
};
