//! Named, hand-derived expectations for the §4.3 race classifier — one
//! minimal feasible trace per category, run through the full
//! [`AnalysisBuilder`] pipeline (validation → stripping → closure → race
//! detection → classification). Shrunk fuzz counterexamples are diffed
//! against these shapes: each constructor documents the smallest structure
//! that produces its category.

use droidracer_core::{AnalysisBuilder, CategoryCounts, RaceCategory};
use droidracer_trace::{from_text, to_text, ThreadKind, Trace, TraceBuilder};

/// Multithreaded: the two accesses run on different threads with no
/// fork/join/lock ordering between them.
fn multithreaded() -> Trace {
    let mut b = TraceBuilder::new();
    let main = b.thread("main", ThreadKind::Main, true);
    let bg = b.thread("bg", ThreadKind::App, false);
    let loc = b.loc("o", "C.f");
    b.thread_init(main);
    b.fork(main, bg);
    b.thread_init(bg);
    b.write(bg, loc);
    b.read(main, loc);
    b.finish_validated().expect("multithreaded trace is feasible")
}

/// Co-enabled: both accesses run on one thread, in handler tasks of two
/// *distinct, unordered* environment events — clicking two buttons on the
/// same screen.
fn co_enabled() -> Trace {
    let mut b = TraceBuilder::new();
    let main = b.thread("main", ThreadKind::Main, true);
    let h1 = b.task("onClickA");
    let h2 = b.task("onClickB");
    let e1 = b.event("click:A");
    let e2 = b.event("click:B");
    let loc = b.loc("o", "C.f");
    b.thread_init(main);
    b.attach_q(main);
    b.loop_on_q(main);
    b.post_event(main, h1, main, e1);
    b.post_event(main, h2, main, e2);
    b.begin(main, h1);
    b.write(main, loc);
    b.end(main, h1);
    b.begin(main, h2);
    b.write(main, loc);
    b.end(main, h2);
    b.finish_validated().expect("co-enabled trace is feasible")
}

/// Delayed: the posting chains differ in their most recent *delayed* post;
/// FIFO's §4.2 refinement leaves a delayed and a plain post unordered.
fn delayed() -> Trace {
    let mut b = TraceBuilder::new();
    let main = b.thread("main", ThreadKind::Main, true);
    let binder = b.thread("binder", ThreadKind::Binder, true);
    let slow = b.task("slowRefresh");
    let fast = b.task("fastUpdate");
    let loc = b.loc("o", "C.f");
    b.thread_init(main);
    b.attach_q(main);
    b.loop_on_q(main);
    b.thread_init(binder);
    b.post_delayed(binder, slow, main, 1000);
    b.post(binder, fast, main);
    b.begin(main, fast);
    b.write(main, loc);
    b.end(main, fast);
    b.begin(main, slow);
    b.write(main, loc);
    b.end(main, slow);
    b.finish_validated().expect("delayed trace is feasible")
}

/// Cross-posted: the racing tasks were posted to the looper from two
/// *different* background threads whose posts are unordered.
fn cross_posted() -> Trace {
    let mut b = TraceBuilder::new();
    let main = b.thread("main", ThreadKind::Main, true);
    let bg1 = b.thread("bg1", ThreadKind::App, true);
    let bg2 = b.thread("bg2", ThreadKind::App, true);
    let t1 = b.task("A");
    let t2 = b.task("B");
    let loc = b.loc("o", "C.f");
    b.thread_init(main);
    b.attach_q(main);
    b.loop_on_q(main);
    b.thread_init(bg1);
    b.thread_init(bg2);
    b.post(bg1, t1, main);
    b.post(bg2, t2, main);
    b.begin(main, t1);
    b.write(main, loc);
    b.end(main, t1);
    b.begin(main, t2);
    b.write(main, loc);
    b.end(main, t2);
    b.finish_validated().expect("cross-posted trace is feasible")
}

/// Unknown: same-thread plain posts made outside any task — neither the
/// event, delay nor cross-thread criterion applies.
fn unknown() -> Trace {
    let mut b = TraceBuilder::new();
    let main = b.thread("main", ThreadKind::Main, true);
    let t1 = b.task("A");
    let t2 = b.task("B");
    let loc = b.loc("o", "C.f");
    b.thread_init(main);
    b.attach_q(main);
    b.loop_on_q(main);
    b.post(main, t1, main);
    b.post(main, t2, main);
    b.begin(main, t1);
    b.write(main, loc);
    b.end(main, t1);
    b.begin(main, t2);
    b.write(main, loc);
    b.end(main, t2);
    b.finish_validated().expect("unknown trace is feasible")
}

fn fixtures() -> [(RaceCategory, Trace); 5] {
    [
        (RaceCategory::Multithreaded, multithreaded()),
        (RaceCategory::CoEnabled, co_enabled()),
        (RaceCategory::Delayed, delayed()),
        (RaceCategory::CrossPosted, cross_posted()),
        (RaceCategory::Unknown, unknown()),
    ]
}

/// Each fixture, analyzed end to end, reports exactly one representative
/// race of exactly its category.
#[test]
fn each_category_has_a_pinned_minimal_trace() {
    for (category, trace) in fixtures() {
        let analysis = AnalysisBuilder::new()
            .validate_first(true)
            .analyze(&trace)
            .expect("fixtures validate");
        let reps = analysis.representatives();
        assert_eq!(reps.len(), 1, "{category}: expected one representative");
        assert_eq!(reps[0].category, category, "{category} fixture misclassified");
        let mut expected = CategoryCounts::default();
        expected.add(category, 1);
        assert_eq!(analysis.counts(), expected, "{category}: partition totals");
    }
}

/// Fixtures survive a text round-trip unchanged and classify identically
/// afterwards — the property shrunk fuzz regressions rely on when they are
/// committed as `.trace` files.
#[test]
fn fixtures_round_trip_through_the_text_format() {
    for (category, trace) in fixtures() {
        let reparsed = from_text(&to_text(&trace)).expect("fixtures serialize");
        assert_eq!(reparsed, trace, "{category}: text round-trip must be lossless");
        let analysis = AnalysisBuilder::new().analyze(&reparsed).expect("analyzable");
        assert_eq!(
            analysis.representatives()[0].category,
            category,
            "{category}: classification must survive serialization"
        );
    }
}

/// The five categories are mutually exclusive on these fixtures: no fixture
/// produces a race of any *other* category.
#[test]
fn fixtures_do_not_bleed_between_categories() {
    for (category, trace) in fixtures() {
        let analysis = AnalysisBuilder::new().analyze(&trace).expect("analyzable");
        for other in RaceCategory::all() {
            if other != category {
                assert_eq!(
                    analysis.count(other),
                    0,
                    "{category} fixture must not also report {other}"
                );
            }
        }
    }
}
