//! Race classification (§4.3 of the paper).
//!
//! DroidRacer assists debugging by classifying each race: multi-threaded
//! races involve two threads; single-threaded races are further categorized
//! by inspecting the *posting chains* of the two racing operations — the
//! sequence of `post` operations that transitively scheduled the task
//! containing each access. The categories are checked in the paper's order:
//! co-enabled, delayed, cross-posted, and `unknown` as the remainder.

use std::fmt;

use droidracer_trace::{Op, OpKind, Trace, TraceIndex};

use crate::engine::HappensBefore;
use crate::race::Race;

/// The root-cause category of a data race (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RaceCategory {
    /// The two accesses run on different threads.
    Multithreaded,
    /// Both accesses run on one thread and descend from unordered
    /// environment events (e.g. two UI events on the same screen, or
    /// lifecycle callbacks of two objects).
    CoEnabled,
    /// The posting chains differ in their most recent *delayed* posts;
    /// ruling the race out requires reasoning about the timeouts.
    Delayed,
    /// The posting chains differ in their most recent posts made from
    /// another thread; resolving the race needs both thread-local and
    /// inter-thread reasoning.
    CrossPosted,
    /// None of the criteria matched.
    Unknown,
}

impl RaceCategory {
    /// All categories in the paper's presentation order.
    pub fn all() -> [RaceCategory; 5] {
        [
            RaceCategory::Multithreaded,
            RaceCategory::CoEnabled,
            RaceCategory::Delayed,
            RaceCategory::CrossPosted,
            RaceCategory::Unknown,
        ]
    }

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            RaceCategory::Multithreaded => "multithreaded",
            RaceCategory::CoEnabled => "co-enabled",
            RaceCategory::Delayed => "delayed",
            RaceCategory::CrossPosted => "cross-posted",
            RaceCategory::Unknown => "unknown",
        }
    }
}

impl fmt::Display for RaceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Classifies `race` according to §4.3.
pub fn classify(trace: &Trace, index: &TraceIndex, hb: &HappensBefore, race: &Race) -> RaceCategory {
    classify_with(trace.ops(), index, |a, b| hb.ordered(a, b), race)
}

/// Generic classification core: the same §4.3 decision procedure over any
/// op-level ordering predicate (`ordered(i, j)` ⇔ `αi ≺ αj`, reflexive at
/// the op level like [`HappensBefore::ordered`]). The streaming engine
/// reuses it with its column-oriented relation.
pub(crate) fn classify_with(
    ops: &[Op],
    index: &TraceIndex,
    ordered: impl Fn(usize, usize) -> bool,
    race: &Race,
) -> RaceCategory {
    let (i, j) = (race.first, race.second);
    if ops[i].thread != ops[j].thread {
        return RaceCategory::Multithreaded;
    }
    let chain_i = index.chain(i);
    let chain_j = index.chain(j);

    // Co-enabled: most recent posts for environmental events.
    let env_post = |chain: &[usize]| {
        chain.iter().rev().copied().find(|&p| {
            matches!(ops[p].kind, OpKind::Post { event: Some(_), .. })
        })
    };
    if let (Some(bi), Some(bj)) = (env_post(&chain_i), env_post(&chain_j)) {
        if bi != bj && !ordered(bi, bj) {
            return RaceCategory::CoEnabled;
        }
    }

    // Delayed: most recent delayed posts.
    let delayed_post = |chain: &[usize]| {
        chain.iter().rev().copied().find(|&p| {
            matches!(ops[p].kind, OpKind::Post { kind, .. } if kind.is_delayed())
        })
    };
    let (di, dj) = (delayed_post(&chain_i), delayed_post(&chain_j));
    match (di, dj) {
        (Some(a), Some(b)) if a != b => return RaceCategory::Delayed,
        (Some(_), None) | (None, Some(_)) => return RaceCategory::Delayed,
        _ => {}
    }

    // Cross-posted: most recent posts executing on another thread than the
    // access's own thread.
    let cross_post = |chain: &[usize], own| {
        chain.iter().rev().copied().find(|&p| ops[p].thread != own)
    };
    let (ci, cj) = (
        cross_post(&chain_i, ops[i].thread),
        cross_post(&chain_j, ops[j].thread),
    );
    match (ci, cj) {
        (Some(a), Some(b)) if a != b => return RaceCategory::CrossPosted,
        (Some(_), None) | (None, Some(_)) => return RaceCategory::CrossPosted,
        _ => {}
    }

    RaceCategory::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::race::detect;
    use crate::rules::HbConfig;
    use droidracer_trace::{ThreadKind, TraceBuilder};

    fn classify_single_race(trace: &Trace) -> RaceCategory {
        let hb = HappensBefore::compute(trace, HbConfig::new());
        let races = detect(trace, &hb);
        assert_eq!(races.len(), 1, "expected exactly one race, got {races:?}");
        classify(trace, &trace.index(), &hb, &races[0])
    }

    #[test]
    fn cross_thread_race_is_multithreaded() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.write(bg, loc);
        b.read(main, loc);
        assert_eq!(classify_single_race(&b.finish_validated().expect("feasible trace")), RaceCategory::Multithreaded);
    }

    #[test]
    fn unordered_ui_events_are_co_enabled() {
        // Two UI event handlers posted for distinct events with no ordering:
        // clicking two buttons on the same screen.
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let h1 = b.task("onClickA");
        let h2 = b.task("onClickB");
        let e1 = b.event("click:A");
        let e2 = b.event("click:B");
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.post_event(main, h1, main, e1); // 3
        b.post_event(main, h2, main, e2); // 4
        b.begin(main, h1);
        b.write(main, loc);
        b.end(main, h1);
        b.begin(main, h2);
        b.write(main, loc);
        b.end(main, h2);
        // The two posts are made outside any task on the looping thread, so
        // they are unordered; the handler tasks race and the most recent env
        // posts (3, 4) are unordered → co-enabled.
        assert_eq!(classify_single_race(&b.finish_validated().expect("feasible trace")), RaceCategory::CoEnabled);
    }

    #[test]
    fn delayed_post_race_is_delayed() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let binder = b.thread("binder", ThreadKind::Binder, true);
        let slow = b.task("slowRefresh");
        let fast = b.task("fastUpdate");
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.thread_init(binder);
        b.post_delayed(binder, slow, main, 1000);
        b.post(binder, fast, main);
        b.begin(main, fast);
        b.write(main, loc);
        b.end(main, fast);
        b.begin(main, slow);
        b.write(main, loc);
        b.end(main, slow);
        assert_eq!(classify_single_race(&b.finish_validated().expect("feasible trace")), RaceCategory::Delayed);
    }

    #[test]
    fn cross_thread_posts_give_cross_posted() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg1 = b.thread("bg1", ThreadKind::App, true);
        let bg2 = b.thread("bg2", ThreadKind::App, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.thread_init(bg1);
        b.thread_init(bg2);
        b.post(bg1, t1, main);
        b.post(bg2, t2, main);
        b.begin(main, t1);
        b.write(main, loc);
        b.end(main, t1);
        b.begin(main, t2);
        b.write(main, loc);
        b.end(main, t2);
        assert_eq!(classify_single_race(&b.finish_validated().expect("feasible trace")), RaceCategory::CrossPosted);
    }

    #[test]
    fn same_thread_plain_posts_fall_back_to_unknown() {
        // Both racing tasks posted from the main thread itself, no events,
        // no delays: none of the criteria applies. (Requires suppressing
        // FIFO-orderability: the posts themselves must be unordered, which
        // on one thread outside tasks they are.)
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.post(main, t1, main);
        b.post(main, t2, main);
        b.begin(main, t1);
        b.write(main, loc);
        b.end(main, t1);
        b.begin(main, t2);
        b.write(main, loc);
        b.end(main, t2);
        assert_eq!(classify_single_race(&b.finish_validated().expect("feasible trace")), RaceCategory::Unknown);
    }

    #[test]
    fn ordered_env_posts_do_not_classify_as_co_enabled() {
        // Event handler A enables event B (B can only fire after A ran):
        // if a race still exists for another reason it must not be
        // co-enabled. Here we build delayed posts under ordered events.
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let binder = b.thread("binder", ThreadKind::Binder, true);
        let h1 = b.task("onResume");
        let h2 = b.task("tick");
        let e1 = b.event("resume");
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.thread_init(binder);
        b.post_event(binder, h1, main, e1); // env post for h1
        b.begin(main, h1);
        b.write(main, loc);
        b.post_delayed(main, h2, main, 500); // delayed post inside h1
        b.end(main, h1);
        b.begin(main, h2);
        b.write(main, loc);
        b.end(main, h2);
        let trace = b.finish_validated().expect("feasible trace");
        let hb = HappensBefore::compute(&trace, HbConfig::new());
        let races = detect(&trace, &hb);
        // h1 ≺ h2 by NOPRE (h1 posts h2), so actually no race here at all.
        assert!(races.is_empty());
    }

    #[test]
    fn category_labels_are_distinct() {
        let labels: Vec<&str> = RaceCategory::all().iter().map(|c| c.label()).collect();
        let mut d = labels.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), labels.len());
    }
}
