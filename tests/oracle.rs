//! Oracle tests: exhaustive schedule exploration as ground truth for the
//! happens-before detector.
//!
//! Two directions are checked over programs without environment injections
//! and without front-of-queue posts:
//!
//! * **Completeness of reports** — every reported race can really be
//!   reordered: the two access sites occur in both orders across explored
//!   schedules. This is exactly the paper's criterion for a true positive.
//! * **Soundness (adjacency)** — if two conflicting accesses from
//!   *different threads* ever execute back-to-back (adjacent trace
//!   positions), nothing synchronizes them there, and the detector must
//!   report them.
//!
//! Mere cross-schedule order variability is deliberately NOT required to
//! imply a race: two lock-protected writers can commit in either order and
//! yet every execution orders them through the lock — the
//! `oracle_lock_handoff` case below, which this suite caught when a naive
//! "flips ⇒ race" criterion was first tried.

use std::collections::{BTreeMap, BTreeSet};

use droidracer::core::AnalysisBuilder;
use droidracer::sim::{
    explore_schedules, explore_schedules_reduced, Action, ExploreConfig, Program, ProgramBuilder,
    ThreadSpec,
};
use droidracer::trace::{validate, MemLoc, PostKind, ThreadKind, Trace};

/// An access site for oracle purposes: thread-name base + task-name base +
/// access kind.
type Site = (String, Option<String>, bool);

fn base(name: &str) -> String {
    name.split('#').next().unwrap_or(name).to_owned()
}

fn sites_in_order(trace: &Trace, loc: MemLoc) -> Vec<Site> {
    let index = trace.index();
    trace
        .iter()
        .filter_map(|(i, op)| {
            let l = op.kind.accessed_loc()?;
            (l == loc).then(|| {
                (
                    base(&trace.names().thread_name(op.thread)),
                    index.task_of(i).map(|t| base(&trace.names().task_name(t))),
                    op.kind.is_write(),
                )
            })
        })
        .collect()
}

/// For every location: the set of ordered site pairs `(a, b)` such that an
/// `a`-access precedes a `b`-access in some explored trace (only distinct
/// sites, only conflicting pairs).
fn observed_adjacent(
    runs: &[droidracer::sim::SimResult],
    locs: &BTreeSet<MemLoc>,
) -> BTreeMap<MemLoc, BTreeSet<(Site, Site)>> {
    // Conflicting accesses at consecutive trace positions on different
    // threads: provably unsynchronized at that point.
    let mut out: BTreeMap<MemLoc, BTreeSet<(Site, Site)>> = BTreeMap::new();
    for run in runs {
        let trace = &run.trace;
        let index = trace.index();
        let site = |i: usize| {
            let op = trace.op(i);
            (
                base(&trace.names().thread_name(op.thread)),
                index.task_of(i).map(|t| base(&trace.names().task_name(t))),
                op.kind.is_write(),
            )
        };
        for i in 0..trace.len().saturating_sub(1) {
            let (a, b) = (trace.op(i), trace.op(i + 1));
            let (Some(la), Some(lb)) = (a.kind.accessed_loc(), b.kind.accessed_loc()) else {
                continue;
            };
            if la == lb
                && locs.contains(&la)
                && a.thread != b.thread
                && (a.kind.is_write() || b.kind.is_write())
            {
                out.entry(la).or_default().insert((site(i), site(i + 1)));
            }
        }
    }
    out
}

fn observed_orders(
    runs: &[droidracer::sim::SimResult],
    locs: &BTreeSet<MemLoc>,
) -> BTreeMap<MemLoc, BTreeSet<(Site, Site)>> {
    let mut out: BTreeMap<MemLoc, BTreeSet<(Site, Site)>> = BTreeMap::new();
    for run in runs {
        for &loc in locs {
            let sites = sites_in_order(&run.trace, loc);
            for i in 0..sites.len() {
                for j in i + 1..sites.len() {
                    if sites[i] != sites[j] && (sites[i].2 || sites[j].2) {
                        out.entry(loc)
                            .or_default()
                            .insert((sites[i].clone(), sites[j].clone()));
                    }
                }
            }
        }
    }
    out
}

/// Detector verdicts: for every location, the set of racing site pairs
/// reported in any explored trace (normalized: both orders inserted).
fn reported_races(
    runs: &[droidracer::sim::SimResult],
) -> BTreeMap<MemLoc, BTreeSet<(Site, Site)>> {
    let mut out: BTreeMap<MemLoc, BTreeSet<(Site, Site)>> = BTreeMap::new();
    for run in runs {
        let analysis = AnalysisBuilder::new().analyze(&run.trace).unwrap();
        let trace = analysis.trace();
        let index = trace.index();
        let site = |i: usize| {
            let op = trace.op(i);
            (
                base(&trace.names().thread_name(op.thread)),
                index.task_of(i).map(|t| base(&trace.names().task_name(t))),
                op.kind.is_write(),
            )
        };
        for cr in analysis.races() {
            let (a, b) = (site(cr.race.first), site(cr.race.second));
            let entry = out.entry(cr.race.loc).or_default();
            entry.insert((a.clone(), b.clone()));
            entry.insert((b, a));
        }
    }
    out
}

/// Checks the oracle equivalence on `program` (which must avoid injections
/// and front posts), under both the naive and the sleep-set-reduced
/// exploration — the reduction must preserve every ordering of conflicting
/// accesses, so the oracle verdicts coincide.
fn check_oracle(program: &Program) {
    check_oracle_with(program, false);
    check_oracle_with(program, true);
}

fn check_oracle_with(program: &Program, reduced: bool) {
    let config = ExploreConfig {
        max_steps: 20_000,
        max_schedules: 20_000,
    };
    let exploration = if reduced {
        explore_schedules_reduced(program, &config)
    } else {
        explore_schedules(program, &config)
    }
    .expect("exploration runs");
    assert!(exploration.complete, "program too large for the oracle");
    let mut locs = BTreeSet::new();
    for run in &exploration.runs {
        assert_eq!(validate(&run.trace), Ok(()));
        for op in run.trace.ops() {
            if let Some(l) = op.kind.accessed_loc() {
                locs.insert(l);
            }
        }
    }
    let observed = observed_orders(&exploration.runs, &locs);
    let adjacent = observed_adjacent(&exploration.runs, &locs);
    let reported = reported_races(&exploration.runs);
    // Soundness: adjacent conflicting cross-thread accesses are provably
    // unsynchronized and must be reported.
    for (loc, pairs) in &adjacent {
        let reported_for_loc = reported.get(loc).cloned().unwrap_or_default();
        for pair in pairs {
            assert!(
                reported_for_loc.contains(pair),
                "pair {pair:?} on {loc} executes back-to-back but is never reported"
            );
        }
    }
    // Completeness: every reported pair really flips across schedules (the
    // paper's true-positive criterion).
    for (loc, reported_for_loc) in &reported {
        let orders = observed.get(loc).cloned().unwrap_or_default();
        for pair in reported_for_loc {
            let (a, b) = pair;
            assert!(
                orders.contains(&(a.clone(), b.clone()))
                    && orders.contains(&(b.clone(), a.clone())),
                "pair {pair:?} on {loc} is reported but never flips"
            );
        }
    }
}

#[test]
fn oracle_plain_mt_race() {
    let mut p = ProgramBuilder::new();
    let a = p.thread(ThreadSpec::app("a").initial());
    let b = p.thread(ThreadSpec::app("b").initial());
    let loc = p.loc("o", "C.f");
    p.set_thread_body(a, vec![Action::Write(loc)]);
    p.set_thread_body(b, vec![Action::Read(loc)]);
    check_oracle(&p.finish().expect("valid"));
}

#[test]
fn oracle_fork_join_sync() {
    let mut p = ProgramBuilder::new();
    let main = p.thread(ThreadSpec::app("main").initial());
    let w = p.thread(ThreadSpec::app("w"));
    let loc = p.loc("o", "C.f");
    let loc2 = p.loc("o", "C.g");
    p.set_thread_body(
        main,
        vec![
            Action::Write(loc2), // ordered before w's read via the fork
            Action::Fork(w),
            Action::Join(w),
            Action::Read(loc), // ordered after w's write
        ],
    );
    p.set_thread_body(w, vec![Action::Write(loc), Action::Read(loc2)]);
    check_oracle(&p.finish().expect("valid"));
}

#[test]
fn oracle_lock_handoff() {
    let mut p = ProgramBuilder::new();
    let a = p.thread(ThreadSpec::app("a").initial());
    let b = p.thread(ThreadSpec::app("b").initial());
    let loc = p.loc("o", "C.f");
    let m = p.lock("m");
    p.set_thread_body(
        a,
        vec![Action::Acquire(m), Action::Write(loc), Action::Release(m)],
    );
    p.set_thread_body(
        b,
        vec![Action::Acquire(m), Action::Write(loc), Action::Release(m)],
    );
    check_oracle(&p.finish().expect("valid"));
}

#[test]
fn oracle_looper_tasks() {
    // Two tasks posted to a looper by two independent threads: the
    // single-threaded race flips with the post order.
    let mut p = ProgramBuilder::new();
    let main = p.thread(
        ThreadSpec::app("main")
            .kind(ThreadKind::Main)
            .initial()
            .with_queue(),
    );
    let p1 = p.thread(ThreadSpec::app("p1").initial());
    let p2 = p.thread(ThreadSpec::app("p2").initial());
    let loc = p.loc("o", "C.f");
    let a = p.task("A", vec![Action::Write(loc)]);
    let b2 = p.task("B", vec![Action::Write(loc)]);
    p.set_thread_body(
        p1,
        vec![Action::Post {
            task: a,
            target: main,
            kind: PostKind::Plain,
        }],
    );
    p.set_thread_body(
        p2,
        vec![Action::Post {
            task: b2,
            target: main,
            kind: PostKind::Plain,
        }],
    );
    check_oracle(&p.finish().expect("valid"));
}

#[test]
fn oracle_fifo_ordered_tasks() {
    // Both tasks posted by one thread: FIFO orders them, no race, no flip.
    let mut p = ProgramBuilder::new();
    let main = p.thread(
        ThreadSpec::app("main")
            .kind(ThreadKind::Main)
            .initial()
            .with_queue(),
    );
    let poster = p.thread(ThreadSpec::app("poster").initial());
    let loc = p.loc("o", "C.f");
    let a = p.task("A", vec![Action::Write(loc)]);
    let b2 = p.task("B", vec![Action::Write(loc)]);
    p.set_thread_body(
        poster,
        vec![
            Action::Post {
                task: a,
                target: main,
                kind: PostKind::Plain,
            },
            Action::Post {
                task: b2,
                target: main,
                kind: PostKind::Plain,
            },
        ],
    );
    check_oracle(&p.finish().expect("valid"));
}

#[test]
fn oracle_delayed_post_overtaking() {
    // A delayed task and a plain task from one poster: the delayed one may
    // be overtaken — the race is real and must flip.
    let mut p = ProgramBuilder::new();
    let main = p.thread(
        ThreadSpec::app("main")
            .kind(ThreadKind::Main)
            .initial()
            .with_queue(),
    );
    let poster = p.thread(ThreadSpec::app("poster").initial());
    let loc = p.loc("o", "C.f");
    let slow = p.task("slow", vec![Action::Write(loc)]);
    let fast = p.task("fast", vec![Action::Write(loc)]);
    p.set_thread_body(
        poster,
        vec![
            Action::Post {
                task: slow,
                target: main,
                kind: PostKind::Delayed(100),
            },
            Action::Post {
                task: fast,
                target: main,
                kind: PostKind::Plain,
            },
        ],
    );
    check_oracle(&p.finish().expect("valid"));
}

#[test]
fn oracle_enable_gated_task() {
    // Task A enables task E which a separate thread posts: A always ends
    // before E begins (ENABLE + NOPRE) — no race, no flip.
    let mut p = ProgramBuilder::new();
    let main = p.thread(
        ThreadSpec::app("main")
            .kind(ThreadKind::Main)
            .initial()
            .with_queue(),
    );
    let binder = p.thread(ThreadSpec::app("binder").initial());
    let poster = p.thread(ThreadSpec::app("poster").initial());
    let loc = p.loc("o", "C.f");
    let gated = p.task("gated", vec![Action::Write(loc)]);
    p.require_enable(gated);
    let first = p.task("first", vec![Action::Write(loc), Action::Enable(gated)]);
    p.set_thread_body(
        binder,
        vec![Action::Post {
            task: first,
            target: main,
            kind: PostKind::Plain,
        }],
    );
    p.set_thread_body(
        poster,
        vec![Action::Post {
            task: gated,
            target: main,
            kind: PostKind::Plain,
        }],
    );
    check_oracle(&p.finish().expect("valid"));
}
