//! Replays the committed fuzz regression corpus through the full oracle
//! stack, and pins the coverage claim that justifies it: the fuzzer found
//! (and shrink preserved) an engine path — effective task cancellation —
//! that no trace of the static 15-app corpus exercises.

use std::path::Path;

use droidracer::apps::{component_corpus, corpus};
use droidracer::core::HbConfig;
use droidracer::fuzz::corpus::{load_regressions, replay_regressions, serial_executor_ordering};
use droidracer::trace::OpKind;

const REGRESSIONS: &str = "tests/data/fuzz_regressions";

/// Every committed regression trace passes the whole oracle stack clean:
/// engine differential, detector differential, HB invariants, partition.
#[test]
fn committed_regressions_replay_clean() {
    let results =
        replay_regressions(Path::new(REGRESSIONS), HbConfig::new()).expect("corpus loads");
    assert!(!results.is_empty(), "the regression corpus must not be empty");
    for (path, divergences) in results {
        assert!(
            divergences.is_empty(),
            "{}: {divergences:?}",
            path.display()
        );
    }
}

/// The fuzz-found regression exercises *effective* cancellation — a cancel
/// that erases a pending post, changing the analyzed trace — which the
/// static corpus never does.
#[test]
fn cancel_regression_covers_what_the_static_corpus_does_not() {
    // No app in the static corpus ever emits a cancel operation.
    for entry in corpus() {
        let trace = entry.generate_trace().expect("corpus traces generate");
        assert!(
            !trace
                .iter()
                .any(|(_, op)| matches!(op.kind, OpKind::Cancel { .. })),
            "{}: static corpus unexpectedly exercises cancel",
            entry.name
        );
    }

    // The committed fuzz regression does, and the cancel is effective: the
    // cancelled post is stripped before analysis.
    let regressions = load_regressions(Path::new(REGRESSIONS)).expect("corpus loads");
    let (path, trace) = regressions
        .iter()
        .find(|(p, _)| p.ends_with("cancel_pending_post.trace"))
        .expect("the cancel regression is committed");
    assert!(
        trace
            .iter()
            .any(|(_, op)| matches!(op.kind, OpKind::Cancel { .. })),
        "{}: must contain a cancel op",
        path.display()
    );
    let stripped = trace.without_cancelled();
    assert!(
        stripped.len() < trace.len(),
        "{}: the cancel must actually erase a pending post ({} vs {} ops)",
        path.display(),
        stripped.len(),
        trace.len()
    );
}

/// The component-substructure campaign committed one shrunk trace per
/// component tag; all four must stay in the corpus (replayed clean by
/// `committed_regressions_replay_clean` above).
#[test]
fn all_four_component_regressions_are_committed() {
    let regressions = load_regressions(Path::new(REGRESSIONS)).expect("corpus loads");
    for tag in ["service", "fragment", "serial_executor", "broadcast"] {
        assert!(
            regressions
                .iter()
                .any(|(p, _)| p.ends_with(format!("component_{tag}.trace"))),
            "component_{tag}.trace is missing from {REGRESSIONS}"
        );
    }
}

/// The serial-executor regression exercises an ordering shape the whole
/// static catalog — the 15 paper apps *and* the 7 component apps — never
/// reaches: a plain *application* thread that is never itself posted to
/// delivering two tasks to the same non-main queue, so the FIFO rule
/// orders work on a dedicated serial executor. The catalog's cross-queue
/// fan-out always originates from environment binder threads or from the
/// main looper, so only the fuzzer covers this path.
#[test]
fn serial_executor_regression_covers_what_the_static_corpus_does_not() {
    let mut entries = corpus();
    entries.extend(component_corpus());
    for entry in entries {
        let trace = entry.generate_trace().expect("corpus traces generate");
        assert!(
            !serial_executor_ordering(&trace),
            "{}: static corpus unexpectedly exercises serial-executor ordering",
            entry.name
        );
    }

    let regressions = load_regressions(Path::new(REGRESSIONS)).expect("corpus loads");
    let (path, trace) = regressions
        .iter()
        .find(|(p, _)| p.ends_with("component_serial_executor.trace"))
        .expect("the serial-executor regression is committed");
    assert!(
        serial_executor_ordering(trace),
        "{}: must exhibit the serial-executor ordering shape",
        path.display()
    );
}
