//! A registry of named counters, gauges and histograms.
//!
//! The registry is the single aggregation point for the workspace's
//! deterministic instrumentation (the happens-before engine's
//! `EngineStats`, per-analysis race counts, corpus totals) and for the few
//! wall-clock measurements worth exporting. Determinism is split by metric
//! kind:
//!
//! * **counters** and **histograms** hold deterministic values — identical
//!   for a given input at any worker-thread count;
//! * **gauges** are the designated home for wall-clock-ish values
//!   (durations, throughput) and are excluded from the Chrome trace export
//!   and from deterministic comparisons.

use std::collections::BTreeMap;
use std::fmt;

/// A fixed-bucket (power-of-two) histogram of `u64` observations.
///
/// Bucket `k` counts observations whose bit length is `k` (bucket 0 counts
/// zeros), capped at 63 — coarse, allocation-free, and mergeable, which is
/// all the pipeline needs for size/effort distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros() as usize).min(63)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (0.0–1.0): the top of the first
    /// bucket whose cumulative count reaches `q * count`. Coarse by design
    /// (power-of-two buckets).
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (k, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if k == 0 { 0 } else { (1u64 << k) - 1 }.min(self.max);
            }
        }
        self.max
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "count=0");
        }
        write!(
            f,
            "count={} sum={} min={} mean={:.1} p90<={} max={}",
            self.count,
            self.sum,
            self.min,
            self.mean(),
            self.quantile_upper(0.9),
            self.max
        )
    }
}

/// One metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically accumulated deterministic count.
    Counter(u64),
    /// A last-write-wins floating-point reading (wall-clock-ish values go
    /// here — gauges are excluded from deterministic comparisons).
    Gauge(f64),
    /// A distribution of deterministic observations (boxed: the fixed
    /// bucket array dwarfs the other variants).
    Histogram(Box<Histogram>),
}

/// A name-keyed collection of metrics with deterministic iteration order.
///
/// # Examples
///
/// ```
/// use droidracer_obs::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.counter_add("hb.word_ops", 12_803);
/// m.counter_add("hb.word_ops", 197);
/// m.observe("trace.ops", 1355);
/// m.gauge_set("time.total_ms", 4.2);
/// assert_eq!(m.counter("hb.word_ops"), Some(13_000));
/// assert_eq!(m.histogram("trace.ops").unwrap().count, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn counter_add(&mut self, name: impl Into<String>, delta: u64) {
        match self
            .metrics
            .entry(name.into())
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(v) => *v += delta,
            other => panic!("metric is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge `name` to `value` (last write wins).
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn gauge_set(&mut self, name: impl Into<String>, value: f64) {
        match self
            .metrics
            .entry(name.into())
            .or_insert(MetricValue::Gauge(0.0))
        {
            MetricValue::Gauge(v) => *v = value,
            other => panic!("metric is not a gauge: {other:?}"),
        }
    }

    /// Records `value` into the histogram `name` (creating it empty).
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn observe(&mut self, name: impl Into<String>, value: u64) {
        match self
            .metrics
            .entry(name.into())
            .or_insert_with(|| MetricValue::Histogram(Box::new(Histogram::new())))
        {
            MetricValue::Histogram(h) => h.observe(value),
            other => panic!("metric is not a histogram: {other:?}"),
        }
    }

    /// The counter `name`, if registered as one.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge `name`, if registered as one.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram `name`, if registered as one.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.metrics.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Merges `other` into `self`: counters add, histograms merge, gauges
    /// take `other`'s reading. Used to aggregate per-trace registries into
    /// corpus totals.
    ///
    /// # Panics
    ///
    /// Panics if a name is registered under different kinds in the two
    /// registries.
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.metrics {
            match value {
                MetricValue::Counter(v) => self.counter_add(name.clone(), *v),
                MetricValue::Gauge(v) => self.gauge_set(name.clone(), *v),
                MetricValue::Histogram(h) => match self
                    .metrics
                    .entry(name.clone())
                    .or_insert_with(|| MetricValue::Histogram(Box::new(Histogram::new())))
                {
                    MetricValue::Histogram(mine) => mine.merge(h),
                    other => panic!("metric is not a histogram: {other:?}"),
                },
            }
        }
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Renders the registry as sorted `name  value` lines.
    pub fn render(&self) -> String {
        let width = self.metrics.keys().map(String::len).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => out.push_str(&format!("{name:<width$}  {v}\n")),
                MetricValue::Gauge(v) => out.push_str(&format!("{name:<width$}  {v:.3}\n")),
                MetricValue::Histogram(h) => out.push_str(&format!("{name:<width$}  {h}\n")),
            }
        }
        out
    }

    /// Renders the registry as a JSON object with `counters`, `gauges` and
    /// `histograms` sub-objects (names sorted).
    pub fn to_json(&self) -> String {
        use crate::json::escape;
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => counters.push(format!("\"{}\": {v}", escape(name))),
                MetricValue::Gauge(v) => gauges.push(format!("\"{}\": {v:.6}", escape(name))),
                MetricValue::Histogram(h) => histograms.push(format!(
                    "\"{}\": {{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {} }}",
                    escape(name),
                    h.count,
                    h.sum,
                    if h.count == 0 { 0 } else { h.min },
                    h.max
                )),
            }
        }
        format!(
            "{{ \"counters\": {{ {} }}, \"gauges\": {{ {} }}, \"histograms\": {{ {} }} }}",
            counters.join(", "),
            gauges.join(", "),
            histograms.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.counter_add("a", 2);
        m.counter_add("a", 3);
        assert_eq!(m.counter("a"), Some(5));
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("g", 1.0);
        m.gauge_set("g", 2.5);
        assert_eq!(m.gauge("g"), Some(2.5));
    }

    #[test]
    fn histogram_tracks_distribution() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1106);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert!(h.mean() > 180.0 && h.mean() < 190.0);
        assert!(h.quantile_upper(0.5) <= 1000);
        assert_eq!(h.quantile_upper(1.0), 1000);
    }

    #[test]
    fn absorb_merges_by_kind() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.observe("h", 4);
        a.gauge_set("g", 1.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 2);
        b.observe("h", 8);
        b.gauge_set("g", 9.0);
        a.absorb(&b);
        assert_eq!(a.counter("c"), Some(3));
        assert_eq!(a.histogram("h").unwrap().count, 2);
        assert_eq!(a.gauge("g"), Some(9.0));
    }

    #[test]
    #[should_panic]
    fn kind_mismatch_panics() {
        let mut m = MetricsRegistry::new();
        m.counter_add("x", 1);
        m.gauge_set("x", 1.0);
    }

    #[test]
    fn render_and_json_are_sorted() {
        let mut m = MetricsRegistry::new();
        m.counter_add("b.count", 2);
        m.counter_add("a.count", 1);
        m.gauge_set("time.ms", 1.5);
        m.observe("sizes", 64);
        let text = m.render();
        let a_pos = text.find("a.count").unwrap();
        let b_pos = text.find("b.count").unwrap();
        assert!(a_pos < b_pos, "sorted render: {text}");
        let json = m.to_json();
        assert!(json.contains("\"a.count\": 1"), "{json}");
        assert!(json.contains("\"time.ms\": 1.500000"), "{json}");
        assert!(json.contains("\"count\": 1"), "{json}");
    }

    #[test]
    fn merged_histogram_quantiles_cover_both() {
        let mut a = Histogram::new();
        a.observe(10);
        let mut b = Histogram::new();
        b.observe(1_000_000);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.min, 10);
        assert_eq!(a.max, 1_000_000);
    }
}
