//! Human-readable names for the entities of a trace.

use std::fmt;

use crate::ids::{EventId, FieldId, LockId, ObjectId, TaskId, ThreadId, ThreadKind};

/// Metadata for one thread of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadDecl {
    /// Display name, e.g. `"main"` or `"AsyncTask #1"`.
    pub name: String,
    /// Role of the thread in the runtime.
    pub kind: ThreadKind,
    /// Whether the thread exists at application start (the `Threads` set of
    /// §3) as opposed to being forked dynamically.
    pub initial: bool,
}

/// Interned names for all id spaces of a trace.
///
/// The simulator and framework build a `Names` while generating a trace; the
/// detector and report printers consult it for display only. Every `fresh_*`
/// method mints a new id; every `*_name` method falls back to the id's
/// `Display` form when no name was recorded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Names {
    threads: Vec<ThreadDecl>,
    tasks: Vec<String>,
    locks: Vec<String>,
    events: Vec<String>,
    fields: Vec<String>,
    objects: Vec<String>,
}

impl Names {
    /// Creates an empty name table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a new thread and returns its id.
    pub fn fresh_thread(&mut self, name: impl Into<String>, kind: ThreadKind, initial: bool) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        self.threads.push(ThreadDecl {
            name: name.into(),
            kind,
            initial,
        });
        id
    }

    /// Declares a new task instance and returns its id.
    pub fn fresh_task(&mut self, name: impl Into<String>) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(name.into());
        id
    }

    /// Declares a new lock and returns its id.
    pub fn fresh_lock(&mut self, name: impl Into<String>) -> LockId {
        let id = LockId(self.locks.len() as u32);
        self.locks.push(name.into());
        id
    }

    /// Declares a new environment event and returns its id.
    pub fn fresh_event(&mut self, name: impl Into<String>) -> EventId {
        let id = EventId(self.events.len() as u32);
        self.events.push(name.into());
        id
    }

    /// Interns a field name (`Class.field`), returning the existing id if the
    /// name was seen before.
    pub fn field(&mut self, name: impl AsRef<str>) -> FieldId {
        let name = name.as_ref();
        if let Some(pos) = self.fields.iter().position(|f| f == name) {
            return FieldId(pos as u32);
        }
        let id = FieldId(self.fields.len() as u32);
        self.fields.push(name.to_owned());
        id
    }

    /// Declares a new heap object and returns its id.
    pub fn fresh_object(&mut self, name: impl Into<String>) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        self.objects.push(name.into());
        id
    }

    /// The declaration of `thread`, if declared.
    pub fn thread(&self, thread: ThreadId) -> Option<&ThreadDecl> {
        self.threads.get(thread.index())
    }

    /// Iterates over all declared threads in id order.
    pub fn threads(&self) -> impl Iterator<Item = (ThreadId, &ThreadDecl)> {
        self.threads
            .iter()
            .enumerate()
            .map(|(i, d)| (ThreadId(i as u32), d))
    }

    /// Number of declared threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Number of declared task instances.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of declared events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Number of interned fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Display name of a thread.
    pub fn thread_name(&self, id: ThreadId) -> String {
        self.threads
            .get(id.index())
            .map(|d| d.name.clone())
            .unwrap_or_else(|| id.to_string())
    }

    /// Display name of a task instance.
    pub fn task_name(&self, id: TaskId) -> String {
        self.tasks
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| id.to_string())
    }

    /// Display name of a lock.
    pub fn lock_name(&self, id: LockId) -> String {
        self.locks
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| id.to_string())
    }

    /// Display name of an event.
    pub fn event_name(&self, id: EventId) -> String {
        self.events
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| id.to_string())
    }

    /// Display name of a field.
    pub fn field_name(&self, id: FieldId) -> String {
        self.fields
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| id.to_string())
    }

    /// Display name of an object.
    pub fn object_name(&self, id: ObjectId) -> String {
        self.objects
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| id.to_string())
    }

    /// Renders a memory location as `object.Class.field`.
    pub fn loc_name(&self, loc: crate::ids::MemLoc) -> String {
        format!("{}.{}", self.object_name(loc.object), self.field_name(loc.field))
    }
}

impl fmt::Display for Names {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "threads: {}", self.threads.len())?;
        for (id, d) in self.threads() {
            writeln!(f, "  {id} = {} ({}{})", d.name, d.kind, if d.initial { ", initial" } else { "" })?;
        }
        writeln!(f, "tasks: {}", self.tasks.len())?;
        writeln!(f, "events: {}", self.events.len())?;
        writeln!(f, "fields: {}", self.fields.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_sequential() {
        let mut n = Names::new();
        assert_eq!(n.fresh_thread("main", ThreadKind::Main, true), ThreadId(0));
        assert_eq!(n.fresh_thread("bg", ThreadKind::App, false), ThreadId(1));
        assert_eq!(n.fresh_task("onCreate"), TaskId(0));
        assert_eq!(n.fresh_lock("mLock"), LockId(0));
        assert_eq!(n.fresh_event("click"), EventId(0));
        assert_eq!(n.fresh_object("DwFileAct-obj"), ObjectId(0));
    }

    #[test]
    fn fields_are_interned_by_name() {
        let mut n = Names::new();
        let a = n.field("Act.isDestroyed");
        let b = n.field("Act.isDestroyed");
        let c = n.field("Act.other");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(n.field_count(), 2);
    }

    #[test]
    fn lookup_falls_back_to_display() {
        let n = Names::new();
        assert_eq!(n.thread_name(ThreadId(5)), "t5");
        assert_eq!(n.task_name(TaskId(2)), "p2");
    }

    #[test]
    fn loc_name_combines_object_and_field() {
        let mut n = Names::new();
        let o = n.fresh_object("DwFileAct-obj");
        let f = n.field("DwFileAct.isActivityDestroyed");
        assert_eq!(
            n.loc_name(crate::ids::MemLoc::new(o, f)),
            "DwFileAct-obj.DwFileAct.isActivityDestroyed"
        );
    }
}
