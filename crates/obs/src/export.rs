//! Profile exporters: the human-readable span-tree renderer and the Chrome
//! `trace_event`-format JSON writer.
//!
//! The Chrome format is the de-facto interchange format for timeline
//! profiles: a `{"traceEvents": [...]}` object whose events use `"ph": "X"`
//! complete events (name, microsecond `ts`/`dur`, `pid`/`tid`) for spans
//! and `"ph": "C"` counter events for metrics. The emitted files load in
//! `chrome://tracing` and Perfetto.
//!
//! Both exporters keep the determinism contract of the crate root: the only
//! nondeterministic bytes in an export are the `ts`/`dur` values, which
//! [`strip_wall_clock`] erases for bit-exact comparisons.

use crate::json::escape;
use crate::metrics::{MetricValue, MetricsRegistry};
use crate::SpanRecord;

fn format_duration(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.1} µs", ns as f64 / 1e3)
    }
}

/// Renders a span tree with box-drawing guides, right-aligned durations and
/// the counters attached to each span:
///
/// ```text
/// analyze                     3.21 ms
/// ├─ parse                    0.52 ms  ops=1355
/// └─ analysis                 2.40 ms
///    ├─ prepare               0.11 ms  ops=1355
///    └─ closure               1.80 ms  word_ops=12803
/// ```
pub fn render_span_tree(root: &SpanRecord) -> String {
    let mut rows: Vec<(String, u64, String)> = Vec::new();
    collect_rows(root, "", "", &mut rows);
    let label_width = rows.iter().map(|(l, _, _)| l.chars().count()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, dur_ns, counters) in rows {
        let pad = label_width - label.chars().count();
        out.push_str(&label);
        out.push_str(&" ".repeat(pad));
        out.push_str(&format!("  {:>10}", format_duration(dur_ns)));
        if !counters.is_empty() {
            out.push_str("  ");
            out.push_str(&counters);
        }
        out.push('\n');
    }
    out
}

fn collect_rows(span: &SpanRecord, prefix: &str, child_prefix: &str, rows: &mut Vec<(String, u64, String)>) {
    let counters = span
        .counters
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ");
    rows.push((format!("{prefix}{}", span.name), span.dur_ns, counters));
    let last = span.children.len().saturating_sub(1);
    for (i, child) in span.children.iter().enumerate() {
        let (tee, bar) = if i == last { ("└─ ", "   ") } else { ("├─ ", "│  ") };
        collect_rows(
            child,
            &format!("{child_prefix}{tee}"),
            &format!("{child_prefix}{bar}"),
            rows,
        );
    }
}

fn push_span_events(span: &SpanRecord, first: &mut bool, out: &mut String) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let mut args = span
        .counters
        .iter()
        .map(|(k, v)| format!("\"{}\": {v}", escape(k)))
        .collect::<Vec<_>>()
        .join(", ");
    if !args.is_empty() {
        args = format!(" {args} ");
    }
    out.push_str(&format!(
        "    {{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": 0, \"args\": {{{args}}}}}",
        escape(&span.name),
        span.start_ns as f64 / 1e3,
        span.dur_ns as f64 / 1e3,
    ));
    for child in &span.children {
        push_span_events(child, first, out);
    }
}

/// Writes `roots` and the deterministic metrics of `metrics` as a Chrome
/// `trace_event` JSON document.
///
/// Spans become `"ph": "X"` complete events (depth-first order, counters in
/// `args`); counters and histograms become `"ph": "C"` counter events at
/// `ts` 0. Gauges are wall-clock-ish by convention and deliberately not
/// exported, so the only nondeterministic bytes in the document are the
/// span `ts`/`dur` values (see [`strip_wall_clock`]).
pub fn chrome_trace(roots: &[SpanRecord], metrics: &MetricsRegistry) -> String {
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    let mut first = true;
    for root in roots {
        push_span_events(root, &mut first, &mut out);
    }
    for (name, value) in metrics.iter() {
        let args = match value {
            MetricValue::Counter(v) => format!("\"value\": {v}"),
            MetricValue::Histogram(h) => format!(
                "\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max
            ),
            MetricValue::Gauge(_) => continue,
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cat\": \"metric\", \"ph\": \"C\", \"ts\": 0, \"pid\": 1, \"tid\": 0, \"args\": {{ {args} }}}}",
            escape(name)
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Erases the wall-clock fields of an exported profile: the numeric value
/// after every `"ts":` and `"dur":` key becomes `0`. Two profiles of the
/// same input — at any worker-thread count — must be bit-identical after
/// stripping.
pub fn strip_wall_clock(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while !rest.is_empty() {
        let ts = rest.find("\"ts\":");
        let dur = rest.find("\"dur\":");
        let (at, key_len) = match (ts, dur) {
            (Some(t), Some(d)) => {
                if t < d {
                    (t, 5)
                } else {
                    (d, 6)
                }
            }
            (Some(t), None) => (t, 5),
            (None, Some(d)) => (d, 6),
            (None, None) => break,
        };
        let number_start = at + key_len;
        out.push_str(&rest[..number_start]);
        rest = &rest[number_start..];
        let skipped = rest
            .find(|c: char| !matches!(c, ' ' | '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
            .unwrap_or(rest.len());
        out.push_str(" 0");
        rest = &rest[skipped..];
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn sample_tree() -> SpanRecord {
        let mut root = SpanRecord::leaf("analyze");
        root.dur_ns = 3_210_000;
        let mut parse = SpanRecord::leaf("parse");
        parse.start_ns = 10_000;
        parse.dur_ns = 520_000;
        parse.counters.push(("ops".to_owned(), 1355));
        let mut closure = SpanRecord::leaf("closure");
        closure.start_ns = 600_000;
        closure.dur_ns = 1_800_000;
        root.children.push(parse);
        root.children.push(closure);
        root
    }

    #[test]
    fn tree_renderer_shows_guides_and_counters() {
        let text = render_span_tree(&sample_tree());
        assert!(text.contains("analyze"), "{text}");
        assert!(text.contains("├─ parse"), "{text}");
        assert!(text.contains("└─ closure"), "{text}");
        assert!(text.contains("ops=1355"), "{text}");
        assert!(text.contains("ms"), "{text}");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_spans() {
        let mut metrics = MetricsRegistry::new();
        metrics.counter_add("hb.word_ops", 42);
        metrics.gauge_set("time.total_ms", 3.2);
        metrics.observe("trace.ops", 1355);
        let doc = chrome_trace(std::slice::from_ref(&sample_tree()), &metrics);
        let json = Json::parse(&doc).expect("exported profile parses");
        let events = json.get("traceEvents").unwrap().as_array().unwrap();
        // 3 spans + counter + histogram; the gauge is excluded.
        assert_eq!(events.len(), 5);
        let names: Vec<&str> = events.iter().filter_map(|e| e.get("name")?.as_str()).collect();
        assert!(names.contains(&"analyze"));
        assert!(names.contains(&"hb.word_ops"));
        assert!(!names.contains(&"time.total_ms"));
        for event in events {
            assert!(event.get("ph").is_some());
            assert!(event.get("ts").is_some());
            assert!(event.get("pid").is_some());
        }
    }

    #[test]
    fn strip_wall_clock_zeroes_ts_and_dur_only() {
        let doc = chrome_trace(std::slice::from_ref(&sample_tree()), &MetricsRegistry::new());
        let stripped = strip_wall_clock(&doc);
        assert!(stripped.contains("\"ts\": 0"), "{stripped}");
        assert!(stripped.contains("\"dur\": 0"), "{stripped}");
        assert!(!stripped.contains("520.000"), "{stripped}");
        // Still valid JSON, with counters untouched.
        let json = Json::parse(&stripped).expect("stripped profile parses");
        let events = json.get("traceEvents").unwrap().as_array().unwrap();
        let parse = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("parse"))
            .unwrap();
        assert_eq!(parse.get("args").unwrap().get("ops").unwrap().as_f64(), Some(1355.0));
    }

    #[test]
    fn identical_structures_strip_to_identical_bytes() {
        let mut a = sample_tree();
        let mut b = sample_tree();
        a.dur_ns = 111;
        b.dur_ns = 999_999;
        a.children[0].start_ns = 5;
        b.children[0].start_ns = 777;
        let m = MetricsRegistry::new();
        let sa = strip_wall_clock(&chrome_trace(std::slice::from_ref(&a), &m));
        let sb = strip_wall_clock(&chrome_trace(std::slice::from_ref(&b), &m));
        assert_eq!(sa, sb);
        assert_eq!(a.structure(), b.structure());
    }
}
