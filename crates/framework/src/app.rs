//! The application model: activities, widgets, AsyncTasks, services,
//! broadcast receivers, worker threads and handlers.
//!
//! An [`App`] is the framework-level description of an Android application —
//! the analogue of the APK DroidRacer tests. App code is written in the
//! [`Stmt`] language, a thin veneer over the simulator's core language that
//! knows about framework concepts (`execute()` on an AsyncTask,
//! `startActivity`, `Handler.post`, …). The compiler in [`crate::compile`]
//! lowers an `App` plus a UI event sequence to a [`droidracer_sim::Program`].

use std::fmt;

/// Reference to an activity of an [`App`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActivityId(pub(crate) usize);

/// Reference to a widget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WidgetId(pub(crate) usize);

impl WidgetId {
    /// Position of this widget in the app's widget table. Stable across
    /// compiles of the same [`App`]; used by the explorer's replay-database
    /// text format.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs an id from a table position (e.g. when loading a replay
    /// database). The index is *not* checked here — an id that does not
    /// exist in the target app is rejected by [`crate::compile`] with a
    /// typed error, never a panic.
    pub fn from_index(index: usize) -> Self {
        WidgetId(index)
    }
}

/// Reference to an AsyncTask definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AsyncTaskId(pub(crate) usize);

/// Reference to a Service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(pub(crate) usize);

/// Reference to an IntentService (a service with its own serial executor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntentServiceId(pub(crate) usize);

/// Reference to a Fragment nested inside a host activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FragmentId(pub(crate) usize);

/// Reference to a BroadcastReceiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReceiverId(pub(crate) usize);

/// Reference to a plain worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub(crate) usize);

/// Reference to a `HandlerThread` (a forked thread with its own looper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandlerThreadId(pub(crate) usize);

/// Reference to a posted runnable (a `Handler.post` target).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandlerId(pub(crate) usize);

/// Reference to a shared memory location (an object field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) usize);

/// Reference to a lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Mutex(pub(crate) usize);

/// Kinds of UI events a widget can receive (a subset of what DroidRacer's UI
/// Explorer generates: click, long-click, text input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UiEventKind {
    /// A tap.
    Click,
    /// A long press.
    LongClick,
    /// Text entry into a field.
    TextInput,
}

impl UiEventKind {
    /// All kinds.
    pub fn all() -> [UiEventKind; 3] {
        [UiEventKind::Click, UiEventKind::LongClick, UiEventKind::TextInput]
    }

    /// Short label used in event names.
    pub fn label(self) -> &'static str {
        match self {
            UiEventKind::Click => "click",
            UiEventKind::LongClick => "long-click",
            UiEventKind::TextInput => "text",
        }
    }
}

impl fmt::Display for UiEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One statement of framework-level application code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Read a shared field.
    Read(Var),
    /// Write a shared field.
    Write(Var),
    /// `synchronized (m) { body }`.
    Synchronized(Mutex, Vec<Stmt>),
    /// `new SomeAsyncTask().execute(…)`: runs `onPreExecute` synchronously,
    /// then forks the background thread.
    ExecuteAsyncTask(AsyncTaskId),
    /// `publishProgress(…)` — only legal inside `doInBackground`; posts the
    /// enclosing AsyncTask's `onProgressUpdate` to the main thread.
    PublishProgress,
    /// `Handler.post`/`postDelayed`/`postAtFrontOfQueue` of a runnable to
    /// the main thread.
    Post {
        /// The runnable.
        handler: HandlerId,
        /// Timeout for `postDelayed`.
        delay: Option<u64>,
        /// `postAtFrontOfQueue` (extension beyond the paper).
        front: bool,
    },
    /// Post a runnable to a `HandlerThread`'s looper.
    PostToHandlerThread {
        /// The runnable.
        handler: HandlerId,
        /// The target looper thread.
        thread: HandlerThreadId,
    },
    /// `removeCallbacks`: cancel the oldest pending post of the runnable.
    CancelPost(HandlerId),
    /// `new Thread(...).start()`.
    ForkWorker(WorkerId),
    /// `thread.join()` on the most recently started instance.
    JoinWorker(WorkerId),
    /// Fork a `HandlerThread` (attaches a queue and loops).
    StartHandlerThread(HandlerThreadId),
    /// `startService(intent)`.
    StartService(ServiceId),
    /// `stopService(intent)`.
    StopService(ServiceId),
    /// `sendBroadcast(intent)` delivered to the receiver.
    SendBroadcast(ReceiverId),
    /// `startActivity(intent)`.
    StartActivity(ActivityId),
    /// `finish()` on the current activity.
    FinishActivity,
    /// `widget.setEnabled(true)`-style enabling of one UI event.
    EnableWidget(WidgetId, UiEventKind),
    /// `Looper.myQueue().addIdleHandler(…)`: run the runnable once the main
    /// looper's queue drains (one-shot).
    AddIdleHandler(HandlerId),
    /// `new Timer().schedule(task, delay, period)` for a bounded number of
    /// firings: a timer thread posts the runnable `repetitions` times with
    /// increasing delays — "connect periodic execution of Java's TimerTask
    /// objects" (§5).
    ScheduleTimer {
        /// The runnable to fire.
        handler: HandlerId,
        /// Initial delay (virtual ms).
        delay: u64,
        /// Period between firings.
        period: u64,
        /// Number of firings (Java timers are unbounded; the model needs a
        /// bound).
        repetitions: u32,
    },
    /// `registerReceiver(receiver, filter)` for a dynamically registered
    /// receiver: broadcasts can only be delivered after registration.
    RegisterReceiver(ReceiverId),
    /// `startService(intent)` on an `IntentService`: queues one
    /// `onHandleIntent` on the component's serial executor.
    StartIntentService(IntentServiceId),
}

/// The seven lifecycle callback bodies of an activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallbackBodies {
    /// `onCreate`.
    pub create: Vec<Stmt>,
    /// `onStart`.
    pub start: Vec<Stmt>,
    /// `onResume`.
    pub resume: Vec<Stmt>,
    /// `onPause`.
    pub pause: Vec<Stmt>,
    /// `onStop`.
    pub stop: Vec<Stmt>,
    /// `onRestart`.
    pub restart: Vec<Stmt>,
    /// `onDestroy`.
    pub destroy: Vec<Stmt>,
}

#[derive(Debug, Clone)]
pub(crate) struct ActivityDef {
    pub name: String,
    pub callbacks: CallbackBodies,
    pub widgets: Vec<WidgetId>,
}

#[derive(Debug, Clone)]
pub(crate) struct WidgetDef {
    pub activity: ActivityId,
    pub name: String,
    pub handlers: Vec<(UiEventKind, Vec<Stmt>)>,
    pub initially_enabled: bool,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct AsyncTaskDef {
    pub name: String,
    pub pre_execute: Vec<Stmt>,
    pub background: Vec<Stmt>,
    pub progress_update: Vec<Stmt>,
    pub post_execute: Vec<Stmt>,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct ServiceDef {
    pub name: String,
    pub create: Vec<Stmt>,
    pub start_command: Vec<Stmt>,
    pub destroy: Vec<Stmt>,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct IntentServiceDef {
    pub name: String,
    /// `onHandleIntent`, run on the component's own serial-executor queue.
    pub handle_intent: Vec<Stmt>,
}

#[derive(Debug, Clone)]
pub(crate) struct FragmentDef {
    pub name: String,
    pub activity: ActivityId,
    /// `onAttach`, spliced into the host's LAUNCH transition.
    pub attach: Vec<Stmt>,
    /// `onCreateView`, spliced into the host's LAUNCH transition.
    pub create_view: Vec<Stmt>,
    /// `onDestroyView`, spliced into the host's destroy transition.
    pub destroy_view: Vec<Stmt>,
    /// `onDetach`, spliced into the host's destroy transition.
    pub detach: Vec<Stmt>,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct ReceiverDef {
    pub name: String,
    pub receive: Vec<Stmt>,
    /// Dynamically registered receivers need a `RegisterReceiver` before
    /// broadcasts reach them; manifest-declared ones are enabled at send.
    pub dynamic: bool,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct WorkerDef {
    pub name: String,
    pub body: Vec<Stmt>,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct HandlerDef {
    pub name: String,
    pub body: Vec<Stmt>,
}

/// A complete framework-level application.
#[derive(Debug, Clone, Default)]
pub struct App {
    pub(crate) name: String,
    pub(crate) activities: Vec<ActivityDef>,
    pub(crate) widgets: Vec<WidgetDef>,
    pub(crate) async_tasks: Vec<AsyncTaskDef>,
    pub(crate) services: Vec<ServiceDef>,
    pub(crate) intent_services: Vec<IntentServiceDef>,
    pub(crate) fragments: Vec<FragmentDef>,
    pub(crate) receivers: Vec<ReceiverDef>,
    pub(crate) workers: Vec<WorkerDef>,
    pub(crate) handler_threads: Vec<String>,
    pub(crate) handlers: Vec<HandlerDef>,
    pub(crate) vars: Vec<(String, String)>,
    pub(crate) mutexes: Vec<String>,
    pub(crate) main_activity: Option<ActivityId>,
}

impl App {
    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The launcher activity.
    pub fn main_activity(&self) -> Option<ActivityId> {
        self.main_activity
    }

    /// All activities in declaration order.
    pub fn activities(&self) -> impl Iterator<Item = ActivityId> {
        (0..self.activities.len()).map(ActivityId)
    }

    /// Display name of an activity.
    pub fn activity_name(&self, a: ActivityId) -> &str {
        &self.activities[a.0].name
    }

    /// Widgets of an activity.
    pub fn widgets_of(&self, a: ActivityId) -> &[WidgetId] {
        &self.activities[a.0].widgets
    }

    /// Display name of a widget.
    pub fn widget_name(&self, w: WidgetId) -> &str {
        &self.widgets[w.0].name
    }

    /// The activity owning a widget.
    pub fn widget_activity(&self, w: WidgetId) -> ActivityId {
        self.widgets[w.0].activity
    }

    /// UI event kinds the widget handles.
    pub fn widget_events(&self, w: WidgetId) -> Vec<UiEventKind> {
        self.widgets[w.0].handlers.iter().map(|(k, _)| *k).collect()
    }

    /// Whether a widget's events are available without an `EnableWidget`.
    pub fn widget_initially_enabled(&self, w: WidgetId) -> bool {
        self.widgets[w.0].initially_enabled
    }

    /// Fragments attached to an activity, in declaration order.
    pub fn fragments_of(&self, a: ActivityId) -> Vec<FragmentId> {
        (0..self.fragments.len())
            .map(FragmentId)
            .filter(|f| self.fragments[f.0].activity == a)
            .collect()
    }

    /// Display name of a fragment.
    pub fn fragment_name(&self, f: FragmentId) -> &str {
        &self.fragments[f.0].name
    }

    /// Display name of an intent service.
    pub fn intent_service_name(&self, s: IntentServiceId) -> &str {
        &self.intent_services[s.0].name
    }
}

/// Builds an [`App`].
///
/// # Examples
///
/// ```
/// use droidracer_framework::{AppBuilder, Stmt, UiEventKind};
///
/// let mut app = AppBuilder::new("MusicPlayer");
/// let act = app.activity("DwFileAct");
/// let flag = app.var("DwFileAct-obj", "isActivityDestroyed");
/// app.on_create(act, vec![Stmt::Write(flag)]);
/// app.on_destroy(act, vec![Stmt::Write(flag)]);
/// let play = app.button(act, "playBtn", vec![Stmt::Read(flag)]);
/// let app = app.finish();
/// assert_eq!(app.widget_events(play), vec![UiEventKind::Click]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AppBuilder {
    app: App,
}

impl AppBuilder {
    /// Starts an app named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        AppBuilder {
            app: App {
                name: name.into(),
                ..App::default()
            },
        }
    }

    /// Declares an activity; the first one becomes the launcher activity.
    pub fn activity(&mut self, name: impl Into<String>) -> ActivityId {
        let id = ActivityId(self.app.activities.len());
        self.app.activities.push(ActivityDef {
            name: name.into(),
            callbacks: CallbackBodies::default(),
            widgets: Vec::new(),
        });
        if self.app.main_activity.is_none() {
            self.app.main_activity = Some(id);
        }
        id
    }

    /// Sets `onCreate`.
    pub fn on_create(&mut self, a: ActivityId, body: Vec<Stmt>) {
        self.app.activities[a.0].callbacks.create = body;
    }

    /// Sets `onStart`.
    pub fn on_start(&mut self, a: ActivityId, body: Vec<Stmt>) {
        self.app.activities[a.0].callbacks.start = body;
    }

    /// Sets `onResume`.
    pub fn on_resume(&mut self, a: ActivityId, body: Vec<Stmt>) {
        self.app.activities[a.0].callbacks.resume = body;
    }

    /// Sets `onPause`.
    pub fn on_pause(&mut self, a: ActivityId, body: Vec<Stmt>) {
        self.app.activities[a.0].callbacks.pause = body;
    }

    /// Sets `onStop`.
    pub fn on_stop(&mut self, a: ActivityId, body: Vec<Stmt>) {
        self.app.activities[a.0].callbacks.stop = body;
    }

    /// Sets `onRestart`.
    pub fn on_restart(&mut self, a: ActivityId, body: Vec<Stmt>) {
        self.app.activities[a.0].callbacks.restart = body;
    }

    /// Sets `onDestroy`.
    pub fn on_destroy(&mut self, a: ActivityId, body: Vec<Stmt>) {
        self.app.activities[a.0].callbacks.destroy = body;
    }

    /// Declares a widget on `activity` handling the given events.
    pub fn widget(
        &mut self,
        activity: ActivityId,
        name: impl Into<String>,
        handlers: Vec<(UiEventKind, Vec<Stmt>)>,
    ) -> WidgetId {
        let id = WidgetId(self.app.widgets.len());
        self.app.widgets.push(WidgetDef {
            activity,
            name: name.into(),
            handlers,
            initially_enabled: true,
        });
        self.app.activities[activity.0].widgets.push(id);
        id
    }

    /// Shorthand for a clickable button.
    pub fn button(
        &mut self,
        activity: ActivityId,
        name: impl Into<String>,
        on_click: Vec<Stmt>,
    ) -> WidgetId {
        self.widget(activity, name, vec![(UiEventKind::Click, on_click)])
    }

    /// Marks a widget as disabled until an [`Stmt::EnableWidget`] runs.
    pub fn initially_disabled(&mut self, w: WidgetId) {
        self.app.widgets[w.0].initially_enabled = false;
    }

    /// Declares an AsyncTask with its four callback bodies.
    pub fn async_task(
        &mut self,
        name: impl Into<String>,
        pre_execute: Vec<Stmt>,
        background: Vec<Stmt>,
        progress_update: Vec<Stmt>,
        post_execute: Vec<Stmt>,
    ) -> AsyncTaskId {
        let id = AsyncTaskId(self.app.async_tasks.len());
        self.app.async_tasks.push(AsyncTaskDef {
            name: name.into(),
            pre_execute,
            background,
            progress_update,
            post_execute,
        });
        id
    }

    /// Declares a Service.
    pub fn service(
        &mut self,
        name: impl Into<String>,
        create: Vec<Stmt>,
        start_command: Vec<Stmt>,
        destroy: Vec<Stmt>,
    ) -> ServiceId {
        let id = ServiceId(self.app.services.len());
        self.app.services.push(ServiceDef {
            name: name.into(),
            create,
            start_command,
            destroy,
        });
        id
    }

    /// Declares an IntentService: each [`Stmt::StartIntentService`] queues
    /// one `onHandleIntent` run on the component's own serial executor (a
    /// dedicated FIFO queue thread, distinct from the main Looper).
    pub fn intent_service(
        &mut self,
        name: impl Into<String>,
        handle_intent: Vec<Stmt>,
    ) -> IntentServiceId {
        let id = IntentServiceId(self.app.intent_services.len());
        self.app.intent_services.push(IntentServiceDef {
            name: name.into(),
            handle_intent,
        });
        id
    }

    /// Declares a Fragment nested in `activity`: attach/createView run
    /// inside the host's LAUNCH transition, destroyView/detach inside the
    /// host's destroy transition (per the Fragment automaton in
    /// [`crate::dsl`]).
    pub fn fragment(
        &mut self,
        activity: ActivityId,
        name: impl Into<String>,
        attach: Vec<Stmt>,
        create_view: Vec<Stmt>,
        destroy_view: Vec<Stmt>,
        detach: Vec<Stmt>,
    ) -> FragmentId {
        let id = FragmentId(self.app.fragments.len());
        self.app.fragments.push(FragmentDef {
            name: name.into(),
            activity,
            attach,
            create_view,
            destroy_view,
            detach,
        });
        id
    }

    /// Declares a manifest-registered BroadcastReceiver (deliverable from
    /// the first broadcast).
    pub fn receiver(&mut self, name: impl Into<String>, receive: Vec<Stmt>) -> ReceiverId {
        let id = ReceiverId(self.app.receivers.len());
        self.app.receivers.push(ReceiverDef {
            name: name.into(),
            receive,
            dynamic: false,
        });
        id
    }

    /// Declares a dynamically registered BroadcastReceiver: broadcasts are
    /// only deliverable after a [`Stmt::RegisterReceiver`] ran.
    pub fn dynamic_receiver(&mut self, name: impl Into<String>, receive: Vec<Stmt>) -> ReceiverId {
        let id = ReceiverId(self.app.receivers.len());
        self.app.receivers.push(ReceiverDef {
            name: name.into(),
            receive,
            dynamic: true,
        });
        id
    }

    /// Declares a plain worker thread.
    pub fn worker(&mut self, name: impl Into<String>, body: Vec<Stmt>) -> WorkerId {
        let id = WorkerId(self.app.workers.len());
        self.app.workers.push(WorkerDef {
            name: name.into(),
            body,
        });
        id
    }

    /// Declares a `HandlerThread` (forked looper).
    pub fn handler_thread(&mut self, name: impl Into<String>) -> HandlerThreadId {
        let id = HandlerThreadId(self.app.handler_threads.len());
        self.app.handler_threads.push(name.into());
        id
    }

    /// Declares a postable runnable.
    pub fn handler(&mut self, name: impl Into<String>, body: Vec<Stmt>) -> HandlerId {
        let id = HandlerId(self.app.handlers.len());
        self.app.handlers.push(HandlerDef {
            name: name.into(),
            body,
        });
        id
    }

    /// Declares a shared field `object.field`.
    pub fn var(&mut self, object: impl Into<String>, field: impl Into<String>) -> Var {
        let id = Var(self.app.vars.len());
        self.app.vars.push((object.into(), field.into()));
        id
    }

    /// Declares a lock.
    pub fn mutex(&mut self, name: impl Into<String>) -> Mutex {
        let id = Mutex(self.app.mutexes.len());
        self.app.mutexes.push(name.into());
        id
    }

    /// Finalizes the app.
    pub fn finish(self) -> App {
        self.app
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_activity_is_launcher() {
        let mut b = AppBuilder::new("X");
        let a = b.activity("Main");
        let c = b.activity("Other");
        let app = b.finish();
        assert_eq!(app.main_activity(), Some(a));
        assert_eq!(app.activity_name(c), "Other");
        assert_eq!(app.activities().count(), 2);
    }

    #[test]
    fn widgets_attach_to_activities() {
        let mut b = AppBuilder::new("X");
        let a = b.activity("Main");
        let w = b.widget(
            a,
            "field",
            vec![
                (UiEventKind::Click, vec![]),
                (UiEventKind::TextInput, vec![]),
            ],
        );
        let app = b.finish();
        assert_eq!(app.widgets_of(a), &[w]);
        assert_eq!(app.widget_activity(w), a);
        assert_eq!(
            app.widget_events(w),
            vec![UiEventKind::Click, UiEventKind::TextInput]
        );
        assert!(app.widget_initially_enabled(w));
    }

    #[test]
    fn initially_disabled_flag() {
        let mut b = AppBuilder::new("X");
        let a = b.activity("Main");
        let w = b.button(a, "play", vec![]);
        b.initially_disabled(w);
        assert!(!b.finish().widget_initially_enabled(w));
    }

    #[test]
    fn declarations_get_distinct_ids() {
        let mut b = AppBuilder::new("X");
        let v1 = b.var("o", "f");
        let v2 = b.var("o", "g");
        assert_ne!(v1, v2);
        let m1 = b.mutex("a");
        let m2 = b.mutex("b");
        assert_ne!(m1, m2);
        let h1 = b.handler("r1", vec![]);
        let h2 = b.handler("r2", vec![]);
        assert_ne!(h1, h2);
    }

    #[test]
    fn event_kind_labels() {
        assert_eq!(UiEventKind::Click.to_string(), "click");
        assert_eq!(UiEventKind::all().len(), 3);
    }
}
