//! Parallel ≡ sequential equivalence suite for the detection pipeline.
//!
//! The `droidracer_core::par` determinism contract says a parallel run is
//! *bit-identical* to the sequential one — same races, same order, same
//! counts, same engine counters, same rendered report — for every thread
//! count. These tests pin that contract across all three parallel entry
//! points (corpus analysis, UI exploration, explorer campaigns) on the full
//! corpus and on proptest-generated random applications, for
//! `n_threads ∈ {1, 2, 8}`.

use proptest::prelude::*;

use droidracer::apps::{analyze_corpus_parallel, corpus, open_source_corpus};
use droidracer::core::{analyze_all, par_map, Analysis, AnalysisBuilder};
use droidracer::explorer::{run_campaign, run_campaign_parallel, ExplorerConfig};
use droidracer::framework::{compile, App, AppBuilder, Stmt, UiEvent, UiEventKind};
use droidracer::sim::{run, RandomScheduler, SimConfig};
use droidracer::trace::Trace;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Full bit-level comparison of two analyses of the same trace.
fn assert_analyses_identical(p: &Analysis, s: &Analysis, context: &str) {
    assert_eq!(p.races(), s.races(), "{context}: race lists differ");
    assert_eq!(
        p.representatives(),
        s.representatives(),
        "{context}: representatives differ"
    );
    assert_eq!(p.counts(), s.counts(), "{context}: category counts differ");
    assert_eq!(
        p.hb().stats(),
        s.hb().stats(),
        "{context}: engine counters differ"
    );
    assert_eq!(
        p.hb().ordered_pairs(),
        s.hb().ordered_pairs(),
        "{context}: relation sizes differ"
    );
    assert_eq!(p.render(), s.render(), "{context}: rendered reports differ");
}

#[test]
fn corpus_analysis_is_identical_across_thread_counts() {
    let entries = corpus();
    let sequential: Vec<_> = entries
        .iter()
        .map(|e| e.analyze().expect("corpus entries analyze"))
        .collect();
    for threads in THREAD_COUNTS {
        let parallel = analyze_corpus_parallel(&entries, threads);
        assert_eq!(parallel.len(), sequential.len());
        for ((entry, p), s) in entries.iter().zip(&parallel).zip(&sequential) {
            let p = p.as_ref().expect("corpus entries analyze");
            let context = format!("{} at {} threads", entry.name, threads);
            assert_eq!(p.stats, s.stats, "{context}: trace stats differ");
            assert_eq!(p.reported, s.reported, "{context}: reported differ");
            assert_eq!(p.verified, s.verified, "{context}: verified differ");
            assert_analyses_identical(&p.analysis, &s.analysis, &context);
        }
    }
}

#[test]
fn exploration_is_identical_across_thread_counts() {
    // Exploration multiplies work by the sequence count; three small
    // open-source apps keep the suite fast while still covering posts,
    // delays and background threads.
    for entry in open_source_corpus().into_iter().take(3) {
        let sequential = entry.explore(2, 12).expect("exploration runs");
        for threads in THREAD_COUNTS {
            let parallel = entry
                .explore_with_threads(2, 12, threads)
                .expect("exploration runs");
            let context = format!("{} at {} threads", entry.name, threads);
            assert_eq!(parallel.tests, sequential.tests, "{context}");
            assert_eq!(parallel.racy_tests, sequential.racy_tests, "{context}");
            assert_eq!(
                parallel.racy_locations, sequential.racy_locations,
                "{context}"
            );
            assert_eq!(parallel.union, sequential.union, "{context}");
        }
    }
}

#[test]
fn campaigns_are_identical_across_thread_counts() {
    let mut b = AppBuilder::new("Campaign");
    let act = b.activity("Main");
    let v = b.var("o", "C.f");
    let w = b.worker("bg", vec![Stmt::Write(v)]);
    let h = b.handler("tick", vec![Stmt::Read(v)]);
    b.on_create(
        act,
        vec![
            Stmt::ForkWorker(w),
            Stmt::Post {
                handler: h,
                delay: None,
                front: false,
            },
        ],
    );
    b.button(act, "go", vec![Stmt::Write(v)]);
    let app = b.finish();
    let config = ExplorerConfig {
        max_depth: 2,
        ..ExplorerConfig::default()
    };
    let sequential = run_campaign(&app, &config).expect("campaign runs");
    for threads in THREAD_COUNTS {
        let parallel = run_campaign_parallel(&app, &config, threads).expect("campaign runs");
        assert_eq!(parallel.db.len(), sequential.db.len());
        for (p, s) in parallel.db.entries().iter().zip(sequential.db.entries()) {
            assert_eq!(p.id, s.id, "{threads} threads");
            assert_eq!(p.events, s.events, "{threads} threads");
            assert_eq!(p.seed, s.seed, "{threads} threads");
            assert_eq!(p.decisions, s.decisions, "{threads} threads");
            assert_eq!(p.completed, s.completed, "{threads} threads");
            assert_eq!(p.trace_len, s.trace_len, "{threads} threads");
        }
        for ((pe, pr), (se, sr)) in parallel.runs.iter().zip(&sequential.runs) {
            assert_eq!(pe, se, "{threads} threads: event sequences differ");
            assert_eq!(
                pr.trace.ops(),
                sr.trace.ops(),
                "{threads} threads: traces differ"
            );
        }
    }
}

/// Derives a small valid app from fuzz bytes: a couple of handlers posting
/// forward, a worker, shared variables, and a click sequence. Construction
/// keeps compilation total, so every generated trace is feasible.
fn build_app(bytes: &[u8]) -> (App, Vec<UiEvent>) {
    let mut pos = 0usize;
    let mut next = |n: usize| -> usize {
        let b = bytes.get(pos).copied().unwrap_or(0) as usize;
        pos += 1;
        if n == 0 {
            0
        } else {
            b % n
        }
    };
    let mut b = AppBuilder::new("ParFuzz");
    let act = b.activity("Main");
    let vars: Vec<_> = (0..1 + next(3))
        .map(|i| b.var("obj", format!("f{i}")))
        .collect();
    let leaf = |next: &mut dyn FnMut(usize) -> usize| -> Stmt {
        let v = vars[next(vars.len())];
        if next(2) == 0 {
            Stmt::Read(v)
        } else {
            Stmt::Write(v)
        }
    };
    let late = b.handler("late", vec![leaf(&mut next), leaf(&mut next)]);
    let mut early_body = vec![leaf(&mut next)];
    if next(2) == 0 {
        early_body.push(Stmt::Post {
            handler: late,
            delay: if next(3) == 0 { Some(20) } else { None },
            front: next(5) == 0,
        });
    }
    let early = b.handler("early", early_body);
    let w = b.worker(
        "bg",
        vec![
            leaf(&mut next),
            Stmt::Post {
                handler: late,
                delay: None,
                front: false,
            },
        ],
    );
    let mut on_create = vec![Stmt::ForkWorker(w), leaf(&mut next)];
    for _ in 0..next(3) {
        on_create.push(Stmt::Post {
            handler: early,
            delay: None,
            front: false,
        });
    }
    b.on_create(act, on_create);
    let btn = b.button(act, "go", vec![leaf(&mut next)]);
    let mut events = Vec::new();
    for _ in 0..next(3) {
        events.push(UiEvent::Widget(btn, UiEventKind::Click));
    }
    (b.finish(), events)
}

fn simulate(bytes: &[u8], seed: u64) -> Trace {
    let (app, events) = build_app(bytes);
    let compiled = compile(&app, &events).expect("fuzzed apps compile");
    let result = run(
        &compiled.program,
        &mut RandomScheduler::new(seed),
        &SimConfig::default(),
    )
    .expect("fuzzed apps run");
    result.trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A batch of random traces analyzed through the pool is bit-identical
    /// to the sequential map, for every thread count.
    #[test]
    fn random_trace_batches_are_identical(
        blobs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 1..8),
        seed in 0u64..1000,
    ) {
        let traces: Vec<Trace> = blobs
            .iter()
            .enumerate()
            .map(|(i, bytes)| simulate(bytes, seed.wrapping_add(i as u64)))
            .collect();
        let sequential: Vec<Analysis> = traces.iter().map(|t| AnalysisBuilder::new().analyze(t).unwrap()).collect();
        for threads in THREAD_COUNTS {
            let parallel = analyze_all(&traces, threads);
            prop_assert_eq!(parallel.len(), sequential.len());
            for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
                assert_analyses_identical(p, s, &format!("trace {i} at {threads} threads"));
            }
        }
    }

    /// `par_map` itself is order-preserving for arbitrary inputs.
    #[test]
    fn par_map_preserves_order(
        items in proptest::collection::vec(any::<u64>(), 0..64),
        threads in 1usize..9,
    ) {
        let expected: Vec<u64> = items.iter().map(|x| x.wrapping_mul(31).wrapping_add(7)).collect();
        let got = par_map(&items, threads, |x| x.wrapping_mul(31).wrapping_add(7));
        prop_assert_eq!(got, expected);
    }
}
