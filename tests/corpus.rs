//! Integration tests over the 15-application corpus: the measured Tables 2
//! and 3 stay pinned to the paper's numbers (experiments E1 and E2).

use droidracer::apps::{corpus, open_source_corpus, verify_race, RaceCategory, VerifyOutcome};

/// Relative tolerance for Table 2's trace statistics.
fn close(measured: usize, paper: usize, tolerance: f64) -> bool {
    if paper == 0 {
        return measured == 0;
    }
    let ratio = measured as f64 / paper as f64;
    (1.0 - tolerance..=1.0 + tolerance).contains(&ratio)
}

#[test]
fn table2_statistics_track_the_paper() {
    for entry in corpus() {
        let trace = entry.generate_trace().expect("entry runs");
        let stats = droidracer::trace::TraceStats::of(&trace);
        let p = &entry.paper;
        assert!(
            close(stats.trace_length, p.trace_length, 0.05),
            "{}: trace length {} vs paper {}",
            entry.name,
            stats.trace_length,
            p.trace_length
        );
        assert!(
            close(stats.fields, p.fields, 0.05),
            "{}: fields {} vs paper {}",
            entry.name,
            stats.fields,
            p.fields
        );
        assert_eq!(
            stats.async_tasks, p.async_tasks,
            "{}: async tasks",
            entry.name
        );
        assert_eq!(
            stats.threads_with_queues, p.threads_with_queues,
            "{}: threads with queues",
            entry.name
        );
        // Threads without queues may exceed the paper's count because the
        // planted races need their own worker threads; never by much.
        assert!(
            stats.threads_without_queues >= p.threads_without_queues.min(2)
                && stats.threads_without_queues <= p.threads_without_queues + 5,
            "{}: threads w/o queues {} vs paper {}",
            entry.name,
            stats.threads_without_queues,
            p.threads_without_queues
        );
    }
}

#[test]
fn table3_reported_counts_match_exactly() {
    for entry in corpus() {
        let report = entry.analyze().expect("entry analyzes");
        for cat in RaceCategory::all() {
            assert_eq!(
                report.reported.get(cat),
                entry.paper.reported.get(cat),
                "{}: {cat} reports",
                entry.name
            );
        }
        assert_eq!(report.unplanned(&entry.truth), 0, "{}: unplanned", entry.name);
        assert!(
            report.misclassified(&entry.truth).is_empty(),
            "{}: misclassified {:?}",
            entry.name,
            report.misclassified(&entry.truth)
        );
    }
}

#[test]
fn table3_true_positives_match_ground_truth() {
    for entry in open_source_corpus() {
        let report = entry.analyze().expect("entry analyzes");
        let verified = entry.paper.verified.expect("open source has Y");
        for cat in RaceCategory::all() {
            // Our unknown-category races are annotated false by design
            // (front-post determinism; see the motif docs).
            let expected = if cat == RaceCategory::Unknown {
                0
            } else {
                verified.get(cat)
            };
            assert_eq!(
                report.verified.get(cat),
                expected,
                "{}: {cat} true positives",
                entry.name
            );
        }
    }
}

#[test]
fn overall_true_positive_rate_matches_the_papers_37_percent() {
    // Paper: "Out of the total 215 reports … 80 (37%) were confirmed to be
    // true positives." Ours: 78 of 215 (36%) — the two missing are Music
    // Player's unknown-category true positives, documented in DESIGN.md.
    let mut reported = 0;
    let mut verified = 0;
    for entry in open_source_corpus() {
        let report = entry.analyze().expect("entry analyzes");
        reported += report.reported.total();
        verified += report.verified.total();
    }
    assert_eq!(reported, 215);
    assert_eq!(verified, 78);
    let rate = verified as f64 / reported as f64;
    assert!((0.30..0.45).contains(&rate), "rate {rate}");
}

#[test]
fn aard_dictionary_race_is_mechanically_verifiable() {
    // The paper's flagship multi-threaded race (the dictionary-loading
    // Service): reordering-based verification confirms it.
    let entry = droidracer::apps::aard_dictionary();
    let field = entry
        .truth
        .iter()
        .find(|(_, t)| t.is_true)
        .map(|(f, _)| f.clone())
        .expect("has a true race");
    let outcome = verify_race(&entry, &field, 60).expect("verification runs");
    assert_eq!(outcome, VerifyOutcome::Reordered);
}

#[test]
fn coverage_triage_collapses_browser_false_positives() {
    // Browser's 64 cross-posted reports are dominated by one untracked
    // custom-queue mechanism (62 false positives); coverage triage reduces
    // the 66 reports to a handful of independent roots.
    let entry = droidracer::apps::browser();
    let trace = entry.generate_trace().expect("runs");
    let analysis = droidracer::core::AnalysisBuilder::new().analyze(&trace).unwrap();
    let report = droidracer::core::race_coverage(&analysis);
    assert_eq!(report.total(), 66);
    assert!(
        report.roots.len() <= 6,
        "expected a handful of roots, got {}",
        report.roots.len()
    );
    assert!(report.covered.len() >= 60);
}

#[test]
fn races_are_prevalent_across_explored_tests() {
    // "For each application, DroidRacer found tests which manifested one or
    // more races" — run the systematic exploration (depth 1) on the small
    // corpus apps and check races keep appearing.
    for entry in [droidracer::apps::aard_dictionary(), droidracer::apps::music_player()] {
        let summary = entry.explore(1, 8).expect("exploration runs");
        assert!(summary.tests > 0, "{}", entry.name);
        assert!(
            summary.racy_tests > 0,
            "{}: no racy tests among {}",
            entry.name,
            summary.tests
        );
        assert!(summary.union.total() > 0);
    }
}

#[test]
fn corpus_traces_are_deterministic() {
    let entry = droidracer::apps::music_player();
    let a = entry.generate_trace().expect("runs");
    let b = entry.generate_trace().expect("runs");
    assert_eq!(a.ops(), b.ops(), "same seed, same trace");
}
