//! Scaling benchmark: how the happens-before closure grows with the number
//! of asynchronous tasks (the dominant factor: the FIFO/NOPRE candidate set
//! is quadratic in tasks-per-looper, and the paper's transitive closure is
//! cubic in graph nodes).
//!
//! Run with `cargo bench -p droidracer-bench --bench scaling`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use droidracer_core::{HappensBefore, HbConfig};
use droidracer_framework::{compile, AppBuilder, Stmt};
use droidracer_sim::{run, RandomScheduler, SimConfig};
use droidracer_trace::Trace;

/// Builds a trace with `tasks` posted runnables plus a background thread
/// racing on one shared field.
fn synthetic_trace(tasks: usize) -> Trace {
    let mut b = AppBuilder::new("Scaling");
    let act = b.activity("Main");
    let shared = b.var("o", "C.shared");
    let private = b.var("o", "C.private");
    let w = b.worker("bg", vec![Stmt::Write(shared)]);
    let r = b.handler("tick", vec![Stmt::Read(private), Stmt::Write(private)]);
    let mut body = vec![Stmt::ForkWorker(w), Stmt::Read(shared)];
    for _ in 0..tasks {
        body.push(Stmt::Post {
            handler: r,
            delay: None,
            front: false,
        });
    }
    b.on_create(act, body);
    let compiled = compile(&b.finish(), &[]).expect("compiles");
    let result = run(
        &compiled.program,
        &mut RandomScheduler::new(1),
        &SimConfig::default(),
    )
    .expect("runs");
    assert!(result.completed);
    result.trace
}

fn bench_task_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure_vs_task_count");
    group.sample_size(10);
    for tasks in [50usize, 100, 200, 400] {
        let trace = synthetic_trace(tasks);
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &trace, |b, t| {
            b.iter(|| black_box(HappensBefore::compute(t, HbConfig::new()).ordered_pairs()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_task_scaling);
criterion_main!(benches);
