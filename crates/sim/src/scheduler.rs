//! Scheduling strategies for the simulator.
//!
//! At every step the runtime enumerates the set of enabled [`Choice`]s in a
//! deterministic order and asks the scheduler to pick one. Recording the
//! picked indices yields a *decision vector* that the
//! [`ScriptedScheduler`] can replay exactly — the mechanism behind the UI
//! Explorer's backtracking and "replay events consistently across testing
//! runs" (§5).

use droidracer_trace::{TaskId, ThreadId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// One enabled scheduling alternative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Start a created thread (emits `threadinit`).
    StartThread(ThreadId),
    /// Execute the next statement of a running thread (or of the task it is
    /// executing).
    Step(ThreadId),
    /// Have the idle looper `thread` dequeue and begin `task`.
    BeginTask {
        /// The looper thread.
        thread: ThreadId,
        /// The eligible task instance.
        task: TaskId,
    },
    /// Have the idle looper perform its next pending environment-event
    /// injection (a UI event firing).
    InjectEvent(ThreadId),
    /// Have the looper run its next registered idle handler (its queue has
    /// drained).
    RunIdle(ThreadId),
}

impl Choice {
    /// The thread this choice advances.
    pub fn thread(&self) -> ThreadId {
        match *self {
            Choice::StartThread(t)
            | Choice::Step(t)
            | Choice::BeginTask { thread: t, .. }
            | Choice::InjectEvent(t)
            | Choice::RunIdle(t) => t,
        }
    }
}

/// Picks among enabled choices.
///
/// Implementations must return an index `< choices.len()`; the runtime
/// guarantees `choices` is non-empty.
pub trait Scheduler {
    /// Chooses the index of the next step.
    fn choose(&mut self, choices: &[Choice]) -> usize;
}

/// Deterministic round-robin over threads: repeatedly advances the next
/// thread (by id) after the previously scheduled one.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinScheduler {
    last: Option<ThreadId>,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn choose(&mut self, choices: &[Choice]) -> usize {
        let pick = match self.last {
            None => 0,
            Some(last) => {
                // First choice on a thread strictly greater than `last`,
                // wrapping around.
                choices
                    .iter()
                    .position(|c| c.thread() > last)
                    .unwrap_or(0)
            }
        };
        self.last = Some(choices[pick].thread());
        pick
    }
}

/// Uniformly random choice from a seeded generator; the same seed always
/// produces the same schedule.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: SmallRng,
}

impl RandomScheduler {
    /// Creates a scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        Self::from_rng(SmallRng::seed_from_u64(seed))
    }

    /// Creates a scheduler from an existing generator, so a harness can
    /// thread one master [`SmallRng`] through every random strategy and
    /// reproduce a whole run byte-identically from a single seed.
    pub fn from_rng(rng: SmallRng) -> Self {
        RandomScheduler { rng }
    }
}

impl Scheduler for RandomScheduler {
    fn choose(&mut self, choices: &[Choice]) -> usize {
        self.rng.random_range(0..choices.len())
    }
}

/// Randomly schedules while *stalling* one thread: the stalled thread only
/// runs when nothing else can. This is the simulator analogue of parking a
/// thread on a debugger breakpoint — the paper validates multi-threaded and
/// cross-posted races by "stalling certain threads using breakpoints,
/// giving others the opportunity to progress" (§6).
#[derive(Debug, Clone)]
pub struct StallScheduler {
    stalled: ThreadId,
    inner: RandomScheduler,
}

impl StallScheduler {
    /// Creates a scheduler that starves `stalled` whenever possible.
    pub fn new(stalled: ThreadId, seed: u64) -> Self {
        Self::from_rng(stalled, SmallRng::seed_from_u64(seed))
    }

    /// Creates a stalling scheduler from an existing generator (see
    /// [`RandomScheduler::from_rng`]).
    pub fn from_rng(stalled: ThreadId, rng: SmallRng) -> Self {
        StallScheduler {
            stalled,
            inner: RandomScheduler::from_rng(rng),
        }
    }
}

impl Scheduler for StallScheduler {
    fn choose(&mut self, choices: &[Choice]) -> usize {
        let unstalled: Vec<usize> = choices
            .iter()
            .enumerate()
            .filter(|(_, c)| c.thread() != self.stalled)
            .map(|(i, _)| i)
            .collect();
        if unstalled.is_empty() {
            self.inner.choose(choices)
        } else {
            let shadow: Vec<Choice> = unstalled.iter().map(|&i| choices[i]).collect();
            unstalled[self.inner.choose(&shadow)]
        }
    }
}

/// Replays a recorded decision vector, then falls back to round-robin when
/// the script runs out (used for replay and systematic backtracking).
#[derive(Debug, Clone)]
pub struct ScriptedScheduler {
    script: Vec<usize>,
    next: usize,
    fallback: RoundRobinScheduler,
}

impl ScriptedScheduler {
    /// Creates a scheduler replaying `script`.
    pub fn new(script: Vec<usize>) -> Self {
        ScriptedScheduler {
            script,
            next: 0,
            fallback: RoundRobinScheduler::new(),
        }
    }

    /// How many scripted decisions have been consumed.
    pub fn consumed(&self) -> usize {
        self.next
    }
}

impl Scheduler for ScriptedScheduler {
    fn choose(&mut self, choices: &[Choice]) -> usize {
        if let Some(&d) = self.script.get(self.next) {
            self.next += 1;
            if d < choices.len() {
                return d;
            }
            // A stale script entry (diverged replay): clamp into range.
            return d % choices.len();
        }
        self.fallback.choose(choices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn choices(ids: &[u32]) -> Vec<Choice> {
        ids.iter().map(|&i| Choice::Step(ThreadId(i))).collect()
    }

    #[test]
    fn round_robin_rotates_threads() {
        let mut s = RoundRobinScheduler::new();
        let cs = choices(&[0, 1, 2]);
        assert_eq!(s.choose(&cs), 0); // t0
        assert_eq!(s.choose(&cs), 1); // t1
        assert_eq!(s.choose(&cs), 2); // t2
        assert_eq!(s.choose(&cs), 0); // wraps to t0
    }

    #[test]
    fn round_robin_skips_missing_threads() {
        let mut s = RoundRobinScheduler::new();
        assert_eq!(s.choose(&choices(&[0, 2])), 0);
        assert_eq!(s.choose(&choices(&[0, 2])), 1); // t2 (next after t0)
        assert_eq!(s.choose(&choices(&[0, 1])), 0); // wraps
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let cs = choices(&[0, 1, 2, 3]);
        let run = |seed| {
            let mut s = RandomScheduler::new(seed);
            (0..32).map(|_| s.choose(&cs)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn from_rng_matches_seeded_construction() {
        let cs = choices(&[0, 1, 2, 3]);
        let mut seeded = RandomScheduler::new(99);
        let mut threaded = RandomScheduler::from_rng(SmallRng::seed_from_u64(99));
        for _ in 0..32 {
            assert_eq!(seeded.choose(&cs), threaded.choose(&cs));
        }
    }

    #[test]
    fn random_stays_in_range() {
        let mut s = RandomScheduler::new(42);
        for n in 1..6 {
            let cs = choices(&(0..n).collect::<Vec<_>>());
            for _ in 0..50 {
                assert!(s.choose(&cs) < cs.len());
            }
        }
    }

    #[test]
    fn stall_scheduler_starves_the_stalled_thread() {
        let mut s = StallScheduler::new(ThreadId(1), 3);
        let cs = choices(&[0, 1, 2]);
        for _ in 0..50 {
            let pick = s.choose(&cs);
            assert_ne!(cs[pick].thread(), ThreadId(1));
        }
        // When only the stalled thread can run, it runs.
        let only = choices(&[1]);
        assert_eq!(s.choose(&only), 0);
    }

    #[test]
    fn scripted_replays_then_falls_back() {
        let mut s = ScriptedScheduler::new(vec![2, 0]);
        let cs = choices(&[0, 1, 2]);
        assert_eq!(s.choose(&cs), 2);
        assert_eq!(s.choose(&cs), 0);
        assert_eq!(s.consumed(), 2);
        // fallback: round-robin
        let _ = s.choose(&cs);
    }

    #[test]
    fn scripted_clamps_out_of_range_entries() {
        let mut s = ScriptedScheduler::new(vec![9]);
        let cs = choices(&[0, 1]);
        let pick = s.choose(&cs);
        assert!(pick < 2);
    }

    #[test]
    fn choice_thread_accessor() {
        assert_eq!(Choice::StartThread(ThreadId(3)).thread(), ThreadId(3));
        assert_eq!(
            Choice::BeginTask {
                thread: ThreadId(1),
                task: TaskId(0)
            }
            .thread(),
            ThreadId(1)
        );
        assert_eq!(Choice::InjectEvent(ThreadId(2)).thread(), ThreadId(2));
    }
}
