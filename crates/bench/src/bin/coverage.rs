//! Race-coverage triage over the corpus — the §6 suggestion ("ad hoc
//! synchronization … can potentially be addressed using the notion of race
//! coverage [Raychev et al.]") made concrete: how many of each app's
//! reports are independent root causes?
//!
//! Run with `cargo run --release -p droidracer-bench --bin coverage`.

use droidracer_apps::open_source_corpus;
use droidracer_bench::TextTable;
use droidracer_core::{race_coverage, AnalysisBuilder};

fn main() {
    let mut table = TextTable::new(["Application", "Reports", "Root causes", "Covered"]);
    println!("Race-coverage triage (reports → independent root causes)\n");
    for entry in open_source_corpus() {
        let trace = match entry.generate_trace() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: {e}", entry.name);
                continue;
            }
        };
        let analysis = AnalysisBuilder::new().analyze(&trace).unwrap();
        let report = race_coverage(&analysis);
        table.row([
            entry.name.to_owned(),
            report.total().to_string(),
            report.roots.len().to_string(),
            report.covered.len().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Races guarded by one hidden mechanism collapse behind its guard race\n\
         (e.g. Browser's 62 custom-queue false positives reduce to one root),\n\
         focusing triage on independent causes."
    );
}
