//! Trace statistics in the shape of Table 2 of the paper.

use std::collections::HashSet;
use std::fmt;

use crate::ids::ThreadId;
use crate::op::OpKind;
use crate::trace::Trace;

/// The per-application statistics reported in Table 2: trace length, distinct
/// fields accessed, thread counts split by queue ownership, and the number of
/// asynchronous tasks executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Number of core-language operations in the trace.
    pub trace_length: usize,
    /// Distinct *fields* accessed (a field accessed through several objects
    /// counts once, matching the paper's "Fields" column).
    pub fields: usize,
    /// Application threads without task queues (binder/system threads are
    /// excluded, as in Table 2).
    pub threads_without_queues: usize,
    /// Application threads with task queues (includes the main thread).
    pub threads_with_queues: usize,
    /// Number of asynchronous tasks that began executing.
    pub async_tasks: usize,
    /// Distinct memory locations (object, field) accessed; reported in prose
    /// ("the applications accessed thousands of memory locations").
    pub memory_locations: usize,
}

impl TraceStats {
    /// Computes statistics for `trace`.
    pub fn of(trace: &Trace) -> Self {
        let mut fields = HashSet::new();
        let mut locations = HashSet::new();
        let mut seen_threads: HashSet<ThreadId> = HashSet::new();
        let mut queued_threads: HashSet<ThreadId> = HashSet::new();
        let mut async_tasks = 0usize;
        for op in trace.ops() {
            seen_threads.insert(op.thread);
            match op.kind {
                OpKind::Read { loc } | OpKind::Write { loc } => {
                    fields.insert(loc.field);
                    locations.insert(loc);
                }
                OpKind::AttachQ => {
                    queued_threads.insert(op.thread);
                }
                OpKind::Begin { .. } => async_tasks += 1,
                OpKind::Fork { child } => {
                    seen_threads.insert(child);
                }
                _ => {}
            }
        }
        let counts = |t: &ThreadId| {
            trace
                .names()
                .thread(*t)
                .map(|d| d.kind.counts_in_stats())
                .unwrap_or(true)
        };
        let with_q = queued_threads.iter().filter(|t| counts(t)).count();
        let all = seen_threads.iter().filter(|t| counts(t)).count();
        TraceStats {
            trace_length: trace.len(),
            fields: fields.len(),
            threads_without_queues: all.saturating_sub(with_q),
            threads_with_queues: with_q,
            async_tasks,
            memory_locations: locations.len(),
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "len={} fields={} threads(w/o Q)={} threads(w/ Q)={} async={} locs={}",
            self.trace_length,
            self.fields,
            self.threads_without_queues,
            self.threads_with_queues,
            self.async_tasks,
            self.memory_locations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::ids::ThreadKind;

    #[test]
    fn stats_count_fields_once_across_objects() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let o1 = b.names().clone(); // silence unused warnings pattern
        drop(o1);
        let obj1 = b.loc("obj1", "C.f");
        let obj2 = b.loc("obj2", "C.f");
        b.thread_init(main);
        b.write(main, obj1);
        b.write(main, obj2);
        let stats = TraceStats::of(&b.finish());
        assert_eq!(stats.fields, 1);
        assert_eq!(stats.memory_locations, 2);
        assert_eq!(stats.trace_length, 3);
    }

    #[test]
    fn stats_split_threads_by_queue_and_exclude_binder() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let binder = b.thread("binder", ThreadKind::Binder, true);
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.thread_init(binder);
        b.fork(main, bg);
        b.thread_init(bg);
        let stats = TraceStats::of(&b.finish());
        assert_eq!(stats.threads_with_queues, 1); // main
        assert_eq!(stats.threads_without_queues, 1); // bg; binder excluded
    }

    #[test]
    fn stats_count_begun_tasks() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let a = b.task("A");
        let c = b.task("B");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.post(main, a, main);
        b.post(main, c, main); // posted but never begun
        b.begin(main, a);
        b.end(main, a);
        let stats = TraceStats::of(&b.finish());
        assert_eq!(stats.async_tasks, 1);
    }

    #[test]
    fn display_is_nonempty() {
        let stats = TraceStats::default();
        assert!(!stats.to_string().is_empty());
    }
}
