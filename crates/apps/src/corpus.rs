//! The corpus driver: entries, expected paper numbers, and the
//! run-and-analyze pipeline reproducing Tables 2 and 3.

use std::error::Error;
use std::fmt;

use std::collections::BTreeSet;

use droidracer_core::{
    par_map, par_map_profiled, par_try_map, Analysis, AnalysisBuilder, AnalysisError, Budget,
    CategoryCounts, ItemError, QuarantineCause, Quarantined, RaceCategory,
};
use droidracer_obs::SpanRecord;
use droidracer_explorer::{enumerate_sequences, ExplorerConfig};
use droidracer_framework::{compile, App, CompileError, UiEvent};
use droidracer_sim::{run, RandomScheduler, SimConfig, SimError};
use droidracer_trace::{MemLoc, Trace, TraceStats};

use crate::motifs::GroundTruth;
use crate::strip::strip_untracked;

/// The numbers the paper reports for one application (Tables 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PaperRow {
    /// Lines of code (open-source apps only).
    pub loc: Option<u32>,
    /// Trace length (Table 2).
    pub trace_length: usize,
    /// Distinct fields accessed (Table 2).
    pub fields: usize,
    /// Threads without task queues (Table 2).
    pub threads_without_queues: usize,
    /// Threads with task queues (Table 2).
    pub threads_with_queues: usize,
    /// Asynchronous tasks (Table 2).
    pub async_tasks: usize,
    /// Races reported per category (Table 3, the `X` of `X(Y)`).
    pub reported: CategoryCounts,
    /// Verified true positives per category (Table 3, the `Y`), known for
    /// the open-source applications only.
    pub verified: Option<CategoryCounts>,
}

/// One synthetic application of the corpus.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Application name, matching Table 2.
    pub name: &'static str,
    /// Whether the original is open source (Table 2's horizontal rule).
    pub open_source: bool,
    /// The framework-level app model.
    pub app: App,
    /// The representative UI event sequence (the paper drives 1–7 events).
    pub events: Vec<UiEvent>,
    /// Scheduler seed for the representative run.
    pub seed: u64,
    /// The numbers the paper reports.
    pub paper: PaperRow,
    /// Planted-race ground truth.
    pub truth: GroundTruth,
}

/// A corpus failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusError {
    /// The app model did not compile.
    Compile(CompileError),
    /// The simulation failed.
    Sim(SimError),
    /// The run did not reach quiescence within the step budget.
    Incomplete {
        /// The app that stalled.
        name: &'static str,
    },
    /// The analysis session failed (validation or budget exhaustion).
    Analysis(AnalysisError),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Compile(e) => write!(f, "compile error: {e}"),
            CorpusError::Sim(e) => write!(f, "simulation error: {e}"),
            CorpusError::Incomplete { name } => write!(f, "run of {name} did not complete"),
            CorpusError::Analysis(e) => write!(f, "analysis error: {e}"),
        }
    }
}

impl Error for CorpusError {}

impl From<AnalysisError> for CorpusError {
    fn from(e: AnalysisError) -> Self {
        CorpusError::Analysis(e)
    }
}

impl From<CompileError> for CorpusError {
    fn from(e: CompileError) -> Self {
        CorpusError::Compile(e)
    }
}

impl From<SimError> for CorpusError {
    fn from(e: SimError) -> Self {
        CorpusError::Sim(e)
    }
}

impl CorpusEntry {
    /// Runs the representative test: compile, simulate under the entry's
    /// seed, and strip untracked operations — yielding the trace the Race
    /// Detector analyzes.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError`] if compilation or simulation fails or the run
    /// stalls.
    pub fn generate_trace(&self) -> Result<Trace, CorpusError> {
        let compiled = compile(&self.app, &self.events)?;
        let result = run(
            &compiled.program,
            &mut RandomScheduler::new(self.seed),
            &SimConfig { max_steps: 600_000 },
        )?;
        if !result.completed {
            return Err(CorpusError::Incomplete { name: self.name });
        }
        Ok(strip_untracked(&result.trace))
    }

    /// Full pipeline: trace generation + happens-before analysis + race
    /// classification + ground-truth matching.
    ///
    /// # Errors
    ///
    /// See [`CorpusEntry::generate_trace`].
    pub fn analyze(&self) -> Result<EntryReport, CorpusError> {
        self.analyze_with_budget(&Budget::unlimited())
    }

    /// Like [`CorpusEntry::analyze`] but under a resource [`Budget`]: an
    /// entry that blows its budget fails with
    /// [`CorpusError::Analysis`]`(`[`AnalysisError::BudgetExhausted`]`)`
    /// instead of hanging or exhausting memory.
    ///
    /// # Errors
    ///
    /// See [`CorpusEntry::generate_trace`], plus budget exhaustion.
    pub fn analyze_with_budget(&self, budget: &Budget) -> Result<EntryReport, CorpusError> {
        let trace = self.generate_trace()?;
        let stats = TraceStats::of(&trace);
        let analysis = AnalysisBuilder::new().budget(*budget).analyze(&trace)?;
        Ok(self.entry_report(stats, analysis))
    }

    /// Matches an analysis against the entry's ground truth.
    fn entry_report(&self, stats: TraceStats, analysis: Analysis) -> EntryReport {
        let mut reported = CategoryCounts::default();
        let mut verified = CategoryCounts::default();
        let names = analysis.trace().names();
        for cr in analysis.representatives() {
            reported.add(cr.category, 1);
            let field = names.field_name(cr.race.loc.field);
            if self.truth.get(&field).is_some_and(|t| t.is_true) {
                verified.add(cr.category, 1);
            }
        }
        EntryReport {
            stats,
            reported,
            verified,
            analysis,
        }
    }
}

/// Runs [`CorpusEntry::analyze`] for every entry on `threads` workers,
/// returning reports in corpus order.
///
/// Each entry's pipeline (compile → simulate → strip → analyze) touches
/// only its own data, so the fan-out is safe; the merge is deterministic —
/// the result at position `i` is always entry `i`'s report, identical to
/// what the sequential loop produces (see `droidracer_core::par`).
/// `threads <= 1` degenerates to the sequential loop itself.
pub fn analyze_corpus_parallel(
    entries: &[CorpusEntry],
    threads: usize,
) -> Vec<Result<EntryReport, CorpusError>> {
    par_map(entries, threads, CorpusEntry::analyze)
}

/// Fault-isolated corpus run: like [`analyze_corpus_parallel`], but every
/// entry runs under `budget` and inside a panic boundary
/// ([`droidracer_core::par_try_map`]). A panicking, erroring, or
/// budget-blown entry becomes a [`Quarantined`] verdict at its position;
/// the sibling entries' reports are bit-identical to a run without the
/// faulty entry.
pub fn analyze_corpus_isolated(
    entries: &[CorpusEntry],
    threads: usize,
    budget: &Budget,
) -> Vec<Result<EntryReport, Quarantined>> {
    par_try_map(entries, threads, |entry| entry.analyze_with_budget(budget))
        .into_iter()
        .zip(entries)
        .map(|(result, entry)| result.map_err(|err| quarantine(entry.name, err)))
        .collect()
}

/// Maps a per-item fan-out failure to its quarantine verdict.
fn quarantine(input: &str, err: ItemError<CorpusError>) -> Quarantined {
    let (cause, payload) = match err {
        ItemError::Panic(msg) => (QuarantineCause::Panic, msg),
        ItemError::Err(CorpusError::Analysis(AnalysisError::BudgetExhausted(e))) => {
            (QuarantineCause::BudgetExhausted(e.reason), e.to_string())
        }
        ItemError::Err(e) => (QuarantineCause::Error, e.to_string()),
    };
    Quarantined {
        input: input.to_owned(),
        cause,
        payload,
    }
}

/// Like [`analyze_corpus_parallel`], additionally returning the campaign's
/// span tree: a root `corpus` span with one child per entry (in corpus
/// order for every thread count), each wrapping the entry's `generate`
/// span and the full per-phase `analysis` subtree of its analysis session.
pub fn analyze_corpus_profiled(
    entries: &[CorpusEntry],
    threads: usize,
) -> (Vec<Result<EntryReport, CorpusError>>, SpanRecord) {
    let (results, mut span) = par_map_profiled(entries, threads, "corpus", |entry, rec| {
        rec.start(entry.name);
        rec.start("generate");
        let trace = entry.generate_trace();
        rec.end();
        let report = trace.map(|trace| {
            let stats = TraceStats::of(&trace);
            // invariant: a default session (no validation, unlimited
            // budget) cannot fail.
            let analysis = AnalysisBuilder::new()
                .clock_origin(rec.origin())
                .analyze(&trace)
                .expect("infallible without validation");
            rec.adopt(analysis.spans().clone());
            entry.entry_report(stats, analysis)
        });
        rec.end();
        report
    });
    // The generic fan-out labels children `corpus[i]`; the entry name the
    // worker recorded underneath is the useful label — hoist it.
    for child in &mut span.children {
        if let Some(named) = child.children.first() {
            child.name = named.name.clone();
            let inner = std::mem::take(&mut child.children);
            child.children = inner.into_iter().next().map(|s| s.children).unwrap_or_default();
        }
    }
    (results, span)
}

/// Summary of a full exploration of one app: every UI event sequence up to
/// the depth bound executed and analyzed — the paper's per-application
/// testing campaign ("for each application, DroidRacer found tests which
/// manifested one or more races").
#[derive(Debug, Clone)]
pub struct ExplorationSummary {
    /// Number of event sequences executed.
    pub tests: usize,
    /// How many manifested at least one race.
    pub racy_tests: usize,
    /// Distinct racy memory locations across all tests.
    pub racy_locations: usize,
    /// Union of representative race counts per category across tests
    /// (deduplicated by location).
    pub union: CategoryCounts,
}

impl CorpusEntry {
    /// Runs the full pipeline — systematic UI exploration, trace generation,
    /// stripping, happens-before analysis — over every event sequence up to
    /// `depth` (capped at `max_sequences`).
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError`] if any sequence fails to compile or simulate.
    pub fn explore(&self, depth: usize, max_sequences: usize) -> Result<ExplorationSummary, CorpusError> {
        self.explore_with_threads(depth, max_sequences, 1)
    }

    /// Like [`CorpusEntry::explore`], fanning the per-sequence pipeline out
    /// over `threads` workers. Each sequence keeps the seed the sequential
    /// loop would assign it (its enumeration index), and the summary is
    /// folded in enumeration order, so the result is identical for every
    /// thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError`] if any sequence fails to compile or simulate.
    pub fn explore_with_threads(
        &self,
        depth: usize,
        max_sequences: usize,
        threads: usize,
    ) -> Result<ExplorationSummary, CorpusError> {
        self.explore_profiled(depth, max_sequences, threads)
            .map(|(summary, _)| summary)
    }

    /// Like [`CorpusEntry::explore_with_threads`], additionally returning
    /// the campaign's span tree: a root `explore` span with one
    /// `explore[i]` child per sequence (in enumeration order for every
    /// thread count), each wrapping the sequence's full analysis subtree.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError`] if any sequence fails to compile or simulate.
    pub fn explore_profiled(
        &self,
        depth: usize,
        max_sequences: usize,
        threads: usize,
    ) -> Result<(ExplorationSummary, SpanRecord), CorpusError> {
        let config = ExplorerConfig {
            max_depth: depth,
            max_sequences,
            seed: self.seed,
            max_steps: 600_000,
        };
        let sequences: Vec<(usize, Vec<UiEvent>)> = enumerate_sequences(&self.app, &config)
            .into_iter()
            .enumerate()
            .collect();
        type TestOutcome = Result<(bool, Vec<(MemLoc, RaceCategory)>), CorpusError>;
        let (per_test, span) =
            par_map_profiled(&sequences, threads, "explore", |(i, events), rec| -> TestOutcome {
                rec.start("simulate");
                let outcome = compile(&self.app, events).map_err(CorpusError::from).and_then(|c| {
                    run(
                        &c.program,
                        &mut RandomScheduler::new(self.seed.wrapping_add(*i as u64)),
                        &SimConfig { max_steps: 600_000 },
                    )
                    .map_err(CorpusError::from)
                });
                rec.end();
                let result = outcome?;
                let trace = strip_untracked(&result.trace);
                // invariant: a default session (no validation, unlimited
                // budget) cannot fail.
                let analysis = AnalysisBuilder::new()
                    .clock_origin(rec.origin())
                    .analyze(&trace)
                    .expect("infallible without validation");
                rec.adopt(analysis.spans().clone());
                rec.counter("races", analysis.races().len() as u64);
                let pairs: Vec<(MemLoc, RaceCategory)> = analysis
                    .representatives()
                    .iter()
                    .map(|cr| (cr.race.loc, cr.category))
                    .collect();
                Ok((!analysis.races().is_empty(), pairs))
            });
        let mut tests = 0;
        let mut racy_tests = 0;
        let mut seen: BTreeSet<(MemLoc, RaceCategory)> = BTreeSet::new();
        for result in per_test {
            let (racy, pairs) = result?;
            tests += 1;
            if racy {
                racy_tests += 1;
            }
            seen.extend(pairs);
        }
        let mut union = CategoryCounts::default();
        let mut locs = BTreeSet::new();
        for (loc, cat) in &seen {
            union.add(*cat, 1);
            locs.insert(*loc);
        }
        Ok((
            ExplorationSummary {
                tests,
                racy_tests,
                racy_locations: locs.len(),
                union,
            },
            span,
        ))
    }
}

/// Measured results for one corpus entry.
#[derive(Debug, Clone)]
pub struct EntryReport {
    /// Table 2-style trace statistics.
    pub stats: TraceStats,
    /// Races reported per category (Table 3 `X`).
    pub reported: CategoryCounts,
    /// Reported races whose planted ground truth is a real race (`Y`).
    pub verified: CategoryCounts,
    /// The full analysis (trace, happens-before, races).
    pub analysis: Analysis,
}

impl EntryReport {
    /// Reported races whose field has no ground-truth annotation at all
    /// (unplanned reports — should be zero for a well-formed entry).
    pub fn unplanned(&self, truth: &GroundTruth) -> usize {
        let names = self.analysis.trace().names();
        self.analysis
            .representatives()
            .iter()
            .filter(|cr| !truth.contains_key(&names.field_name(cr.race.loc.field)))
            .count()
    }

    /// Reported representatives whose measured category disagrees with the
    /// planted one (diagnostic).
    pub fn misclassified(&self, truth: &GroundTruth) -> Vec<(String, RaceCategory, RaceCategory)> {
        let names = self.analysis.trace().names();
        self.analysis
            .representatives()
            .iter()
            .filter_map(|cr| {
                let field = names.field_name(cr.race.loc.field);
                let planted = truth.get(&field)?;
                (planted.category != cr.category)
                    .then_some((field, planted.category, cr.category))
            })
            .collect()
    }
}
