//! A blocking client for the analysis daemon, usable anywhere an
//! [`AnalysisService`] is expected.
//!
//! The client frames requests, unframes responses, and converts between
//! the wire's text encodings and the `core` types. One client owns one
//! tenant identity and (at most) one live connection; requests on it are
//! strictly sequential (the protocol has no pipelining).
//!
//! Resilience is opt-in via [`RetryPolicy`]: with a policy attached the
//! client reconnects and resubmits on transport failures (torn frames,
//! resets, timeouts) and backs off on [`Response::Overloaded`], using
//! seeded exponential backoff with jitter so every retry schedule is
//! replayable. Resubmission is always safe — jobs are keyed server-side
//! by content digest, so a retry after a lost response is answered from
//! the cache instead of re-running the analysis.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use droidracer_core::{AnalysisService, JobReport, JobSpec};

use crate::protocol::{read_frame, write_frame, Request, Response};

trait Conn: Read + Write + Send {
    /// Applies `timeout` to both reads and writes (`None` blocks forever).
    fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)?;
        self.set_write_timeout(timeout)
    }
}

impl Conn for UnixStream {
    fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)?;
        self.set_write_timeout(timeout)
    }
}

/// Where the client (re)connects to.
#[derive(Debug, Clone)]
enum Addr {
    Tcp(String),
    Unix(PathBuf),
}

/// How aggressively the client retries transport failures and overload
/// shedding. All delays are deterministic given `seed` — replaying a
/// failure replays the exact backoff schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// First backoff; doubles per retry (before jitter).
    pub base_backoff_ms: u64,
    /// Cap on any single backoff sleep.
    pub max_backoff_ms: u64,
    /// Overall wall-clock budget across all attempts of one operation;
    /// `None` bounds only by `max_retries`.
    pub deadline_ms: Option<u64>,
    /// TCP connect timeout; `None` uses the OS default.
    pub connect_timeout_ms: Option<u64>,
    /// Per-read/per-write socket timeout; `None` blocks forever.
    pub io_timeout_ms: Option<u64>,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries, no timeouts: every failure surfaces immediately. This
    /// is the default — resilience is opt-in.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            deadline_ms: None,
            connect_timeout_ms: None,
            io_timeout_ms: None,
            seed: 0,
        }
    }

    /// A sensible production policy: 3 retries, 25 ms base backoff capped
    /// at 1 s, 5 s connect and 30 s I/O timeouts.
    pub fn standard() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 25,
            max_backoff_ms: 1_000,
            deadline_ms: None,
            connect_timeout_ms: Some(5_000),
            io_timeout_ms: Some(30_000),
            seed: 0x5eed_cafe,
        }
    }

    /// The jittered backoff before retry number `attempt` (1-based):
    /// exponential in `attempt`, capped, then scaled into the upper half
    /// of the window by `jitter` (an arbitrary 64-bit random value).
    fn backoff(&self, attempt: u32, jitter: u64) -> Duration {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
            .min(self.max_backoff_ms.max(self.base_backoff_ms));
        // Jitter into [exp/2, exp] so synchronized clients desynchronize.
        let half = exp / 2;
        Duration::from_millis(half + jitter % (exp - half + 1).max(1))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// Lifetime counters for one [`Client`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Attempts retried (reconnects after transport failure + overload
    /// backoffs). 0 on a healthy path.
    pub retries: u64,
    /// Operations abandoned with the retry budget exhausted.
    pub gave_up: u64,
}

/// A connected client bound to one tenant.
pub struct Client {
    conn: Option<Box<dyn Conn>>,
    addr: Addr,
    tenant: String,
    policy: RetryPolicy,
    rng: u64,
    stats: ClientStats,
}

/// The server answered a job request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submission {
    /// The job ran (or was answered from cache).
    Done {
        /// Whether the report came from the content-addressed cache.
        cache_hit: bool,
        /// The report.
        report: JobReport,
    },
    /// The server refused the request before running it.
    Rejected {
        /// Why.
        reason: String,
    },
    /// The shard queue was full and the retry budget (if any) ran out
    /// backing off. Resubmitting later is always safe.
    Overloaded {
        /// The server's final backoff hint.
        retry_after_ms: u64,
    },
}

impl Submission {
    /// The report of a completed job, or `None` if rejected/shed.
    pub fn report(&self) -> Option<&JobReport> {
        match self {
            Submission::Done { report, .. } => Some(report),
            Submission::Rejected { .. } | Submission::Overloaded { .. } => None,
        }
    }

    /// Whether the submission was answered from the cache.
    pub fn cache_hit(&self) -> bool {
        matches!(self, Submission::Done { cache_hit: true, .. })
    }
}

/// Whether a transport error is worth a reconnect-and-resubmit: anything
/// that smells like the connection (not the payload) failed. Decode errors
/// (`InvalidData`) are *not* retried — a server speaking garbage is a bug,
/// and retrying would mask it.
fn retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
    )
}

impl Client {
    /// Connects over TCP, acting as `tenant`.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_tcp(addr: &str, tenant: impl Into<String>) -> io::Result<Client> {
        let mut client = Client {
            conn: None,
            addr: Addr::Tcp(addr.to_owned()),
            tenant: tenant.into(),
            policy: RetryPolicy::none(),
            rng: 0x9e37_79b9_7f4a_7c15,
            stats: ClientStats::default(),
        };
        client.reconnect()?;
        Ok(client)
    }

    /// Connects over a Unix socket, acting as `tenant`.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_unix(path: &Path, tenant: impl Into<String>) -> io::Result<Client> {
        let mut client = Client {
            conn: None,
            addr: Addr::Unix(path.to_owned()),
            tenant: tenant.into(),
            policy: RetryPolicy::none(),
            rng: 0x9e37_79b9_7f4a_7c15,
            stats: ClientStats::default(),
        };
        client.reconnect()?;
        Ok(client)
    }

    /// A TCP client that does not dial until the first operation, so the
    /// initial connect runs *inside* the retry loop: with a policy
    /// attached, a server that is briefly down or still restarting costs
    /// backoff, not an immediate failure.
    pub fn lazy_tcp(addr: &str, tenant: impl Into<String>) -> Client {
        Client {
            conn: None,
            addr: Addr::Tcp(addr.to_owned()),
            tenant: tenant.into(),
            policy: RetryPolicy::none(),
            rng: 0x9e37_79b9_7f4a_7c15,
            stats: ClientStats::default(),
        }
    }

    /// [`Client::lazy_tcp`] over a Unix socket.
    pub fn lazy_unix(path: &Path, tenant: impl Into<String>) -> Client {
        Client {
            conn: None,
            addr: Addr::Unix(path.to_owned()),
            tenant: tenant.into(),
            policy: RetryPolicy::none(),
            rng: 0x9e37_79b9_7f4a_7c15,
            stats: ClientStats::default(),
        }
    }

    /// Attaches a retry policy (builder-style). Applies the policy's I/O
    /// timeout to the already-open connection.
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> io::Result<Self> {
        self.rng = policy.seed | 1;
        if let Some(conn) = &self.conn {
            conn.set_io_timeout(policy.io_timeout_ms.map(Duration::from_millis))?;
        }
        self.policy = policy;
        Ok(self)
    }

    /// Retry/abandon counters accumulated by this client.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The next jitter value (xorshift64*; never zero-locked because the
    /// state is seeded odd).
    fn jitter(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Drops any existing connection and dials a fresh one, applying the
    /// policy's connect and I/O timeouts.
    fn reconnect(&mut self) -> io::Result<()> {
        self.conn = None;
        let conn: Box<dyn Conn> = match &self.addr {
            Addr::Tcp(addr) => {
                let stream = match self.policy.connect_timeout_ms {
                    Some(ms) => {
                        let sockaddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::InvalidInput,
                                format!("address `{addr}` resolved to nothing"),
                            )
                        })?;
                        TcpStream::connect_timeout(&sockaddr, Duration::from_millis(ms.max(1)))?
                    }
                    None => TcpStream::connect(addr)?,
                };
                Box::new(stream)
            }
            Addr::Unix(path) => Box::new(UnixStream::connect(path)?),
        };
        conn.set_io_timeout(self.policy.io_timeout_ms.map(Duration::from_millis))?;
        self.conn = Some(conn);
        Ok(())
    }

    fn roundtrip(&mut self, request: &Request) -> io::Result<Response> {
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let conn = self.conn.as_mut().expect("reconnect just succeeded");
        let result = (|| {
            write_frame(conn, &request.encode())?;
            let payload = read_frame(conn)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
            })?;
            Ok(Response::decode(&payload)?)
        })();
        if result.is_err() {
            // Whatever happened, the framing on this connection can no
            // longer be trusted; the next attempt dials fresh.
            self.conn = None;
        }
        result
    }

    /// Runs `attempt` under the retry policy: transport failures reconnect
    /// and resubmit, [`Submission::Overloaded`] backs off honoring the
    /// server's hint, everything else returns immediately. Safe because the
    /// server keys jobs by content digest — a resubmission of completed
    /// work is a cache hit, never a duplicate execution.
    fn with_retries(
        &mut self,
        mut attempt: impl FnMut(&mut Self) -> io::Result<Submission>,
    ) -> io::Result<Submission> {
        let start = Instant::now();
        let deadline = self.policy.deadline_ms.map(Duration::from_millis);
        let mut tries = 0u32;
        loop {
            let outcome = attempt(self);
            let pause = match &outcome {
                Ok(Submission::Overloaded { retry_after_ms }) => {
                    let jitter = self.jitter();
                    Some(self.policy.backoff(tries + 1, jitter).max(Duration::from_millis(*retry_after_ms)))
                }
                Err(e) if retryable(e) => {
                    let jitter = self.jitter();
                    Some(self.policy.backoff(tries + 1, jitter))
                }
                _ => None,
            };
            let Some(pause) = pause else {
                return outcome;
            };
            tries += 1;
            let budget_left = tries <= self.policy.max_retries
                && deadline.is_none_or(|d| start.elapsed() + pause < d);
            if !budget_left {
                if self.policy.max_retries > 0 {
                    self.stats.gave_up += 1;
                }
                return outcome;
            }
            self.stats.retries += 1;
            std::thread::sleep(pause);
        }
    }

    fn expect_report(response: Response) -> io::Result<Submission> {
        match response {
            Response::Report { cache_hit, record } => {
                let report = JobReport::from_record(&record).map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("bad report record: {e}"))
                })?;
                Ok(Submission::Done { cache_hit, report })
            }
            Response::Rejected { reason } => Ok(Submission::Rejected { reason }),
            Response::Overloaded { retry_after_ms } => Ok(Submission::Overloaded { retry_after_ms }),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response {other:?}"),
            )),
        }
    }

    fn submit_trace_once(&mut self, spec: &JobSpec, trace_text: &str) -> io::Result<Submission> {
        let response = self.roundtrip(&Request::Submit {
            tenant: self.tenant.clone(),
            spec: spec.to_token(),
            trace: trace_text.as_bytes().to_vec(),
        })?;
        Self::expect_report(response)
    }

    /// Submits one whole trace and waits for the verdict, retrying per the
    /// attached [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// Transport failures (after retries, if any) only; job-level failures
    /// come back inside [`Submission`].
    pub fn submit_trace(&mut self, spec: &JobSpec, trace_text: &str) -> io::Result<Submission> {
        self.with_retries(|c| c.submit_trace_once(spec, trace_text))
    }

    fn submit_stream_once(
        &mut self,
        spec: &JobSpec,
        trace_text: &str,
        chunk_bytes: usize,
        chunk_ops: u32,
    ) -> io::Result<Submission> {
        let open = self.roundtrip(&Request::StreamOpen {
            tenant: self.tenant.clone(),
            spec: spec.to_token(),
            chunk_ops,
        })?;
        match open {
            Response::StreamAck { .. } => {}
            Response::Rejected { reason } => return Ok(Submission::Rejected { reason }),
            Response::Overloaded { retry_after_ms } => {
                return Ok(Submission::Overloaded { retry_after_ms })
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected response {other:?}"),
                ))
            }
        }
        for chunk in trace_text.as_bytes().chunks(chunk_bytes.max(1)) {
            let ack = self.roundtrip(&Request::StreamChunk { data: chunk.to_vec() })?;
            match ack {
                Response::StreamAck { .. } => {}
                Response::Rejected { reason } => return Ok(Submission::Rejected { reason }),
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected response {other:?}"),
                    ))
                }
            }
        }
        let done = self.roundtrip(&Request::StreamFinish)?;
        Self::expect_report(done)
    }

    /// Uploads a trace in `chunk_bytes`-sized wire chunks and has the
    /// server run it through the *streaming* engine in `chunk_ops`-sized
    /// op chunks. A transport failure mid-stream restarts the whole upload
    /// on a fresh connection (stream state is per-connection server-side,
    /// so the half-sent stream simply evaporates).
    ///
    /// # Errors
    ///
    /// Transport failures (after retries, if any) only.
    pub fn submit_stream(
        &mut self,
        spec: &JobSpec,
        trace_text: &str,
        chunk_bytes: usize,
        chunk_ops: u32,
    ) -> io::Result<Submission> {
        self.with_retries(|c| c.submit_stream_once(spec, trace_text, chunk_bytes, chunk_ops))
    }

    /// Fetches the server's status snapshot (`key=value` lines; parse
    /// individual counters with
    /// [`status_counter`](crate::server::status_counter)).
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn status(&mut self) -> io::Result<String> {
        match self.roundtrip(&Request::Status)? {
            Response::Status { text } => Ok(text),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response {other:?}"),
            )),
        }
    }

    /// Asks the server to shut down cleanly.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response {other:?}"),
            )),
        }
    }
}

impl AnalysisService for Client {
    /// Remote submission. A server-side *rejection* (unknown tenant,
    /// oversized trace) is surfaced as an `InvalidInput` transport error,
    /// and overload past the retry budget as `WouldBlock` — the job never
    /// ran, so there is no report to return; job-level failures (bad
    /// trace, blown budget) arrive as ordinary reports.
    fn submit(&mut self, spec: &JobSpec, trace_text: &str) -> io::Result<JobReport> {
        match self.submit_trace(spec, trace_text)? {
            Submission::Done { report, .. } => Ok(report),
            Submission::Rejected { reason } => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("rejected by server: {reason}"),
            )),
            Submission::Overloaded { retry_after_ms } => Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                format!("server overloaded (retry after {retry_after_ms} ms)"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_capped_and_jittered_into_upper_half() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff_ms: 100,
            max_backoff_ms: 400,
            ..RetryPolicy::none()
        };
        for (attempt, cap) in [(1u32, 100u64), (2, 200), (3, 400), (4, 400), (10, 400)] {
            for jitter in [0u64, 1, u64::MAX, 0xdead_beef] {
                let d = policy.backoff(attempt, jitter).as_millis() as u64;
                assert!(d >= cap / 2 && d <= cap, "attempt {attempt} jitter {jitter}: {d} ∉ [{}, {cap}]", cap / 2);
            }
        }
    }

    #[test]
    fn backoff_schedule_is_deterministic_for_a_seed() {
        // Two clients with the same seed draw the same jitter stream.
        let mut a = 0x5eed | 1u64;
        let mut b = 0x5eed | 1u64;
        let step = |x: &mut u64| {
            let mut v = *x;
            v ^= v >> 12;
            v ^= v << 25;
            v ^= v >> 27;
            *x = v;
            v.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        for _ in 0..32 {
            assert_eq!(step(&mut a), step(&mut b));
        }
    }
}
