//! A declarative DSL for component lifecycle automata.
//!
//! The paper hard-codes one automaton — the Figure 8 Activity lifecycle —
//! into its instrumentation sites. This module factors the concept out into
//! plain data so every component surface (Activity, Service, Fragment,
//! IntentService, BroadcastReceiver) is described the same way:
//!
//! * [`AutomatonSpec`] — the callbacks a component has, the happens-after
//!   edges between them (must = the only legal successor, may = one of
//!   several), and the *transition-task table*: which callbacks the runtime
//!   merges into one posted task, and which transitions each task enables.
//! * [`DslMachine`] — a generic sequence checker replaying callback runs
//!   against the edge relation (the DSL twin of
//!   [`crate::lifecycle::LifecycleMachine`]).
//!
//! The compiler in [`crate::compile`] derives its enable-planting entirely
//! from these tables; [`ACTIVITY`] reproduces the hand-coded
//! Figure 8 lowering bit-for-bit (pinned by the `dsl_differential`
//! integration test), and the other automata extend the same machinery to
//! the component surfaces the Android bug studies flag as race-prone.

use std::fmt;

/// Whether a happens-after edge is the only legal continuation or one of
/// several.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// The target is the unique successor of the source callback.
    Must,
    /// The target is one of several possible successors.
    May,
}

/// One happens-after edge of an automaton: `to` may (or must) follow
/// directly after `from`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeSpec {
    /// Source callback method name.
    pub from: &'static str,
    /// Successor callback method name.
    pub to: &'static str,
    /// Must/may discipline of the edge.
    pub kind: EdgeKind,
}

/// One transition task of an automaton: the unit the system server posts to
/// the component's thread. A task runs one or more callbacks synchronously
/// (e.g. `LAUNCH_ACTIVITY` runs onCreate+onStart+onResume) and, on
/// completion, enables the transitions that may legally follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpec {
    /// Task label (the name the posted task carries in traces).
    pub label: &'static str,
    /// Callback method names the task runs, in order.
    pub runs: &'static [&'static str],
    /// Labels of the transition tasks this task enables on completion.
    pub enables: &'static [&'static str],
    /// Whether this is the entry transition (enabled at component start;
    /// for activities, also the task that plants the initial widget
    /// enables).
    pub initial: bool,
    /// For nested automata (fragments): the *host* task label this task's
    /// callbacks are spliced into, instead of being posted standalone.
    pub nested_in: Option<&'static str>,
}

/// A complete component automaton: callbacks, entry callback, edge
/// relation and transition-task table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutomatonSpec {
    /// Component kind, e.g. `"Activity"`.
    pub component: &'static str,
    /// All callback method names.
    pub callbacks: &'static [&'static str],
    /// The callback every instance must begin with.
    pub entry: &'static str,
    /// The happens-after edges.
    pub edges: &'static [EdgeSpec],
    /// The transition-task table.
    pub tasks: &'static [TaskSpec],
}

impl AutomatonSpec {
    /// Direct successors of `callback` in the edge relation, in table
    /// order.
    pub fn successors(&self, callback: &str) -> Vec<&'static str> {
        self.edges
            .iter()
            .filter(|e| e.from == callback)
            .map(|e| e.to)
            .collect()
    }

    /// The task spec labeled `label`, if any.
    pub fn task(&self, label: &str) -> Option<&TaskSpec> {
        self.tasks.iter().find(|t| t.label == label)
    }

    /// The entry task (the one marked `initial`), if any.
    pub fn entry_task(&self) -> Option<&TaskSpec> {
        self.tasks.iter().find(|t| t.initial)
    }

    /// Internal consistency: every edge endpoint, task callback and enable
    /// target must resolve, exactly one task (if any) is the entry, and
    /// every `Must` edge is its source's only outgoing edge.
    pub fn validate(&self) -> Result<(), String> {
        let known = |c: &str| self.callbacks.contains(&c);
        if !known(self.entry) {
            return Err(format!("entry callback {} not declared", self.entry));
        }
        for e in self.edges {
            if !known(e.from) || !known(e.to) {
                return Err(format!("edge {} -> {} uses undeclared callback", e.from, e.to));
            }
            if e.kind == EdgeKind::Must && self.successors(e.from).len() != 1 {
                return Err(format!("must-edge source {} has multiple successors", e.from));
            }
        }
        for t in self.tasks {
            for c in t.runs {
                if !known(c) {
                    return Err(format!("task {} runs undeclared callback {c}", t.label));
                }
            }
            for en in t.enables {
                if self.task(en).is_none() {
                    return Err(format!("task {} enables unknown task {en}", t.label));
                }
            }
            if let Some(host) = t.nested_in {
                if t.initial || !t.enables.is_empty() {
                    return Err(format!(
                        "nested task {} (in {host}) cannot be initial or enable transitions",
                        t.label
                    ));
                }
            }
        }
        if self.tasks.iter().filter(|t| t.initial).count() > 1 {
            return Err("more than one initial task".into());
        }
        Ok(())
    }
}

/// A violation found by [`DslMachine`]: `callback` ran when the automaton
/// did not allow it (directly `after` the given callback, or as the first
/// callback when `after` is `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DslError {
    /// The offending callback name.
    pub callback: &'static str,
    /// The previously run callback, if any.
    pub after: Option<&'static str>,
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.after {
            Some(prev) => write!(f, "{} may not follow {prev}", self.callback),
            None => write!(f, "{} is not a legal first callback", self.callback),
        }
    }
}

/// Replays callback sequences against an [`AutomatonSpec`]'s edge relation
/// — the generic twin of [`crate::lifecycle::LifecycleMachine`].
#[derive(Debug, Clone)]
pub struct DslMachine {
    spec: &'static AutomatonSpec,
    last: Option<&'static str>,
}

impl DslMachine {
    /// A machine for `spec`, before any callback has run.
    pub fn new(spec: &'static AutomatonSpec) -> Self {
        DslMachine { spec, last: None }
    }

    /// The most recently accepted callback.
    pub fn last(&self) -> Option<&'static str> {
        self.last
    }

    /// Feeds one callback. The first must be the automaton's entry; every
    /// later one must be a successor of the previous.
    ///
    /// # Errors
    ///
    /// Returns the [`DslError`] describing the violated edge.
    pub fn step(&mut self, callback: &str) -> Result<(), DslError> {
        let canonical = self
            .spec
            .callbacks
            .iter()
            .copied()
            .find(|c| *c == callback)
            .ok_or(DslError { callback: "<unknown>", after: self.last })?;
        let ok = match self.last {
            None => canonical == self.spec.entry,
            Some(prev) => self.spec.successors(prev).contains(&canonical),
        };
        if !ok {
            return Err(DslError { callback: canonical, after: self.last });
        }
        self.last = Some(canonical);
        Ok(())
    }

    /// Checks a whole sequence from the initial state.
    ///
    /// # Errors
    ///
    /// Returns the first violation.
    pub fn check(spec: &'static AutomatonSpec, sequence: &[&str]) -> Result<(), DslError> {
        let mut m = DslMachine::new(spec);
        for c in sequence {
            m.step(c)?;
        }
        Ok(())
    }
}

/// The Figure 8 Activity automaton, expressed in the DSL. The edge relation
/// mirrors [`crate::lifecycle::Callback::successors`] and the task table
/// reproduces the compiler's hand-coded enable-planting exactly.
pub const ACTIVITY: AutomatonSpec = AutomatonSpec {
    component: "Activity",
    callbacks: &[
        "onCreate", "onStart", "onResume", "onPause", "onStop", "onRestart", "onDestroy",
    ],
    entry: "onCreate",
    edges: &[
        EdgeSpec { from: "onCreate", to: "onStart", kind: EdgeKind::Must },
        EdgeSpec { from: "onStart", to: "onResume", kind: EdgeKind::May },
        EdgeSpec { from: "onStart", to: "onStop", kind: EdgeKind::May },
        EdgeSpec { from: "onResume", to: "onPause", kind: EdgeKind::Must },
        EdgeSpec { from: "onPause", to: "onResume", kind: EdgeKind::May },
        EdgeSpec { from: "onPause", to: "onStop", kind: EdgeKind::May },
        EdgeSpec { from: "onStop", to: "onRestart", kind: EdgeKind::May },
        EdgeSpec { from: "onStop", to: "onDestroy", kind: EdgeKind::May },
        EdgeSpec { from: "onRestart", to: "onStart", kind: EdgeKind::Must },
    ],
    tasks: &[
        TaskSpec {
            label: "LAUNCH_ACTIVITY",
            runs: &["onCreate", "onStart", "onResume"],
            enables: &["onPause", "onDestroy"],
            initial: true,
            nested_in: None,
        },
        TaskSpec {
            label: "onPause",
            runs: &["onPause"],
            enables: &["onStop", "onResume"],
            initial: false,
            nested_in: None,
        },
        TaskSpec {
            label: "onStop",
            runs: &["onStop"],
            enables: &["RELAUNCH_ACTIVITY"],
            initial: false,
            nested_in: None,
        },
        TaskSpec {
            label: "onDestroy",
            runs: &["onDestroy"],
            enables: &["LAUNCH_ACTIVITY"],
            initial: false,
            nested_in: None,
        },
        TaskSpec {
            label: "onResume",
            runs: &["onResume"],
            enables: &["onPause", "onDestroy"],
            initial: false,
            nested_in: None,
        },
        TaskSpec {
            label: "RELAUNCH_ACTIVITY",
            runs: &["onRestart", "onStart", "onResume"],
            enables: &["onPause", "onDestroy"],
            initial: false,
            nested_in: None,
        },
    ],
};

/// The started-Service automaton: onCreate runs once per started lifetime,
/// then one onStartCommand per `startService` (re-deliveries are posted by
/// the same system thread to the same queue, so the FIFO rule orders them —
/// the model's re-delivery-ordering guarantee), then onDestroy after
/// `stopService`.
pub const SERVICE: AutomatonSpec = AutomatonSpec {
    component: "Service",
    callbacks: &["onCreate", "onStartCommand", "onDestroy"],
    entry: "onCreate",
    edges: &[
        EdgeSpec { from: "onCreate", to: "onStartCommand", kind: EdgeKind::Must },
        EdgeSpec { from: "onStartCommand", to: "onStartCommand", kind: EdgeKind::May },
        EdgeSpec { from: "onStartCommand", to: "onDestroy", kind: EdgeKind::May },
    ],
    tasks: &[
        TaskSpec {
            label: "onCreate",
            runs: &["onCreate"],
            enables: &[],
            initial: true,
            nested_in: None,
        },
        TaskSpec {
            label: "onStartCommand",
            runs: &["onStartCommand"],
            enables: &[],
            initial: false,
            nested_in: None,
        },
        TaskSpec {
            label: "onDestroy",
            runs: &["onDestroy"],
            enables: &[],
            initial: false,
            nested_in: None,
        },
    ],
};

/// The Fragment automaton, nested inside its host Activity: attach and view
/// creation are spliced into the host's `LAUNCH_ACTIVITY` transition, view
/// teardown and detach into the host's `onDestroy` transition. Background
/// work started from `onCreateView` survives into the detach window — the
/// detach-during-background-work race surface.
pub const FRAGMENT: AutomatonSpec = AutomatonSpec {
    component: "Fragment",
    callbacks: &["onAttach", "onCreateView", "onDestroyView", "onDetach"],
    entry: "onAttach",
    edges: &[
        EdgeSpec { from: "onAttach", to: "onCreateView", kind: EdgeKind::Must },
        EdgeSpec { from: "onCreateView", to: "onDestroyView", kind: EdgeKind::Must },
        EdgeSpec { from: "onDestroyView", to: "onDetach", kind: EdgeKind::Must },
    ],
    tasks: &[
        TaskSpec {
            label: "attachFragment",
            runs: &["onAttach", "onCreateView"],
            enables: &[],
            initial: false,
            nested_in: Some("LAUNCH_ACTIVITY"),
        },
        TaskSpec {
            label: "detachFragment",
            runs: &["onDestroyView", "onDetach"],
            enables: &[],
            initial: false,
            nested_in: Some("onDestroy"),
        },
    ],
};

/// The IntentService automaton: a per-component serial executor (its own
/// FIFO queue thread, distinct from the main Looper) runs one
/// `onHandleIntent` per `startService`, strictly in delivery order.
pub const INTENT_SERVICE: AutomatonSpec = AutomatonSpec {
    component: "IntentService",
    callbacks: &["onHandleIntent"],
    entry: "onHandleIntent",
    edges: &[EdgeSpec {
        from: "onHandleIntent",
        to: "onHandleIntent",
        kind: EdgeKind::May,
    }],
    tasks: &[TaskSpec {
        label: "onHandleIntent",
        runs: &["onHandleIntent"],
        enables: &[],
        initial: true,
        nested_in: None,
    }],
};

/// The BroadcastReceiver automaton: one `onReceive` per delivery, posted
/// cross-component by the system server with no happens-before edge back to
/// the sender's later operations (the broadcast/binder boundary).
pub const RECEIVER: AutomatonSpec = AutomatonSpec {
    component: "BroadcastReceiver",
    callbacks: &["onReceive"],
    entry: "onReceive",
    edges: &[EdgeSpec {
        from: "onReceive",
        to: "onReceive",
        kind: EdgeKind::May,
    }],
    tasks: &[TaskSpec {
        label: "onReceive",
        runs: &["onReceive"],
        enables: &[],
        initial: true,
        nested_in: None,
    }],
};

/// All component automata the framework models.
pub fn all_automata() -> [&'static AutomatonSpec; 5] {
    [&ACTIVITY, &SERVICE, &FRAGMENT, &INTENT_SERVICE, &RECEIVER]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::{Callback, LifecycleMachine};

    #[test]
    fn every_automaton_validates() {
        for spec in all_automata() {
            assert_eq!(spec.validate(), Ok(()), "{}", spec.component);
        }
    }

    #[test]
    fn activity_edges_match_the_hand_coded_lifecycle_exhaustively() {
        // Differential: DslMachine over ACTIVITY accepts exactly the
        // sequences LifecycleMachine accepts, for all sequences up to
        // length 5 over the 7 callbacks (19,607 sequences).
        let all = Callback::all();
        let mut stack: Vec<Vec<Callback>> = vec![Vec::new()];
        while let Some(seq) = stack.pop() {
            if !seq.is_empty() {
                let names: Vec<&str> = seq.iter().map(|c| c.method_name()).collect();
                let legacy = LifecycleMachine::check(&seq).is_ok();
                let dsl = DslMachine::check(&ACTIVITY, &names).is_ok();
                assert_eq!(legacy, dsl, "divergence on {names:?}");
            }
            if seq.len() < 5 {
                for c in all {
                    let mut next = seq.clone();
                    next.push(c);
                    stack.push(next);
                }
            }
        }
    }

    #[test]
    fn dsl_errors_carry_the_offending_step() {
        let err = DslMachine::check(&ACTIVITY, &["onCreate", "onPause"]).unwrap_err();
        assert_eq!(err.callback, "onPause");
        assert_eq!(err.after, Some("onCreate"));
        assert!(err.to_string().contains("may not follow"));
        let err = DslMachine::check(&ACTIVITY, &["onResume"]).unwrap_err();
        assert_eq!(err.after, None);
        assert!(err.to_string().contains("first callback"));
    }

    #[test]
    fn service_accepts_redelivery_and_rejects_commands_after_destroy() {
        assert!(DslMachine::check(
            &SERVICE,
            &["onCreate", "onStartCommand", "onStartCommand", "onDestroy"]
        )
        .is_ok());
        assert!(DslMachine::check(&SERVICE, &["onStartCommand"]).is_err());
        assert!(
            DslMachine::check(&SERVICE, &["onCreate", "onStartCommand", "onDestroy", "onStartCommand"])
                .is_err()
        );
    }

    #[test]
    fn fragment_tasks_nest_in_the_host_activity() {
        let attach = FRAGMENT.task("attachFragment").unwrap();
        let detach = FRAGMENT.task("detachFragment").unwrap();
        assert_eq!(attach.nested_in, Some("LAUNCH_ACTIVITY"));
        assert_eq!(detach.nested_in, Some("onDestroy"));
        assert!(ACTIVITY.task(attach.nested_in.unwrap()).is_some());
        assert!(ACTIVITY.task(detach.nested_in.unwrap()).is_some());
    }

    #[test]
    fn entry_tasks_are_unique_and_resolvable() {
        assert_eq!(ACTIVITY.entry_task().unwrap().label, "LAUNCH_ACTIVITY");
        assert_eq!(SERVICE.entry_task().unwrap().label, "onCreate");
        assert_eq!(INTENT_SERVICE.entry_task().unwrap().label, "onHandleIntent");
    }

    #[test]
    fn validate_rejects_broken_specs() {
        const BAD_EDGE: AutomatonSpec = AutomatonSpec {
            component: "X",
            callbacks: &["a"],
            entry: "a",
            edges: &[EdgeSpec { from: "a", to: "b", kind: EdgeKind::May }],
            tasks: &[],
        };
        assert!(BAD_EDGE.validate().is_err());
        const BAD_MUST: AutomatonSpec = AutomatonSpec {
            component: "X",
            callbacks: &["a", "b", "c"],
            entry: "a",
            edges: &[
                EdgeSpec { from: "a", to: "b", kind: EdgeKind::Must },
                EdgeSpec { from: "a", to: "c", kind: EdgeKind::May },
            ],
            tasks: &[],
        };
        assert!(BAD_MUST.validate().is_err());
    }
}
