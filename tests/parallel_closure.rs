//! Intra-trace parallel closure ≡ sequential equivalence suite.
//!
//! [`HappensBefore::compute_parallel`] partitions each saturation pass
//! into level batches recomputed concurrently; its contract is that the
//! closed matrices *and* every engine counter except the
//! `batches`/`batch_conflicts` scheduling telemetry are bit-identical to
//! the sequential engine for every worker count. These tests pin that on
//! the full 15-app corpus, on proptest-generated random applications, and
//! through the session API's `intra_threads` knob, for
//! `threads ∈ {1, 2, 8}`.

use proptest::prelude::*;

use droidracer::apps::corpus;
use droidracer::core::{AnalysisBuilder, EngineStats, HappensBefore, HbConfig, HbMode};
use droidracer::framework::{compile, App, AppBuilder, Stmt, UiEvent, UiEventKind};
use droidracer::sim::{run, RandomScheduler, SimConfig};
use droidracer::trace::Trace;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Everything except the scheduling telemetry must match the sequential
/// engine exactly; the telemetry itself must be zero on the sequential
/// path and identical for any parallel worker count.
fn strip_telemetry(stats: &EngineStats) -> EngineStats {
    EngineStats {
        batches: 0,
        batch_conflicts: 0,
        ..*stats
    }
}

fn assert_parallel_equivalent(trace: &Trace, config: HbConfig, context: &str) {
    let trace = trace.without_cancelled();
    let sequential = HappensBefore::compute(&trace, config);
    let mut parallel_telemetry: Option<(u64, u64)> = None;
    for threads in THREAD_COUNTS {
        let par = HappensBefore::compute_parallel(&trace, config, threads);
        assert_eq!(
            sequential.relation_matrices(),
            par.relation_matrices(),
            "{context}: matrices diverged at {threads} threads"
        );
        assert_eq!(
            strip_telemetry(sequential.stats()),
            strip_telemetry(par.stats()),
            "{context}: counters diverged at {threads} threads"
        );
        let p = par.stats();
        if threads <= 1 {
            assert_eq!(
                (p.batches, p.batch_conflicts),
                (0, 0),
                "{context}: sequential path must not report batches"
            );
        } else {
            // The level partition is a pure function of the graph, so the
            // telemetry is identical for any worker count ≥ 2.
            match parallel_telemetry {
                None => parallel_telemetry = Some((p.batches, p.batch_conflicts)),
                Some(expect) => assert_eq!(
                    (p.batches, p.batch_conflicts),
                    expect,
                    "{context}: telemetry varies with worker count"
                ),
            }
        }
    }
}

/// Every corpus app under the production configuration.
#[test]
fn corpus_closure_is_identical_across_intra_thread_counts() {
    for entry in corpus() {
        let trace = entry.generate_trace().expect("corpus entries generate");
        assert_parallel_equivalent(&trace, HbConfig::new(), entry.name);
    }
}

/// The session API's `intra_threads` knob produces identical analyses —
/// races, counts, rendered reports, span structure — on the corpus apps
/// large enough to actually dispatch batches.
#[test]
fn corpus_sessions_are_identical_across_intra_thread_counts() {
    for entry in corpus().iter().take(4) {
        let trace = entry.generate_trace().expect("corpus entries generate");
        let base = AnalysisBuilder::new().analyze(&trace).expect("runs");
        for threads in THREAD_COUNTS {
            let par = AnalysisBuilder::new()
                .intra_threads(threads)
                .analyze(&trace)
                .expect("runs");
            let context = format!("{} at {} intra threads", entry.name, threads);
            assert_eq!(par.races(), base.races(), "{context}: races");
            assert_eq!(par.counts(), base.counts(), "{context}: counts");
            assert_eq!(par.render(), base.render(), "{context}: report");
            assert_eq!(
                strip_telemetry(par.hb().stats()),
                strip_telemetry(base.hb().stats()),
                "{context}: counters"
            );
            assert_eq!(
                par.spans().structure(),
                base.spans().structure(),
                "{context}: span structure"
            );
        }
    }
}

/// Derives a small valid app from fuzz bytes (same surface as the closure
/// equivalence suite: forward posts, a worker thread, shared variables).
fn build_app(bytes: &[u8]) -> (App, Vec<UiEvent>) {
    let mut pos = 0usize;
    let mut next = |n: usize| -> usize {
        let b = bytes.get(pos).copied().unwrap_or(0) as usize;
        pos += 1;
        if n == 0 {
            0
        } else {
            b % n
        }
    };
    let mut b = AppBuilder::new("ParClosureFuzz");
    let act = b.activity("Main");
    let vars: Vec<_> = (0..1 + next(3))
        .map(|i| b.var("obj", format!("f{i}")))
        .collect();
    let leaf = |next: &mut dyn FnMut(usize) -> usize| -> Stmt {
        let v = vars[next(vars.len())];
        if next(2) == 0 {
            Stmt::Read(v)
        } else {
            Stmt::Write(v)
        }
    };
    let late = b.handler("late", vec![leaf(&mut next), leaf(&mut next)]);
    let mut mid_body = vec![leaf(&mut next)];
    if next(2) == 0 {
        mid_body.push(Stmt::Post {
            handler: late,
            delay: if next(3) == 0 { Some(20) } else { None },
            front: next(5) == 0,
        });
    }
    let mid = b.handler("mid", mid_body);
    let w = b.worker(
        "bg",
        vec![
            leaf(&mut next),
            Stmt::Post {
                handler: mid,
                delay: None,
                front: false,
            },
        ],
    );
    let mut on_create = vec![Stmt::ForkWorker(w), leaf(&mut next)];
    for _ in 0..next(3) {
        on_create.push(Stmt::Post {
            handler: mid,
            delay: if next(4) == 0 { Some(10) } else { None },
            front: false,
        });
    }
    b.on_create(act, on_create);
    let btn = b.button(act, "go", vec![leaf(&mut next)]);
    let mut events = Vec::new();
    for _ in 0..next(3) {
        events.push(UiEvent::Widget(btn, UiEventKind::Click));
    }
    (b.finish(), events)
}

fn simulate(bytes: &[u8], seed: u64) -> Trace {
    let (app, events) = build_app(bytes);
    let compiled = compile(&app, &events).expect("fuzzed apps compile");
    let result = run(
        &compiled.program,
        &mut RandomScheduler::new(seed),
        &SimConfig::default(),
    )
    .expect("fuzzed apps run");
    result.trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random traces close identically across intra-trace thread counts
    /// under every rule preset, merged and unmerged.
    #[test]
    fn random_traces_are_identical_across_intra_thread_counts(
        bytes in proptest::collection::vec(any::<u8>(), 0..48),
        seed in 0u64..1000,
    ) {
        let trace = simulate(&bytes, seed);
        for mode in HbMode::all() {
            for merge in [true, false] {
                let config = HbConfig {
                    rules: mode.rule_set(),
                    merge_accesses: merge,
                };
                assert_parallel_equivalent(
                    &trace,
                    config,
                    &format!("fuzz seed {seed} / {mode:?} / merge={merge}"),
                );
            }
        }
    }
}
