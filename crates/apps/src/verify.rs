//! Mechanical race validation by reordering — the stand-in for the paper's
//! manual DDMS sessions (§6): "We classify only those reported races as true
//! positives for which we could produce alternate ordering of racey memory
//! accesses than the reported order in the trace," by stalling threads, by
//! changing the order of triggering events, and by altering delays.
//!
//! [`verify_race`] re-executes an app under many seeds (alternate schedules)
//! and under adjacent transpositions of the UI event sequence (alternate
//! event orders), and reports whether the two racing accesses were ever
//! observed in the opposite order.

use droidracer_core::AnalysisBuilder;
use droidracer_framework::{compile, UiEvent};
use droidracer_sim::{run, RandomScheduler, Scheduler, SimConfig, StallScheduler};
use droidracer_trace::{OpKind, Trace};

use crate::corpus::{CorpusEntry, CorpusError};
use crate::strip::strip_untracked;

/// The verdict of reordering-based validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// An alternate run showed the accesses in the opposite order: the race
    /// is a true positive.
    Reordered,
    /// No run within the budget flipped the accesses. (For the corpus's
    /// planted false positives no budget ever will — the hidden ordering is
    /// enforced by the simulator even though the trace hides it.)
    NotReordered,
    /// No race on the given field was reported in the representative run.
    NoSuchRace,
}

/// An access site: where in the program one of the racing accesses lives.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Site {
    thread: String,
    task: Option<String>,
    is_write: bool,
}

fn base_name(name: &str) -> String {
    name.split('#').next().unwrap_or(name).to_owned()
}

fn site_of(trace: &Trace, index: usize) -> Site {
    let op = trace.op(index);
    let task = trace
        .index()
        .task_of(index)
        .map(|t| base_name(&trace.names().task_name(t)));
    Site {
        thread: base_name(&trace.names().thread_name(op.thread)),
        task,
        is_write: op.kind.is_write(),
    }
}

/// First position in `trace` of an access to a location named `field` from
/// `site`.
fn find_site(trace: &Trace, field: &str, site: &Site) -> Option<usize> {
    let index = trace.index();
    trace.iter().position(|(i, op)| {
        let loc = match op.kind {
            OpKind::Read { loc } => loc,
            OpKind::Write { loc } => loc,
            _ => return false,
        };
        trace.names().field_name(loc.field) == field
            && op.kind.is_write() == site.is_write
            && base_name(&trace.names().thread_name(op.thread)) == site.thread
            && index.task_of(i).map(|t| base_name(&trace.names().task_name(t))) == site.task
    })
}

/// All adjacent transpositions of `events`, plus the original order.
fn event_orders(events: &[UiEvent]) -> Vec<Vec<UiEvent>> {
    let mut orders = vec![events.to_vec()];
    for i in 0..events.len().saturating_sub(1) {
        let mut swapped = events.to_vec();
        swapped.swap(i, i + 1);
        if !orders.contains(&swapped) {
            orders.push(swapped);
        }
    }
    orders
}

/// Attempts to reorder the reported race on `field` within `max_runs`
/// alternate executions (schedules × event orders).
///
/// # Errors
///
/// Returns [`CorpusError`] if the representative run itself fails.
pub fn verify_race(
    entry: &CorpusEntry,
    field: &str,
    max_runs: usize,
) -> Result<VerifyOutcome, CorpusError> {
    let baseline = entry.generate_trace()?;
    let analysis = AnalysisBuilder::new().analyze(&baseline).unwrap();
    let Some(race) = analysis.representatives().into_iter().find(|cr| {
        analysis
            .trace()
            .names()
            .field_name(cr.race.loc.field)
            == field
    }) else {
        return Ok(VerifyOutcome::NoSuchRace);
    };
    let site_a = site_of(analysis.trace(), race.race.first);
    let site_b = site_of(analysis.trace(), race.race.second);

    let attempt = |scheduler: &mut dyn Scheduler, order: &[UiEvent]| -> Option<bool> {
        let compiled = compile(&entry.app, order).ok()?; // infeasible alternate order
        let result = run(
            &compiled.program,
            scheduler,
            &SimConfig { max_steps: 600_000 },
        )
        .ok()?;
        // Incomplete runs (blocked injections under an infeasible order)
        // still yield a usable prefix trace.
        let trace = strip_untracked(&result.trace);
        let pa = find_site(&trace, field, &site_a)?;
        let pb = find_site(&trace, field, &site_b)?;
        Some(pb < pa)
    };

    let mut runs = 0usize;

    // Phase 1 — the paper's breakpoint technique: stall each thread in turn
    // so the others can overtake it. This flips multi-threaded and
    // cross-posted races whose first access lives on the stalled thread.
    let n_threads = baseline.names().thread_count();
    'stall: for t in 0..n_threads {
        for seed_off in 0..2u64 {
            if runs >= max_runs {
                break 'stall;
            }
            runs += 1;
            let mut s = StallScheduler::new(
                droidracer_trace::ThreadId(t as u32),
                entry.seed.wrapping_add(seed_off),
            );
            if attempt(&mut s, &entry.events) == Some(true) {
                return Ok(VerifyOutcome::Reordered);
            }
        }
    }

    // Phase 2 — alternate event orders (the paper "changes the order of
    // triggering events" for co-enabled races) under random schedules.
    let orders = event_orders(&entry.events);
    let mut seed = entry.seed.wrapping_add(1);
    'outer: while runs < max_runs {
        for order in &orders {
            if runs >= max_runs {
                break 'outer;
            }
            runs += 1;
            let mut s = RandomScheduler::new(seed);
            if attempt(&mut s, order) == Some(true) {
                return Ok(VerifyOutcome::Reordered);
            }
            seed = seed.wrapping_add(1);
        }
    }
    Ok(VerifyOutcome::NotReordered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motifs::MotifBuilder;
    use crate::corpus::{CorpusEntry, PaperRow};

    fn entry_from(m: MotifBuilder, seed: u64) -> CorpusEntry {
        let (app, events, truth) = m.finish();
        CorpusEntry {
            name: "verify-test",
            open_source: true,
            app,
            events,
            seed,
            paper: PaperRow::default(),
            truth,
        }
    }

    #[test]
    fn true_mt_race_is_reorderable() {
        let mut m = MotifBuilder::new("V", "Main");
        m.mt_races(1, 0);
        let entry = entry_from(m, 7);
        let field = entry.truth.keys().next().unwrap().clone();
        let outcome = verify_race(&entry, &field, 40).expect("verification runs");
        assert_eq!(outcome, VerifyOutcome::Reordered);
    }

    #[test]
    fn false_mt_race_never_reorders() {
        let mut m = MotifBuilder::new("V", "Main");
        m.mt_races(0, 1);
        let entry = entry_from(m, 7);
        let field = entry.truth.keys().next().unwrap().clone();
        let outcome = verify_race(&entry, &field, 40).expect("verification runs");
        assert_eq!(outcome, VerifyOutcome::NotReordered);
    }

    #[test]
    fn true_co_enabled_race_reorders_via_event_swap() {
        let mut m = MotifBuilder::new("V", "Main");
        m.co_enabled_races(1, 0);
        let entry = entry_from(m, 7);
        let field = entry.truth.keys().next().unwrap().clone();
        let outcome = verify_race(&entry, &field, 40).expect("verification runs");
        assert_eq!(outcome, VerifyOutcome::Reordered);
    }

    #[test]
    fn false_co_enabled_race_stays_ordered() {
        let mut m = MotifBuilder::new("V", "Main");
        m.co_enabled_races(0, 1);
        let entry = entry_from(m, 7);
        let field = entry.truth.keys().next().unwrap().clone();
        let outcome = verify_race(&entry, &field, 40).expect("verification runs");
        assert_eq!(outcome, VerifyOutcome::NotReordered);
    }

    #[test]
    fn unknown_field_reports_no_such_race() {
        let mut m = MotifBuilder::new("V", "Main");
        m.mt_races(1, 0);
        let entry = entry_from(m, 7);
        let outcome = verify_race(&entry, "nonexistent", 5).expect("runs");
        assert_eq!(outcome, VerifyOutcome::NoSuchRace);
    }
}
