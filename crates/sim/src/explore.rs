//! Bounded exhaustive schedule exploration (stateless model checking).
//!
//! The paper's UI Explorer enumerates event sequences "in the style of
//! stateless model checking" (§7); this module applies the same idea one
//! level down, to *scheduler decisions*: re-execution-based depth-first
//! search over the tree of nondeterministic choices, yielding every
//! reachable interleaving of a program (up to the configured bounds).
//!
//! Exhaustive exploration is exponential and meant for small programs; its
//! value here is as an **oracle**: for programs without environment
//! injections and front-of-queue posts, two conflicting accesses can be
//! observed in both orders across schedules *iff* the happens-before
//! detector reports them as a race — the integration tests use this to
//! validate the detector end-to-end.

use std::collections::VecDeque;

use crate::program::Program;
use crate::runtime::{run, Footprint, Runtime, SimConfig, SimError, SimResult};
use crate::scheduler::{Choice, Scheduler};

/// Bounds for exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Step budget per run.
    pub max_steps: usize,
    /// Cap on the number of schedules explored.
    pub max_schedules: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_steps: 20_000,
            max_schedules: 2_000,
        }
    }
}

/// A scheduler that replays a decision prefix, then always takes the first
/// choice, recording how many alternatives existed at every step.
#[derive(Debug)]
struct RecordingScheduler {
    prefix: Vec<usize>,
    step: usize,
    /// Number of enabled choices observed at each step.
    pub fanout: Vec<usize>,
}

impl RecordingScheduler {
    fn new(prefix: Vec<usize>) -> Self {
        RecordingScheduler {
            prefix,
            step: 0,
            fanout: Vec::new(),
        }
    }
}

impl Scheduler for RecordingScheduler {
    fn choose(&mut self, choices: &[Choice]) -> usize {
        self.fanout.push(choices.len());
        let pick = self.prefix.get(self.step).copied().unwrap_or(0);
        self.step += 1;
        pick.min(choices.len() - 1)
    }
}

/// The result of an exhaustive exploration.
#[derive(Debug)]
pub struct Exploration {
    /// One result per explored schedule, in DFS order.
    pub runs: Vec<SimResult>,
    /// Whether the choice tree was fully covered within the bounds.
    pub complete: bool,
}

/// Explores every schedule of `program` depth-first, up to the bounds.
///
/// # Errors
///
/// Returns [`SimError`] if the program is invalid or misuses a lock.
pub fn explore_schedules(
    program: &Program,
    config: &ExploreConfig,
) -> Result<Exploration, SimError> {
    let sim_config = SimConfig {
        max_steps: config.max_steps,
    };
    let mut runs = Vec::new();
    // Work-list of decision prefixes still to expand. A deque used as a
    // stack gives DFS order.
    let mut pending: VecDeque<Vec<usize>> = VecDeque::new();
    pending.push_back(Vec::new());
    let mut complete = true;
    while let Some(prefix) = pending.pop_back() {
        if runs.len() >= config.max_schedules {
            complete = false;
            break;
        }
        let prefix_len = prefix.len();
        let mut scheduler = RecordingScheduler::new(prefix);
        let result = run(program, &mut scheduler, &sim_config)?;
        if !result.completed {
            complete = false;
        }
        // Enqueue the unexplored siblings of every fresh decision (those
        // past the replayed prefix, where we defaulted to choice 0). Pushing
        // shallower positions first keeps DFS order when popping from the
        // back.
        for pos in prefix_len..scheduler.fanout.len() {
            for alt in 1..scheduler.fanout[pos] {
                let mut branch = result.decisions[..pos].to_vec();
                branch.push(alt);
                pending.push_back(branch);
            }
        }
        runs.push(result);
    }
    Ok(Exploration { runs, complete })
}

/// Explores schedules with **sleep-set partial-order reduction**: redundant
/// interleavings that only permute independent (commuting) transitions are
/// pruned, while every Mazurkiewicz trace — in particular, every ordering of
/// *conflicting* operations — is still visited. Sleep sets are the classic
/// sound reduction underlying dynamic partial-order reduction.
///
/// Independence is judged by [`Runtime::footprint`]: transitions on
/// different threads commute unless they touch a common memory location
/// (with a write), lock, looper queue or enable set.
///
/// # Errors
///
/// Returns [`SimError`] if the program is invalid or misuses a lock.
pub fn explore_schedules_reduced(
    program: &Program,
    config: &ExploreConfig,
) -> Result<Exploration, SimError> {
    program.check()?;
    struct Frame<'p> {
        rt: Runtime<'p>,
        sleep: Vec<(Choice, Footprint)>,
        steps: usize,
    }
    let mut runs = Vec::new();
    let mut complete = true;
    let mut stack = vec![Frame {
        rt: Runtime::new(program),
        sleep: Vec::new(),
        steps: 0,
    }];
    while let Some(frame) = stack.pop() {
        if runs.len() >= config.max_schedules {
            complete = false;
            break;
        }
        let Frame { rt, mut sleep, steps } = frame;
        let choices = rt.enumerate_choices();
        let fresh: Vec<Choice> = choices
            .iter()
            .copied()
            .filter(|c| !sleep.iter().any(|(s, _)| s == c))
            .collect();
        if choices.is_empty() {
            // Terminal state: record the execution.
            let completed = rt.quiescent();
            if !completed {
                complete = false;
            }
            runs.push(SimResult {
                trace: rt.into_trace(),
                completed,
                steps,
                decisions: Vec::new(),
                blocked: Vec::new(),
            });
            continue;
        }
        if fresh.is_empty() {
            // Sleep-set blocked: every continuation is redundant.
            continue;
        }
        if steps >= config.max_steps {
            complete = false;
            continue;
        }
        // Expand children in reverse so the first fresh choice is explored
        // first (DFS). Each later sibling sleeps on the earlier ones, minus
        // the dependent entries along its own first step.
        let mut frames: Vec<Frame> = Vec::with_capacity(fresh.len());
        for &c in &fresh {
            let fp = rt.footprint(c);
            let mut child = rt.clone();
            child
                .execute(c)
                .expect("exploration programs pass static checks");
            let child_sleep: Vec<(Choice, Footprint)> = sleep
                .iter()
                .filter(|(s, sfp)| s.thread() != c.thread() && !sfp.conflicts(&fp))
                .cloned()
                .collect();
            frames.push(Frame {
                rt: child,
                sleep: child_sleep,
                steps: steps + 1,
            });
            sleep.push((c, fp));
        }
        for frame in frames.into_iter().rev() {
            stack.push(frame);
        }
    }
    Ok(Exploration { runs, complete })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Action, ProgramBuilder, ThreadSpec};
    use droidracer_trace::{validate, OpKind, ThreadKind};

    /// Two threads each doing one write: 1 interleaving choice point.
    fn two_writer_program() -> Program {
        let mut p = ProgramBuilder::new();
        let a = p.thread(ThreadSpec::app("a").initial());
        let b = p.thread(ThreadSpec::app("b").initial());
        let loc = p.loc("o", "C.f");
        p.set_thread_body(a, vec![Action::Write(loc)]);
        p.set_thread_body(b, vec![Action::Write(loc)]);
        p.finish().expect("valid")
    }

    #[test]
    fn explores_all_interleavings_of_two_writers() {
        let program = two_writer_program();
        let exploration =
            explore_schedules(&program, &ExploreConfig::default()).expect("explores");
        assert!(exploration.complete);
        // Each thread takes 2 scheduler steps (StartThread; then one Step
        // for the write, after which the trailing exit settles in the same
        // step). Interleavings of two 2-step threads: C(4,2) = 6.
        assert_eq!(exploration.runs.len(), 6);
        // Every trace is feasible, and both write orders occur.
        let mut a_first = false;
        let mut b_first = false;
        for run in &exploration.runs {
            assert_eq!(validate(&run.trace), Ok(()));
            assert!(run.completed);
            let first_writer = run
                .trace
                .ops()
                .iter()
                .find(|op| matches!(op.kind, OpKind::Write { .. }))
                .map(|op| op.thread)
                .expect("writes happen");
            if first_writer.index() == 0 {
                a_first = true;
            } else {
                b_first = true;
            }
        }
        assert!(a_first && b_first);
    }

    #[test]
    fn traces_are_pairwise_distinct() {
        let program = two_writer_program();
        let exploration =
            explore_schedules(&program, &ExploreConfig::default()).expect("explores");
        for (i, a) in exploration.runs.iter().enumerate() {
            for b in &exploration.runs[i + 1..] {
                assert_ne!(a.decisions, b.decisions, "duplicate schedule explored");
            }
        }
    }

    #[test]
    fn join_restricts_the_order() {
        // Parent forks a child, joins it, then writes: the child's write
        // always precedes the parent's read in every explored schedule.
        let mut p = ProgramBuilder::new();
        let main = p.thread(ThreadSpec::app("main").initial());
        let w = p.thread(ThreadSpec::app("w"));
        let loc = p.loc("o", "C.f");
        p.set_thread_body(
            main,
            vec![Action::Fork(w), Action::Join(w), Action::Read(loc)],
        );
        p.set_thread_body(w, vec![Action::Write(loc)]);
        let program = p.finish().expect("valid");
        let exploration =
            explore_schedules(&program, &ExploreConfig::default()).expect("explores");
        assert!(exploration.complete);
        assert!(!exploration.runs.is_empty());
        for run in &exploration.runs {
            let write = run
                .trace
                .ops()
                .iter()
                .position(|op| matches!(op.kind, OpKind::Write { .. }))
                .expect("write");
            let read = run
                .trace
                .ops()
                .iter()
                .position(|op| matches!(op.kind, OpKind::Read { .. }))
                .expect("read");
            assert!(write < read, "join must order the accesses");
        }
    }

    #[test]
    fn reduction_prunes_independent_interleavings() {
        // Two threads writing DIFFERENT locations commute completely: the
        // reduced exploration visits a single execution, the naive one six.
        let mut p = ProgramBuilder::new();
        let a = p.thread(ThreadSpec::app("a").initial());
        let b = p.thread(ThreadSpec::app("b").initial());
        let la = p.loc("o", "C.a");
        let lb = p.loc("o", "C.b");
        p.set_thread_body(a, vec![Action::Write(la)]);
        p.set_thread_body(b, vec![Action::Write(lb)]);
        let program = p.finish().expect("valid");
        let naive = explore_schedules(&program, &ExploreConfig::default()).expect("explores");
        let reduced =
            explore_schedules_reduced(&program, &ExploreConfig::default()).expect("explores");
        assert!(reduced.complete);
        assert_eq!(naive.runs.len(), 6);
        assert!(
            reduced.runs.len() < naive.runs.len(),
            "reduction must prune ({} vs {})",
            reduced.runs.len(),
            naive.runs.len()
        );
    }

    #[test]
    fn reduction_preserves_conflicting_orders() {
        // Two threads writing the SAME location conflict: both write orders
        // must survive the reduction.
        let program = two_writer_program();
        let reduced =
            explore_schedules_reduced(&program, &ExploreConfig::default()).expect("explores");
        assert!(reduced.complete);
        let mut a_first = false;
        let mut b_first = false;
        for run in &reduced.runs {
            assert_eq!(validate(&run.trace), Ok(()));
            let first_writer = run
                .trace
                .ops()
                .iter()
                .find(|op| matches!(op.kind, OpKind::Write { .. }))
                .map(|op| op.thread)
                .expect("writes happen");
            if first_writer.index() == 0 {
                a_first = true;
            } else {
                b_first = true;
            }
        }
        assert!(a_first && b_first, "both conflict orders explored");
        let naive = explore_schedules(&program, &ExploreConfig::default()).expect("explores");
        assert!(reduced.runs.len() <= naive.runs.len());
    }

    #[test]
    fn reduction_preserves_looper_task_orders() {
        // Same shape as `looper_task_orders_are_explored`, reduced: both
        // task orders must still appear.
        let mut p = ProgramBuilder::new();
        let main = p.thread(
            ThreadSpec::app("main")
                .kind(ThreadKind::Main)
                .initial()
                .with_queue(),
        );
        let t1 = p.thread(ThreadSpec::app("p1").initial());
        let t2 = p.thread(ThreadSpec::app("p2").initial());
        let loc = p.loc("o", "C.f");
        let a = p.task("A", vec![Action::Write(loc)]);
        let b2 = p.task("B", vec![Action::Write(loc)]);
        p.set_thread_body(
            t1,
            vec![Action::Post {
                task: a,
                target: main,
                kind: droidracer_trace::PostKind::Plain,
            }],
        );
        p.set_thread_body(
            t2,
            vec![Action::Post {
                task: b2,
                target: main,
                kind: droidracer_trace::PostKind::Plain,
            }],
        );
        let program = p.finish().expect("valid");
        let reduced =
            explore_schedules_reduced(&program, &ExploreConfig::default()).expect("explores");
        assert!(reduced.complete);
        let mut orders = std::collections::BTreeSet::new();
        for run in &reduced.runs {
            let begins: Vec<String> = run
                .trace
                .ops()
                .iter()
                .filter_map(|op| match op.kind {
                    OpKind::Begin { task } => Some(run.trace.names().task_name(task)),
                    _ => None,
                })
                .collect();
            orders.insert(begins);
        }
        assert!(orders.contains(&vec!["A".to_owned(), "B".to_owned()]));
        assert!(orders.contains(&vec!["B".to_owned(), "A".to_owned()]));
    }

    #[test]
    fn schedule_cap_is_respected() {
        let program = two_writer_program();
        let exploration = explore_schedules(
            &program,
            &ExploreConfig {
                max_schedules: 5,
                ..ExploreConfig::default()
            },
        )
        .expect("explores");
        assert_eq!(exploration.runs.len(), 5);
        assert!(!exploration.complete);
    }

    #[test]
    fn looper_task_orders_are_explored() {
        // Two unordered posts to a looper from two threads: both task
        // orders must appear.
        let mut p = ProgramBuilder::new();
        let main = p.thread(
            ThreadSpec::app("main")
                .kind(ThreadKind::Main)
                .initial()
                .with_queue(),
        );
        let t1 = p.thread(ThreadSpec::app("p1").initial());
        let t2 = p.thread(ThreadSpec::app("p2").initial());
        let loc = p.loc("o", "C.f");
        let a = p.task("A", vec![Action::Write(loc)]);
        let b2 = p.task("B", vec![Action::Write(loc)]);
        p.set_thread_body(
            t1,
            vec![Action::Post {
                task: a,
                target: main,
                kind: droidracer_trace::PostKind::Plain,
            }],
        );
        p.set_thread_body(
            t2,
            vec![Action::Post {
                task: b2,
                target: main,
                kind: droidracer_trace::PostKind::Plain,
            }],
        );
        let program = p.finish().expect("valid");
        let exploration =
            explore_schedules(&program, &ExploreConfig::default()).expect("explores");
        assert!(exploration.complete);
        let mut orders = std::collections::BTreeSet::new();
        for run in &exploration.runs {
            let begins: Vec<String> = run
                .trace
                .ops()
                .iter()
                .filter_map(|op| match op.kind {
                    OpKind::Begin { task } => Some(run.trace.names().task_name(task)),
                    _ => None,
                })
                .collect();
            orders.insert(begins);
        }
        assert!(orders.contains(&vec!["A".to_owned(), "B".to_owned()]));
        assert!(orders.contains(&vec!["B".to_owned(), "A".to_owned()]));
    }
}
