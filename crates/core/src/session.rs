//! The analysis session API: [`AnalysisBuilder`] and [`AnalysisError`].
//!
//! Historically the pipeline was driven through a knob soup of free
//! constructors (an `Analysis::run`/`run_mode`/`run_with` family, since
//! removed, plus an `HbConfig` with a merge flag). The builder replaces them with a
//! single entry point that owns every toggle — relation preset, individual
//! rules, node merging, optional semantics validation, race coverage and
//! race explanations — and the observability wiring: every session records
//! a five-phase span tree, and an optional [`ObsSink`] receives the
//! completed profile without any caller threading arguments through the
//! pipeline layers.
//!
//! # Examples
//!
//! ```
//! use droidracer_trace::{ThreadKind, TraceBuilder};
//! use droidracer_core::AnalysisBuilder;
//!
//! let mut b = TraceBuilder::new();
//! let main = b.thread("main", ThreadKind::Main, true);
//! let bg = b.thread("bg", ThreadKind::App, false);
//! let loc = b.loc("obj", "C.state");
//! b.thread_init(main);
//! b.fork(main, bg);
//! b.thread_init(bg);
//! b.write(bg, loc);
//! b.read(main, loc);
//!
//! let analysis = AnalysisBuilder::new()
//!     .validate_first(true)
//!     .analyze(&b.finish())
//!     .expect("valid trace");
//! assert_eq!(analysis.races().len(), 1);
//! // Every session carries its phase spans and engine metrics.
//! assert!(analysis.spans().find("closure").is_some());
//! assert_eq!(
//!     analysis.metrics().counter("hb.rounds"),
//!     Some(analysis.hb().rounds() as u64),
//! );
//! ```

use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use droidracer_obs::{MetricsRegistry, ObsSink, Recorder, SpanRecord};
use droidracer_trace::{validate, Names, Op, Trace, ValidateError};

use crate::classify::classify;
use crate::coverage::race_coverage;
use crate::engine::HappensBefore;
use crate::explain::explain;
use crate::graph::HbGraph;
use crate::race::detect;
use crate::report::{representatives_of, Analysis, AnalysisTiming, ClassifiedRace};
use crate::robust::{Budget, BudgetExhausted, BudgetReason};
use crate::rules::{HbConfig, HbMode, RuleSet};
use crate::stream::{StreamEvent, StreamOptions, StreamOutcome, StreamStats, StreamingAnalysis};

/// Why an analysis session could not produce a result.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The input trace violates the concurrency semantics (only checked
    /// when [`AnalysisBuilder::validate_first`] is enabled).
    Validate(ValidateError),
    /// The session ran out of its resource [`Budget`]; the payload carries
    /// the partial engine counters accumulated before the cutoff.
    BudgetExhausted(BudgetExhausted),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Validate(e) => write!(f, "trace rejected by the semantics checker: {e}"),
            AnalysisError::BudgetExhausted(e) => write!(f, "{e}"),
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::Validate(e) => Some(e),
            AnalysisError::BudgetExhausted(e) => Some(e),
        }
    }
}

impl From<ValidateError> for AnalysisError {
    fn from(e: ValidateError) -> Self {
        AnalysisError::Validate(e)
    }
}

impl From<BudgetExhausted> for AnalysisError {
    fn from(e: BudgetExhausted) -> Self {
        AnalysisError::BudgetExhausted(e)
    }
}

/// Builder-style entry point for one race-detection session.
///
/// See the [module documentation](self) for an example. All setters take
/// and return `self`, so a session reads as one expression; the terminal
/// operation is [`AnalysisBuilder::analyze`].
#[derive(Clone, Default)]
pub struct AnalysisBuilder {
    config: HbConfig,
    validate: bool,
    coverage: bool,
    explain: bool,
    origin: Option<Instant>,
    sink: Option<Arc<dyn ObsSink>>,
    budget: Budget,
    fault_hook: Option<FaultHook>,
    intra_threads: usize,
}

/// A fault-injection callback fired with each phase name as it starts; see
/// [`AnalysisBuilder::fault_hook`].
pub type FaultHook = Arc<dyn Fn(&str) + Send + Sync>;

impl AnalysisBuilder {
    /// A session with the paper's full configuration (all rules, node
    /// merging on, no validation, no extras).
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects a preset happens-before relation (the paper's or one of the
    /// §4.1 baselines). Overwrites any previously set rule set.
    pub fn mode(mut self, mode: HbMode) -> Self {
        self.config.rules = mode.rule_set();
        self
    }

    /// Sets an explicit rule set (fine-grained ablation control).
    pub fn rules(mut self, rules: RuleSet) -> Self {
        self.config.rules = rules;
        self
    }

    /// Replaces the whole engine configuration at once.
    pub fn config(mut self, config: HbConfig) -> Self {
        self.config = config;
        self
    }

    /// Toggles the §6 node-merging optimization (default: on).
    pub fn merge_accesses(mut self, merge: bool) -> Self {
        self.config.merge_accesses = merge;
        self
    }

    /// Runs the Figure 5 semantics checker before analyzing; an invalid
    /// trace fails the session with [`AnalysisError::Validate`] instead of
    /// producing garbage orderings (default: off).
    pub fn validate_first(mut self, validate: bool) -> Self {
        self.validate = validate;
        self
    }

    /// Also computes the race-coverage report (root causes vs covered
    /// reports) and stores it on the result (default: off — coverage
    /// recomputes the relation once per candidate root and is much more
    /// expensive than detection).
    pub fn with_coverage(mut self, coverage: bool) -> Self {
        self.coverage = coverage;
        self
    }

    /// Also renders a happens-before explanation for every representative
    /// race and stores them on the result (default: off).
    pub fn with_explanations(mut self, explain: bool) -> Self {
        self.explain = explain;
        self
    }

    /// Measures the session's spans from an explicit clock origin instead
    /// of the session start. Workers of a parallel fan-out share the
    /// fan-out's origin so every recorded span lands on one timeline and
    /// per-worker subtrees merge without rebasing.
    pub fn clock_origin(mut self, origin: Instant) -> Self {
        self.origin = Some(origin);
        self
    }

    /// Streams the completed profile (span tree + metrics) to `sink` after
    /// every session. The result also carries the same spans/metrics, so a
    /// sink is only needed by callers that aggregate across sessions.
    pub fn sink(mut self, sink: Arc<dyn ObsSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Runs the happens-before closure on `threads` intra-trace workers
    /// (default: 1, the sequential engine). The result is bit-identical for
    /// every thread count — matrices, races, and every engine counter
    /// except the `batches`/`batch_conflicts` scheduling telemetry; see
    /// [`HappensBefore::compute_parallel`]. A limited [`Budget`] forces the
    /// sequential path, keeping budget-poll granularity deterministic.
    pub fn intra_threads(mut self, threads: usize) -> Self {
        self.intra_threads = threads;
        self
    }

    /// Limits the session's resources (default: unlimited). The deadline is
    /// checked between phases and cooperatively inside the happens-before
    /// engine's loops; the op and matrix caps apply to the closure phase.
    /// Exhaustion fails the session with
    /// [`AnalysisError::BudgetExhausted`] — never a hang or OOM.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Installs a fault-injection hook invoked with each phase name as the
    /// phase starts. The fault-injection harness uses this to fire panics
    /// deep inside the pipeline; a hook that panics exercises exactly the
    /// code paths a real defect would.
    pub fn fault_hook(mut self, hook: FaultHook) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// Opens an incremental [`StreamingSession`] with this builder's
    /// relation configuration, budget, observability sink and fault hook.
    /// The builder's [`Budget`](crate::Budget) applies unless `options`
    /// carries its own.
    pub fn streaming(&self, options: StreamOptions) -> StreamingSession {
        let mut options = options;
        if options.budget.is_none() && self.budget.is_limited() {
            options.budget = Some(self.budget);
        }
        let mut rec = match self.origin {
            Some(origin) => Recorder::with_origin(origin),
            None => Recorder::new(),
        };
        rec.start("stream");
        StreamingSession {
            inner: StreamingAnalysis::new(self.config, options),
            rec,
            sink: self.sink.clone(),
            fault_hook: self.fault_hook.clone(),
        }
    }

    /// Fires the fault-injection hook, if any, at a phase boundary.
    fn enter_phase(&self, phase: &str) {
        if let Some(hook) = &self.fault_hook {
            hook(phase);
        }
    }

    /// The between-phase deadline check: cheap, and keeps post-closure
    /// phases (detect, coverage, explanations) from overrunning a deadline
    /// the engine respected.
    fn check_deadline(&self) -> Result<(), AnalysisError> {
        if self.budget.deadline_passed() {
            return Err(AnalysisError::BudgetExhausted(BudgetExhausted {
                reason: BudgetReason::Deadline,
                partial: crate::EngineStats::default(),
                ops_processed: 0,
            }));
        }
        Ok(())
    }

    /// Runs the session: (optional) validation → cancellation stripping +
    /// indexing → graph build + merge → happens-before closure → race
    /// detection + classification (+ optional coverage / explanations).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Validate`] when validation is enabled and
    /// the trace violates the concurrency semantics, and
    /// [`AnalysisError::BudgetExhausted`] when a [`Budget`] limit trips.
    /// Without validation and with the default unlimited budget the session
    /// is infallible.
    pub fn analyze(&self, trace: &Trace) -> Result<Analysis, AnalysisError> {
        let mut rec = match self.origin {
            Some(origin) => Recorder::with_origin(origin),
            None => Recorder::new(),
        };
        let mut timing = AnalysisTiming::default();
        rec.start("analysis");

        if self.validate {
            rec.start("validate");
            self.enter_phase("validate");
            let checked = validate(trace);
            rec.end();
            checked?;
        }

        rec.start("prepare");
        self.enter_phase("prepare");
        let start = Instant::now();
        let trace = trace.without_cancelled();
        let index = trace.index();
        timing.prepare = start.elapsed();
        rec.counter("ops", trace.len() as u64);
        rec.end();
        self.check_deadline()?;

        rec.start("graph");
        self.enter_phase("graph");
        let start = Instant::now();
        let graph = HbGraph::build(&trace, &index, self.config.merge_accesses);
        timing.graph = start.elapsed();
        rec.counter("nodes", graph.node_count() as u64);
        rec.end();

        rec.start("closure");
        self.enter_phase("closure");
        let start = Instant::now();
        let hb = HappensBefore::compute_on_graph_budgeted_parallel(
            &trace,
            &index,
            graph,
            self.config,
            &self.budget,
            self.intra_threads.max(1),
        )?;
        timing.closure = start.elapsed();
        let stats = hb.stats();
        rec.counter("base_edges", stats.base_edges as u64);
        rec.counter("fifo_fired", stats.fifo_fired as u64);
        rec.counter("nopre_fired", stats.nopre_fired as u64);
        rec.counter("trans_st_edges", stats.trans_st_edges as u64);
        rec.counter("trans_mt_edges", stats.trans_mt_edges as u64);
        rec.counter("rounds", stats.rounds as u64);
        rec.counter("word_ops", stats.word_ops);
        rec.counter("worklist_pops", stats.worklist_pops);
        rec.counter("rows_recomputed", stats.rows_recomputed);
        rec.counter("skipped_words", stats.skipped_words);
        rec.end();

        self.check_deadline()?;
        rec.start("detect");
        self.enter_phase("detect");
        let start = Instant::now();
        let raw = detect(&trace, &hb);
        timing.detect = start.elapsed();
        let start = Instant::now();
        let races: Vec<ClassifiedRace> = raw
            .into_iter()
            .map(|race| ClassifiedRace {
                category: classify(&trace, &index, &hb, &race),
                race,
            })
            .collect();
        timing.classify = start.elapsed();
        rec.counter("block_pairs", races.len() as u64);
        rec.counter("representatives", representatives_of(&races).len() as u64);
        rec.end();

        let mut analysis = Analysis::assemble(trace, hb, races, timing);

        if self.coverage {
            self.check_deadline()?;
            rec.start("coverage");
            self.enter_phase("coverage");
            let report = race_coverage(&analysis);
            rec.counter("roots", report.roots.len() as u64);
            rec.counter("covered", report.covered.len() as u64);
            rec.end();
            analysis.set_coverage(report);
        }

        if self.explain {
            self.check_deadline()?;
            rec.start("explain");
            self.enter_phase("explain");
            let explanations: Vec<String> = analysis
                .representatives()
                .iter()
                .map(|cr| explain(&analysis, &cr.race))
                .collect();
            rec.counter("explained", explanations.len() as u64);
            rec.end();
            analysis.set_explanations(explanations);
        }

        rec.end();
        analysis.set_spans(rec.finish_root());
        if let Some(sink) = &self.sink {
            sink.record(analysis.spans(), &analysis.metrics());
        }
        Ok(analysis)
    }
}

/// An instrumented streaming session opened by
/// [`AnalysisBuilder::streaming`]: the incremental engine of
/// [`StreamingAnalysis`] wired to the builder's observability sink,
/// resource budget and fault-injection hook.
///
/// Push operations as they arrive; [`StreamingSession::finish`] closes the
/// stream, records the `stream.*` counters into the session span tree and
/// ships the profile to the configured [`ObsSink`].
pub struct StreamingSession {
    inner: StreamingAnalysis,
    rec: Recorder,
    sink: Option<Arc<dyn ObsSink>>,
    fault_hook: Option<FaultHook>,
}

/// The result of a finished [`StreamingSession`]: the engine outcome plus
/// the recorded observability profile.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// The analysis result (races, counts, matrices, stats, events).
    pub outcome: StreamOutcome,
    /// The session span tree (root `stream`, with the `stream.*` counters
    /// attached).
    pub spans: SpanRecord,
    /// The session metrics: one counter per `stream.*` counter and the
    /// `stream.peak_matrix_bits` / `stream.live_matrix_bits` gauges.
    pub metrics: MetricsRegistry,
}

impl StreamingSession {
    /// Pushes a single operation (a one-op chunk).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::BudgetExhausted`] when a budget limit
    /// trips; the session is poisoned afterwards.
    pub fn push_op(&mut self, op: Op) -> Result<Vec<StreamEvent>, AnalysisError> {
        self.push_chunk(&[op])
    }

    /// Pushes a chunk of operations and returns the race events the chunk
    /// made derivable (or withdrew).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::BudgetExhausted`] when a budget limit
    /// trips; the session is poisoned afterwards.
    pub fn push_chunk(&mut self, ops: &[Op]) -> Result<Vec<StreamEvent>, AnalysisError> {
        if let Some(hook) = &self.fault_hook {
            hook("stream.chunk");
        }
        self.inner.push_chunk(ops).map_err(AnalysisError::from)
    }

    /// Session counters so far.
    pub fn stats(&self) -> StreamStats {
        self.inner.stats()
    }

    /// Number of operations pushed so far.
    pub fn ops_pushed(&self) -> usize {
        self.inner.ops_pushed()
    }

    /// Closes the stream: finalizes the engine, reconciles the standing
    /// emissions, records the `stream.*` counters and ships the profile to
    /// the sink.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::BudgetExhausted`] when a budget limit
    /// trips (or had already tripped).
    pub fn finish(mut self, names: &Names) -> Result<StreamReport, AnalysisError> {
        if let Some(hook) = &self.fault_hook {
            hook("stream.finish");
        }
        self.rec.start("finalize");
        let outcome = self.inner.finish(names)?;
        self.rec.end();
        let s = outcome.stats;
        let counters: [(&str, u64); 9] = [
            ("stream.chunks", s.chunks),
            ("stream.ops", s.ops),
            ("stream.races_emitted", s.races_emitted),
            ("stream.retractions", s.retractions),
            ("stream.late_emissions", s.late_emissions),
            ("stream.rebuilds", s.rebuilds),
            ("stream.retired_rows", s.retired_rows),
            ("stream.word_ops", s.word_ops),
            ("stream.degenerate", u64::from(s.degenerate)),
        ];
        let mut metrics = MetricsRegistry::new();
        for (name, value) in counters {
            self.rec.counter(name, value);
            metrics.counter_add(name, value);
        }
        metrics.gauge_set("stream.peak_matrix_bits", s.peak_matrix_bits as f64);
        metrics.gauge_set("stream.live_matrix_bits", s.live_matrix_bits as f64);
        self.rec.end();
        let spans = self.rec.finish_root();
        if let Some(sink) = &self.sink {
            sink.record(&spans, &metrics);
        }
        Ok(StreamReport {
            outcome,
            spans,
            metrics,
        })
    }
}

impl fmt::Debug for StreamingSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamingSession")
            .field("stats", &self.inner.stats())
            .finish_non_exhaustive()
    }
}

impl fmt::Debug for AnalysisBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnalysisBuilder")
            .field("config", &self.config)
            .field("validate", &self.validate)
            .field("coverage", &self.coverage)
            .field("explain", &self.explain)
            .field("origin", &self.origin)
            .field("sink", &self.sink.as_ref().map(|_| "dyn ObsSink"))
            .field("budget", &self.budget)
            .field("fault_hook", &self.fault_hook.as_ref().map(|_| "dyn Fn"))
            .field("intra_threads", &self.intra_threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidracer_obs::CollectingSink;
    use droidracer_trace::{ThreadKind, TraceBuilder};

    fn racy_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("obj", "C.state");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.write(bg, loc);
        b.read(main, loc);
        b.finish()
    }

    #[test]
    fn streaming_session_matches_batch_and_records_profile() {
        let trace = racy_trace();
        let sink = Arc::new(CollectingSink::new());
        let builder = AnalysisBuilder::new().sink(sink.clone());
        let mut session = builder.streaming(StreamOptions::default());
        for op in trace.ops() {
            session.push_op(*op).expect("unbudgeted");
        }
        let report = session.finish(trace.names()).expect("unbudgeted");
        let batch = builder.analyze(&trace).expect("runs");
        assert_eq!(report.outcome.races, batch.races());
        assert_eq!(report.spans.name, "stream");
        assert!(report.spans.find("finalize").is_some());
        assert_eq!(
            report.metrics.counter("stream.ops"),
            Some(trace.len() as u64)
        );
        assert_eq!(report.metrics.counter("stream.chunks"), Some(trace.len() as u64));
        assert!(report.metrics.gauge("stream.peak_matrix_bits").is_some());
        // Both the batch analyze and the stream finish hit the sink.
        assert_eq!(sink.take().len(), 2);
    }

    #[test]
    fn streaming_session_inherits_builder_budget() {
        let trace = racy_trace();
        let builder = AnalysisBuilder::new().budget(Budget {
            max_matrix_bits: Some(1),
            ..Budget::default()
        });
        let mut session = builder.streaming(StreamOptions::default());
        let mut err = None;
        for op in trace.ops() {
            if let Err(e) = session.push_op(*op) {
                err = Some(e);
                break;
            }
        }
        match err.expect("1-bit budget must trip") {
            AnalysisError::BudgetExhausted(e) => {
                assert_eq!(e.reason, BudgetReason::MatrixBits)
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn streaming_fault_hook_fires_per_chunk() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let trace = racy_trace();
        let chunks = Arc::new(AtomicUsize::new(0));
        let seen = chunks.clone();
        let builder = AnalysisBuilder::new().fault_hook(Arc::new(move |phase: &str| {
            if phase == "stream.chunk" {
                seen.fetch_add(1, Ordering::SeqCst);
            }
        }));
        let mut session = builder.streaming(StreamOptions::default());
        session.push_chunk(trace.ops()).expect("unbudgeted");
        session.finish(trace.names()).expect("unbudgeted");
        assert_eq!(chunks.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn intra_threads_session_is_bit_identical_to_sequential() {
        let trace = racy_trace();
        let base = AnalysisBuilder::new().analyze(&trace).expect("runs");
        for threads in [0, 1, 2, 8] {
            let par = AnalysisBuilder::new()
                .intra_threads(threads)
                .analyze(&trace)
                .expect("runs");
            assert_eq!(par.races(), base.races(), "threads={threads}");
            let (p, b) = (par.hb().stats(), base.hb().stats());
            assert_eq!(p.word_ops, b.word_ops, "threads={threads}");
            assert_eq!(p.rows_recomputed, b.rows_recomputed, "threads={threads}");
            assert_eq!(p.skipped_words, b.skipped_words, "threads={threads}");
            // The span profile structure is thread-count independent too.
            assert_eq!(
                par.spans().structure(),
                base.spans().structure(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn builder_records_pipeline_spans() {
        let analysis = AnalysisBuilder::new().analyze(&racy_trace()).expect("runs");
        let spans = analysis.spans();
        assert_eq!(spans.name, "analysis");
        for phase in ["prepare", "graph", "closure", "detect"] {
            assert!(spans.find(phase).is_some(), "missing phase {phase}");
        }
        assert!(spans.find("validate").is_none(), "validation is opt-in");
    }

    #[test]
    fn validation_catches_malformed_traces() {
        // A task beginning on a thread that never attached a queue.
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let t = b.task("T");
        b.thread_init(main);
        b.begin(main, t);
        let trace = b.finish();
        let err = AnalysisBuilder::new()
            .validate_first(true)
            .analyze(&trace)
            .expect_err("invalid trace must fail");
        assert!(matches!(err, AnalysisError::Validate(_)));
        assert!(err.to_string().contains("semantics"), "{err}");
        // Without validation the session still runs.
        assert!(AnalysisBuilder::new().analyze(&trace).is_ok());
    }

    #[test]
    fn coverage_and_explanations_are_opt_in() {
        let plain = AnalysisBuilder::new().analyze(&racy_trace()).expect("runs");
        assert!(plain.coverage().is_none());
        assert!(plain.explanations().is_empty());

        let rich = AnalysisBuilder::new()
            .with_coverage(true)
            .with_explanations(true)
            .analyze(&racy_trace())
            .expect("runs");
        assert!(rich.coverage().is_some());
        assert_eq!(rich.explanations().len(), rich.representatives().len());
        assert!(rich.spans().find("coverage").is_some());
        assert!(rich.spans().find("explain").is_some());
    }

    #[test]
    fn sink_receives_each_profile() {
        let sink = Arc::new(CollectingSink::new());
        let builder = AnalysisBuilder::new().sink(sink.clone());
        builder.analyze(&racy_trace()).expect("runs");
        builder.analyze(&racy_trace()).expect("runs");
        let profiles = sink.take();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].0.name, "analysis");
        assert!(profiles[0].1.counter("hb.word_ops").is_some());
    }

    #[test]
    fn mode_and_merge_match_legacy_config() {
        let trace = racy_trace();
        for mode in HbMode::all() {
            for merge in [true, false] {
                let config = HbConfig {
                    rules: mode.rule_set(),
                    merge_accesses: merge,
                };
                let via_builder = AnalysisBuilder::new()
                    .mode(mode)
                    .merge_accesses(merge)
                    .analyze(&trace)
                    .expect("runs");
                let via_config = AnalysisBuilder::new()
                    .config(config)
                    .analyze(&trace)
                    .expect("runs");
                assert_eq!(via_builder.races(), via_config.races(), "{mode:?}/{merge}");
                assert_eq!(
                    via_builder.hb().stats(),
                    via_config.hb().stats(),
                    "{mode:?}/{merge}"
                );
            }
        }
    }
}
