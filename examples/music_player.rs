//! The paper's §2 motivating example end-to-end: the music player whose
//! `FileDwTask` checks `isActivityDestroyed` while `onDestroy` may rewrite
//! it.
//!
//! Two scenarios are driven, matching Figures 3 and 4:
//! * PLAY — the user clicks the play button; the flag accesses are all
//!   ordered and no race is reported;
//! * BACK — the user presses BACK; `onDestroy` races with the background
//!   read (multi-threaded) and with the `onPostExecute` read (cross-posted).
//!
//! Run with `cargo run --example music_player`.

use droidracer::core::{AnalysisBuilder, RaceCategory};
use droidracer::framework::{compile, AppBuilder, Stmt, UiEvent, UiEventKind};
use droidracer::sim::{run, RandomScheduler, SimConfig};
use droidracer::trace::validate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The code of Figure 1, in the framework's statement language.
    let mut b = AppBuilder::new("MusicPlayer");
    let dw_file_act = b.activity("DwFileAct");
    let play_activity = b.activity("MusicPlayActivity");
    let flag = b.var("DwFileAct-obj", "isActivityDestroyed");

    // FileDwTask: doInBackground checks the flag per chunk and publishes
    // progress; onPostExecute checks it again before enabling PLAY.
    let file_dw_task = b.async_task(
        "FileDwTask",
        vec![],                                          // onPreExecute: dialog.show()
        vec![
            Stmt::Read(flag),                            // assertTrue(!isActivityDestroyed)
            Stmt::PublishProgress,                       // publishProgress(progress)
            Stmt::Read(flag),
            Stmt::PublishProgress,
        ],
        vec![],                                          // onProgressUpdate: dialog.setProgress
        vec![Stmt::Read(flag)],                          // onPostExecute: assert + enable PLAY
    );
    b.on_create(dw_file_act, vec![Stmt::Write(flag)]);   // field initializer
    b.on_resume(dw_file_act, vec![Stmt::ExecuteAsyncTask(file_dw_task)]);
    b.on_destroy(dw_file_act, vec![Stmt::Write(flag)]);  // isActivityDestroyed = true
    let play_btn = b.button(
        dw_file_act,
        "playBtn",
        vec![Stmt::StartActivity(play_activity)],        // onPlayClick
    );
    let app = b.finish();

    for (label, events) in [
        ("PLAY (Figure 3)", vec![UiEvent::Widget(play_btn, UiEventKind::Click)]),
        ("BACK (Figure 4)", vec![UiEvent::Back]),
    ] {
        println!("=== scenario: {label} ===");
        let compiled = compile(&app, &events)?;
        // Analyze several schedules: the representative run plus a few
        // alternates, as the explorer would.
        let mut total = 0;
        let mut mt = 0;
        let mut cross = 0;
        for seed in 0..8 {
            let result = run(
                &compiled.program,
                &mut RandomScheduler::new(seed),
                &SimConfig::default(),
            )?;
            validate(&result.trace)?;
            let analysis = AnalysisBuilder::new().analyze(&result.trace).unwrap();
            total += analysis.races().len();
            mt += analysis.count(RaceCategory::Multithreaded);
            cross += analysis.count(RaceCategory::CrossPosted);
            if seed == 0 {
                print!("{}", analysis.render());
            }
        }
        println!(
            "over 8 schedules: {total} race reports ({mt} multithreaded, {cross} cross-posted)\n"
        );
    }
    println!("Expected shape: PLAY is race-free; BACK reports the two Figure 4 races.");
    Ok(())
}
