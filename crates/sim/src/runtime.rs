//! The simulator: an interpreter for [`Program`]s implementing the
//! transition system of Figure 5.
//!
//! The runtime enumerates, at every step, the enabled transitions (thread
//! starts, statement steps, task dequeues, environment-event injections) and
//! lets a [`Scheduler`] pick one, emitting core-language operations into a
//! [`Trace`]. Every trace the simulator produces satisfies
//! [`droidracer_trace::validate`] — the property-based tests in this crate
//! and experiment E6 rely on that.

use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;

use droidracer_trace::{
    EventId, LockId, MemLoc, Names, Op, OpKind, PostKind, TaskId, ThreadId,
    Trace,
};

use crate::program::{Action, Injection, Program, ProgramError};
use crate::scheduler::{Choice, Scheduler};

/// Runtime limits for a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Maximum scheduler steps before the run is cut off.
    pub max_steps: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { max_steps: 200_000 }
    }
}

/// A completed (or cut-off) simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The emitted execution trace.
    pub trace: Trace,
    /// Whether the program ran to quiescence: every thread exited or is an
    /// idle looper with an empty queue, and all injections fired.
    pub completed: bool,
    /// Scheduler steps taken.
    pub steps: usize,
    /// The decision vector (index picked at each step); replaying it through
    /// a [`crate::ScriptedScheduler`] reproduces the trace exactly.
    pub decisions: Vec<usize>,
    /// For incomplete runs: one line per thread that is neither exited nor
    /// an idle looper with an empty queue, describing what it waits on.
    pub blocked: Vec<String>,
}

/// A runtime failure (program misuse detected during execution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program failed its static checks.
    InvalidProgram(ProgramError),
    /// A thread released a lock it does not hold.
    ReleaseWithoutHold {
        /// Display name of the thread.
        thread: String,
        /// Display name of the lock.
        lock: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            SimError::ReleaseWithoutHold { thread, lock } => {
                write!(f, "thread `{thread}` releases lock `{lock}` it does not hold")
            }
        }
    }
}

impl Error for SimError {}

impl From<ProgramError> for SimError {
    fn from(e: ProgramError) -> Self {
        SimError::InvalidProgram(e)
    }
}

/// The shared resources one scheduler transition touches (see
/// [`Runtime::footprint`]). Two transitions on different threads are
/// *independent* (they commute) iff their footprints do not conflict.
#[derive(Debug, Clone, Default)]
pub(crate) struct Footprint {
    pub reads: Vec<usize>,
    pub writes: Vec<usize>,
    pub locks: Vec<usize>,
    /// Looper queues (by thread id) touched by posts/begins/ends.
    pub queues: Vec<ThreadId>,
    /// Enable-gated task definitions touched.
    pub enables: Vec<usize>,
    /// Conflicts with everything (conservative).
    pub global: bool,
}

impl Footprint {
    /// Whether two transitions' resource sets conflict.
    pub(crate) fn conflicts(&self, other: &Footprint) -> bool {
        if self.global || other.global {
            return true;
        }
        let hit = |a: &[usize], b: &[usize]| a.iter().any(|x| b.contains(x));
        hit(&self.writes, &other.writes)
            || hit(&self.writes, &other.reads)
            || hit(&self.reads, &other.writes)
            || hit(&self.locks, &other.locks)
            || self.queues.iter().any(|q| other.queues.contains(q))
            || hit(&self.enables, &other.enables)
    }
}

/// Runs `program` under `scheduler`.
///
/// # Errors
///
/// Returns [`SimError`] if the program fails its static checks or misuses a
/// lock at runtime.
///
/// # Examples
///
/// ```
/// use droidracer_sim::{run, ProgramBuilder, RoundRobinScheduler, SimConfig, ThreadSpec, Action};
///
/// let mut p = ProgramBuilder::new();
/// let main = p.thread(ThreadSpec::app("main").initial());
/// let loc = p.loc("obj", "C.x");
/// p.set_thread_body(main, vec![Action::Write(loc), Action::Read(loc)]);
/// let result = run(&p.finish()?, &mut RoundRobinScheduler::new(), &SimConfig::default())?;
/// assert!(result.completed);
/// assert_eq!(result.trace.len(), 4); // init, write, read, exit
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(
    program: &Program,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    program.check()?;
    let mut rt = Runtime::new(program);
    let mut decisions = Vec::new();
    let mut steps = 0;
    while steps < config.max_steps {
        let choices = rt.enumerate_choices();
        if choices.is_empty() {
            break;
        }
        let pick = scheduler.choose(&choices);
        debug_assert!(pick < choices.len(), "scheduler returned invalid index");
        decisions.push(pick);
        rt.execute(choices[pick])?;
        steps += 1;
    }
    let completed = rt.quiescent();
    let blocked = if completed { Vec::new() } else { rt.blocked_summary() };
    Ok(SimResult {
        trace: Trace::from_parts(rt.names, rt.ops),
        completed,
        steps,
        decisions,
    blocked,
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Micro {
    AttachQ,
    Act(usize),
    LoopOnQ,
    Exit,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RtState {
    Created,
    Body { pc: usize },
    LooperIdle,
    InTask { instance: TaskId, def: usize, pc: usize },
    Exited,
}

#[derive(Debug, Clone)]
struct ThreadRt {
    def: usize,
    id: ThreadId,
    state: RtState,
}

#[derive(Debug, Clone, Copy)]
struct QueueEntry {
    instance: TaskId,
    def: usize,
    kind: PostKind,
}

#[derive(Debug, Clone)]
pub(crate) struct Runtime<'p> {
    program: &'p Program,
    names: Names,
    ops: Vec<Op>,
    threads: Vec<ThreadRt>,
    micro: Vec<Vec<Micro>>,
    queues: HashMap<ThreadId, Vec<QueueEntry>>,
    locks: HashMap<LockId, (ThreadId, u32)>,
    lock_ids: Vec<LockId>,
    locs: Vec<MemLoc>,
    event_ids: Vec<Option<EventId>>,
    enabled_pending: Vec<VecDeque<TaskId>>,
    /// Per thread def: indices into `threads` of its instances, in creation
    /// order.
    instances: Vec<Vec<usize>>,
    task_instance_count: Vec<usize>,
    /// Per thread def: pending environment-event injections.
    pending_injections: Vec<VecDeque<Injection>>,
    /// Per looper instance (ThreadId): registered one-shot idle handlers
    /// (already-enabled task instances with their defs).
    idle_handlers: HashMap<ThreadId, VecDeque<(TaskId, usize)>>,
}

impl<'p> Runtime<'p> {
    pub(crate) fn new(program: &'p Program) -> Self {
        let mut names = Names::new();
        let micro = program
            .threads
            .iter()
            .map(|def| {
                let mut m = Vec::with_capacity(def.body.len() + 2);
                if def.spec.queue {
                    m.push(Micro::AttachQ);
                }
                m.extend((0..def.body.len()).map(Micro::Act));
                m.push(if def.spec.queue { Micro::LoopOnQ } else { Micro::Exit });
                m
            })
            .collect();
        let lock_ids = program
            .locks
            .iter()
            .map(|name| names.fresh_lock(name.clone()))
            .collect();
        let mut objects: HashMap<&str, droidracer_trace::ObjectId> = HashMap::new();
        let locs = program
            .locs
            .iter()
            .map(|(obj, field)| {
                let object = *objects
                    .entry(obj.as_str())
                    .or_insert_with(|| names.fresh_object(obj.clone()));
                MemLoc::new(object, names.field(field))
            })
            .collect();
        let event_ids = program
            .tasks
            .iter()
            .map(|t| t.event.as_ref().map(|e| names.fresh_event(e.clone())))
            .collect();
        let mut rt = Runtime {
            program,
            names,
            ops: Vec::new(),
            threads: Vec::new(),
            micro,
            queues: HashMap::new(),
            locks: HashMap::new(),
            lock_ids,
            locs,
            event_ids,
            enabled_pending: vec![VecDeque::new(); program.tasks.len()],
            instances: vec![Vec::new(); program.threads.len()],
            task_instance_count: vec![0; program.tasks.len()],
            pending_injections: vec![VecDeque::new(); program.threads.len()],
            idle_handlers: HashMap::new(),
        };
        for inj in &program.injections {
            rt.pending_injections[inj.poster.0].push_back(*inj);
        }
        for (def_idx, def) in program.threads.iter().enumerate() {
            if def.spec.initial {
                rt.spawn_instance(def_idx, true);
            }
        }
        rt
    }

    fn spawn_instance(&mut self, def_idx: usize, initial: bool) -> usize {
        let def = &self.program.threads[def_idx];
        let count = self.instances[def_idx].len();
        let name = if count == 0 {
            def.spec.name.clone()
        } else {
            format!("{}#{}", def.spec.name, count + 1)
        };
        let id = self.names.fresh_thread(name, def.spec.kind, initial);
        let rt_idx = self.threads.len();
        self.threads.push(ThreadRt {
            def: def_idx,
            id,
            state: RtState::Created,
        });
        self.instances[def_idx].push(rt_idx);
        rt_idx
    }

    fn fresh_task_instance(&mut self, task_def: usize) -> TaskId {
        let def = &self.program.tasks[task_def];
        let count = self.task_instance_count[task_def];
        self.task_instance_count[task_def] = count + 1;
        let name = if count == 0 {
            def.name.clone()
        } else {
            format!("{}#{}", def.name, count + 1)
        };
        self.names.fresh_task(name)
    }

    fn emit(&mut self, thread: ThreadId, kind: OpKind) {
        self.ops.push(Op::new(thread, kind));
    }

    /// Latest running instance (index into `threads`) of a thread def that
    /// has attached its queue.
    fn post_target(&self, def: usize) -> Option<usize> {
        self.instances[def]
            .iter()
            .rev()
            .copied()
            .find(|&i| {
                let t = &self.threads[i];
                matches!(
                    t.state,
                    RtState::Body { .. } | RtState::LooperIdle | RtState::InTask { .. }
                ) && self.queues.contains_key(&t.id)
            })
    }

    fn action_enabled(&self, rt_idx: usize, action: &Action) -> bool {
        let me = self.threads[rt_idx].id;
        match *action {
            Action::Acquire(l) => {
                let lock = self.lock_ids[l.0];
                match self.locks.get(&lock) {
                    Some((holder, _)) => *holder == me,
                    None => true,
                }
            }
            Action::Post { task, target, .. } => {
                if self.program.tasks[task.0].needs_enable
                    && self.enabled_pending[task.0].is_empty()
                {
                    return false;
                }
                self.post_target(target.0).is_some()
            }
            Action::Join(t) => self.instances[t.0]
                .last()
                .is_some_and(|&i| self.threads[i].state == RtState::Exited),
            Action::AddIdle { target, .. } => self.post_target(target.0).is_some(),
            _ => true,
        }
    }

    fn injection_enabled(&self, inj: &Injection) -> bool {
        if self.program.tasks[inj.task.0].needs_enable
            && self.enabled_pending[inj.task.0].is_empty()
        {
            return false;
        }
        self.post_target(inj.target.0).is_some()
    }

    pub(crate) fn enumerate_choices(&self) -> Vec<Choice> {
        let mut choices = Vec::new();
        for (rt_idx, t) in self.threads.iter().enumerate() {
            match t.state {
                RtState::Created => choices.push(Choice::StartThread(t.id)),
                RtState::Body { pc } => {
                    match self.micro[t.def][pc] {
                        Micro::Act(a) => {
                            if self.action_enabled(rt_idx, &self.program.threads[t.def].body[a]) {
                                choices.push(Choice::Step(t.id));
                            }
                        }
                        _ => choices.push(Choice::Step(t.id)),
                    }
                }
                RtState::InTask { def, pc, .. } => {
                    let body = &self.program.tasks[def].body;
                    if pc >= body.len() || self.action_enabled(rt_idx, &body[pc]) {
                        choices.push(Choice::Step(t.id));
                    }
                }
                RtState::LooperIdle => {
                    if let Some(queue) = self.queues.get(&t.id) {
                        // Single pass: an entry is eligible iff no earlier
                        // entry must precede it. Earlier non-delayed entries
                        // block everything behind them; earlier delayed
                        // entries block delayed entries with a timeout no
                        // smaller than theirs.
                        let mut earlier_nondelayed = false;
                        let mut min_earlier_delay: Option<u64> = None;
                        for entry in queue.iter() {
                            let blocked = match entry.kind.delay() {
                                None => earlier_nondelayed,
                                Some(d) => {
                                    earlier_nondelayed
                                        || min_earlier_delay.is_some_and(|m| m <= d)
                                }
                            };
                            if !blocked {
                                choices.push(Choice::BeginTask {
                                    thread: t.id,
                                    task: entry.instance,
                                });
                            }
                            match entry.kind.delay() {
                                None => earlier_nondelayed = true,
                                Some(d) => {
                                    min_earlier_delay =
                                        Some(min_earlier_delay.map_or(d, |m| m.min(d)))
                                }
                            }
                        }
                    }
                    if let Some(inj) = self.pending_injections[t.def].front() {
                        // Injections fire from the def's latest instance.
                        if Some(rt_idx) == self.instances[t.def].last().copied()
                            && self.injection_enabled(inj)
                        {
                            choices.push(Choice::InjectEvent(t.id));
                        }
                    }
                    // Idle handlers fire only when the queue has drained.
                    if self
                        .queues
                        .get(&t.id)
                        .is_some_and(|q| q.is_empty())
                        && self
                            .idle_handlers
                            .get(&t.id)
                            .is_some_and(|h| !h.is_empty())
                    {
                        choices.push(Choice::RunIdle(t.id));
                    }
                }
                RtState::Exited => {}
            }
        }
        choices
    }

    fn rt_index(&self, id: ThreadId) -> usize {
        self.threads
            .iter()
            .position(|t| t.id == id)
            .expect("choice references a live thread")
    }

    pub(crate) fn execute(&mut self, choice: Choice) -> Result<(), SimError> {
        match choice {
            Choice::StartThread(id) => {
                let rt_idx = self.rt_index(id);
                self.emit(id, OpKind::ThreadInit);
                self.threads[rt_idx].state = RtState::Body { pc: 0 };
                self.settle_body(rt_idx);
            }
            Choice::Step(id) => {
                let rt_idx = self.rt_index(id);
                match self.threads[rt_idx].state {
                    RtState::Body { pc } => {
                        match self.micro[self.threads[rt_idx].def][pc] {
                            Micro::AttachQ => {
                                self.queues.insert(id, Vec::new());
                                self.emit(id, OpKind::AttachQ);
                            }
                            Micro::Act(a) => {
                                let action = self.program.threads[self.threads[rt_idx].def].body[a];
                                self.exec_action(rt_idx, &action)?;
                            }
                            Micro::LoopOnQ | Micro::Exit => {
                                unreachable!("settle_body consumes trailing micros")
                            }
                        }
                        self.threads[rt_idx].state = RtState::Body { pc: pc + 1 };
                        self.settle_body(rt_idx);
                    }
                    RtState::InTask { instance, def, pc } => {
                        let body_len = self.program.tasks[def].body.len();
                        if pc >= body_len {
                            self.emit(id, OpKind::End { task: instance });
                            self.threads[rt_idx].state = RtState::LooperIdle;
                        } else {
                            let action = self.program.tasks[def].body[pc];
                            self.exec_action(rt_idx, &action)?;
                            self.threads[rt_idx].state = RtState::InTask {
                                instance,
                                def,
                                pc: pc + 1,
                            };
                        }
                    }
                    _ => unreachable!("Step on a non-running thread"),
                }
            }
            Choice::BeginTask { thread, task } => {
                let rt_idx = self.rt_index(thread);
                let queue = self.queues.get_mut(&thread).expect("looper has a queue");
                let pos = queue
                    .iter()
                    .position(|e| e.instance == task)
                    .expect("task still queued");
                let entry = queue.remove(pos);
                self.emit(thread, OpKind::Begin { task: entry.instance });
                self.threads[rt_idx].state = RtState::InTask {
                    instance: entry.instance,
                    def: entry.def,
                    pc: 0,
                };
            }
            Choice::InjectEvent(thread) => {
                let rt_idx = self.rt_index(thread);
                let def = self.threads[rt_idx].def;
                let inj = self.pending_injections[def]
                    .pop_front()
                    .expect("injection pending");
                self.do_post(rt_idx, inj.task.0, inj.target.0, inj.kind);
            }
            Choice::RunIdle(thread) => {
                let (instance, task_def) = self
                    .idle_handlers
                    .get_mut(&thread)
                    .and_then(VecDeque::pop_front)
                    .expect("idle handler pending");
                // The idle looper posts the handler to itself (one-shot).
                self.emit(
                    thread,
                    OpKind::Post {
                        task: instance,
                        target: thread,
                        kind: PostKind::Plain,
                        event: self.event_ids[task_def],
                    },
                );
                self.queues
                    .get_mut(&thread)
                    .expect("looper has a queue")
                    .push(QueueEntry {
                        instance,
                        def: task_def,
                        kind: PostKind::Plain,
                    });
            }
        }
        Ok(())
    }

    /// After advancing a body pc, consume a trailing `LoopOnQ`/`Exit` micro
    /// immediately so loopers become idle and plain threads exit without
    /// needing an extra scheduler step.
    fn settle_body(&mut self, rt_idx: usize) {
        let (def, id) = (self.threads[rt_idx].def, self.threads[rt_idx].id);
        if let RtState::Body { pc } = self.threads[rt_idx].state {
            match self.micro[def].get(pc) {
                Some(Micro::LoopOnQ) => {
                    self.emit(id, OpKind::LoopOnQ);
                    self.threads[rt_idx].state = RtState::LooperIdle;
                }
                Some(Micro::Exit) => {
                    self.emit(id, OpKind::ThreadExit);
                    self.threads[rt_idx].state = RtState::Exited;
                }
                _ => {}
            }
        }
    }

    fn do_post(&mut self, rt_idx: usize, task_def: usize, target_def: usize, kind: PostKind) {
        let me = self.threads[rt_idx].id;
        let instance = if self.program.tasks[task_def].needs_enable {
            self.enabled_pending[task_def]
                .pop_front()
                .expect("post offered only when enabled instance pending")
        } else {
            self.fresh_task_instance(task_def)
        };
        let target_rt = self
            .post_target(target_def)
            .expect("post offered only when target available");
        let target_id = self.threads[target_rt].id;
        self.emit(
            me,
            OpKind::Post {
                task: instance,
                target: target_id,
                kind,
                event: self.event_ids[task_def],
            },
        );
        let queue = self
            .queues
            .get_mut(&target_id)
            .expect("post target has a queue");
        let entry = QueueEntry {
            instance,
            def: task_def,
            kind,
        };
        if matches!(kind, PostKind::Front) {
            queue.insert(0, entry);
        } else {
            queue.push(entry);
        }
    }

    fn exec_action(&mut self, rt_idx: usize, action: &Action) -> Result<(), SimError> {
        let me = self.threads[rt_idx].id;
        match *action {
            Action::Read(l) => self.emit(me, OpKind::Read { loc: self.locs[l.0] }),
            Action::Write(l) => self.emit(me, OpKind::Write { loc: self.locs[l.0] }),
            Action::Acquire(l) => {
                let lock = self.lock_ids[l.0];
                let holder = self.locks.entry(lock).or_insert((me, 0));
                debug_assert_eq!(holder.0, me, "acquire offered only when free or re-entrant");
                holder.1 += 1;
                self.emit(me, OpKind::Acquire { lock });
            }
            Action::Release(l) => {
                let lock = self.lock_ids[l.0];
                match self.locks.get_mut(&lock) {
                    Some((holder, count)) if *holder == me && *count > 0 => {
                        *count -= 1;
                        if *count == 0 {
                            self.locks.remove(&lock);
                        }
                        self.emit(me, OpKind::Release { lock });
                    }
                    _ => {
                        return Err(SimError::ReleaseWithoutHold {
                            thread: self.names.thread_name(me),
                            lock: self.names.lock_name(lock),
                        })
                    }
                }
            }
            Action::Post { task, target, kind } => {
                self.do_post(rt_idx, task.0, target.0, kind);
            }
            Action::Enable(task) => {
                let instance = self.fresh_task_instance(task.0);
                self.enabled_pending[task.0].push_back(instance);
                self.emit(me, OpKind::Enable { task: instance });
            }
            Action::AddIdle { task, target } => {
                // Registration mints and enables the instance; the looper
                // runs it when its queue drains (see Choice::RunIdle).
                if let Some(target_rt) = self.post_target(target.0) {
                    let target_id = self.threads[target_rt].id;
                    let instance = self.fresh_task_instance(task.0);
                    self.emit(me, OpKind::Enable { task: instance });
                    self.idle_handlers
                        .entry(target_id)
                        .or_default()
                        .push_back((instance, task.0));
                }
            }
            Action::Cancel(task) => {
                // Remove the oldest pending instance of the def, if any.
                // Instance ids are minted in post order, so the minimum
                // pending id *is* the oldest; selecting by id (rather than
                // by queue iteration order, which for a HashMap varies per
                // process) keeps cancellation — and therefore decision-
                // vector replay — deterministic.
                let found = self
                    .queues
                    .values()
                    .flatten()
                    .filter(|entry| entry.def == task.0)
                    .map(|entry| entry.instance)
                    .min();
                if let Some(instance) = found {
                    for queue in self.queues.values_mut() {
                        if let Some(pos) = queue.iter().position(|e| e.instance == instance) {
                            queue.remove(pos);
                            break;
                        }
                    }
                    self.emit(me, OpKind::Cancel { task: instance });
                }
            }
            Action::Fork(t) => {
                let child_rt = self.spawn_instance(t.0, false);
                let child_id = self.threads[child_rt].id;
                self.emit(me, OpKind::Fork { child: child_id });
            }
            Action::Join(t) => {
                let child_rt = *self.instances[t.0].last().expect("join offered only when forked");
                let child_id = self.threads[child_rt].id;
                self.emit(me, OpKind::Join { child: child_id });
            }
        }
        Ok(())
    }

    /// Finalizes this runtime's emitted operations into a [`Trace`].
    pub(crate) fn into_trace(self) -> Trace {
        Trace::from_parts(self.names, self.ops)
    }

    /// The shared resources the next transition of `choice` touches, used by
    /// the sleep-set reduction to decide (in)dependence of transitions.
    /// Over-approximates towards dependence (`Global` conflicts with
    /// everything), which preserves soundness of the reduction.
    pub(crate) fn footprint(&self, choice: Choice) -> Footprint {
        let mut f = Footprint::default();
        match choice {
            // Thread start interacts with post-target resolution and joins.
            Choice::StartThread(_) => f.global = true,
            Choice::BeginTask { thread, .. } | Choice::RunIdle(thread) => {
                f.queues.push(thread);
            }
            Choice::InjectEvent(thread) => {
                let rt_idx = self.rt_index(thread);
                let def = self.threads[rt_idx].def;
                if let Some(inj) = self.pending_injections[def].front() {
                    if let Some(target_rt) = self.post_target(inj.target.0) {
                        f.queues.push(self.threads[target_rt].id);
                    } else {
                        f.global = true;
                    }
                    f.enables.push(inj.task.0);
                } else {
                    f.global = true;
                }
            }
            Choice::Step(thread) => {
                let rt_idx = self.rt_index(thread);
                let action = match self.threads[rt_idx].state {
                    RtState::Body { pc } => match self.micro[self.threads[rt_idx].def][pc] {
                        Micro::AttachQ | Micro::LoopOnQ | Micro::Exit => {
                            // Queue attachment/looping gates posts to this
                            // thread; exit gates joins.
                            f.global = true;
                            return f;
                        }
                        Micro::Act(a) => Some(self.program.threads[self.threads[rt_idx].def].body[a]),
                    },
                    RtState::InTask { def, pc, .. } => {
                        let body = &self.program.tasks[def].body;
                        if pc >= body.len() {
                            // End: frees the looper to dequeue.
                            f.queues.push(thread);
                            return f;
                        }
                        Some(body[pc])
                    }
                    _ => None,
                };
                match action {
                    Some(Action::Read(l)) => f.reads.push(l.0),
                    Some(Action::Write(l)) => f.writes.push(l.0),
                    Some(Action::Acquire(l)) | Some(Action::Release(l)) => f.locks.push(l.0),
                    Some(Action::Post { task, target, .. }) => {
                        if let Some(target_rt) = self.post_target(target.0) {
                            f.queues.push(self.threads[target_rt].id);
                        } else {
                            f.global = true;
                        }
                        if self.program.tasks[task.0].needs_enable {
                            f.enables.push(task.0);
                        }
                    }
                    Some(Action::Enable(t)) => f.enables.push(t.0),
                    Some(Action::AddIdle { task, target }) => {
                        f.enables.push(task.0);
                        if let Some(target_rt) = self.post_target(target.0) {
                            f.queues.push(self.threads[target_rt].id);
                        } else {
                            f.global = true;
                        }
                    }
                    // Cancellation scans every queue; fork/join manipulate
                    // the thread sets that post-target resolution reads.
                    Some(Action::Cancel(_)) | Some(Action::Fork(_)) | Some(Action::Join(_)) => {
                        f.global = true
                    }
                    None => f.global = true,
                }
            }
        }
        f
    }

    /// Human-readable description of every thread that has not reached
    /// quiescence — the debugging aid for runs that stall (e.g. a post
    /// waiting for an `enable` that never comes).
    fn blocked_summary(&self) -> Vec<String> {
        let mut out = Vec::new();
        for t in &self.threads {
            let name = self.names.thread_name(t.id);
            match t.state {
                RtState::Exited => {}
                RtState::Created => out.push(format!("{name}: created but never scheduled")),
                RtState::LooperIdle => {
                    let pending = self
                        .queues
                        .get(&t.id)
                        .map(|q| q.len())
                        .unwrap_or(0);
                    if pending > 0 {
                        out.push(format!("{name}: idle looper with {pending} queued task(s)"));
                    }
                }
                RtState::Body { pc } => {
                    let what = match self.micro[t.def].get(pc) {
                        Some(Micro::Act(a)) => {
                            format!("blocked at body action {a}: {:?}", self.program.threads[t.def].body[*a])
                        }
                        other => format!("at micro {other:?}"),
                    };
                    out.push(format!("{name}: {what}"));
                }
                RtState::InTask { instance, def, pc } => {
                    let task = self.names.task_name(instance);
                    let what = self
                        .program
                        .tasks[def]
                        .body
                        .get(pc)
                        .map(|a| format!("{a:?}"))
                        .unwrap_or_else(|| "about to end".to_owned());
                    out.push(format!("{name}: in task `{task}`, blocked at {what}"));
                }
            }
        }
        for (def_idx, pending) in self.pending_injections.iter().enumerate() {
            if !pending.is_empty() {
                out.push(format!(
                    "{}: {} pending environment injection(s)",
                    self.program.threads[def_idx].spec.name,
                    pending.len()
                ));
            }
        }
        out
    }

    pub(crate) fn quiescent(&self) -> bool {
        let threads_done = self.threads.iter().all(|t| match t.state {
            RtState::Exited => true,
            RtState::LooperIdle => self
                .queues
                .get(&t.id)
                .map(|q| q.is_empty())
                .unwrap_or(true),
            _ => false,
        });
        let injections_done = self.pending_injections.iter().all(VecDeque::is_empty);
        let idle_done = self.idle_handlers.values().all(VecDeque::is_empty);
        threads_done && injections_done && idle_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgramBuilder, ThreadSpec};
    use crate::scheduler::{RandomScheduler, RoundRobinScheduler, ScriptedScheduler};
    use droidracer_trace::{validate, ThreadKind};

    /// A small two-thread, one-looper program exercising most features.
    fn sample_program() -> Program {
        let mut p = ProgramBuilder::new();
        let main = p.thread(
            ThreadSpec::app("main")
                .kind(ThreadKind::Main)
                .initial()
                .with_queue(),
        );
        let bg = p.thread(ThreadSpec::app("bg"));
        let flag = p.loc("act", "Act.destroyed");
        let m = p.lock("mutex");
        let update = p.task("onUpdate", vec![Action::Read(flag)]);
        let destroy = p.task("onDestroy", vec![Action::Write(flag)]);
        p.require_enable(destroy);
        let launch = p.task(
            "LAUNCH",
            vec![
                Action::Write(flag),
                Action::Fork(bg),
                Action::Enable(destroy),
            ],
        );
        p.set_thread_body(
            main,
            vec![Action::Post {
                task: launch,
                target: main,
                kind: PostKind::Plain,
            }],
        );
        p.set_thread_body(
            bg,
            vec![
                Action::Acquire(m),
                Action::Read(flag),
                Action::Release(m),
                Action::Post {
                    task: update,
                    target: main,
                    kind: PostKind::Plain,
                },
                Action::Post {
                    task: destroy,
                    target: main,
                    kind: PostKind::Plain,
                },
            ],
        );
        p.finish().expect("valid program")
    }

    #[test]
    fn round_robin_run_completes_and_validates() {
        let result = run(
            &sample_program(),
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("run succeeds");
        assert!(result.completed, "trace:\n{}", result.trace);
        assert_eq!(validate(&result.trace), Ok(()), "trace:\n{}", result.trace);
        // init + attach + loop + post + begin/end×3 + bodies…
        assert!(result.trace.len() > 15);
    }

    #[test]
    fn random_runs_validate_across_seeds() {
        let program = sample_program();
        for seed in 0..40 {
            let result = run(
                &program,
                &mut RandomScheduler::new(seed),
                &SimConfig::default(),
            )
            .expect("run succeeds");
            assert_eq!(
                validate(&result.trace),
                Ok(()),
                "seed {seed}, trace:\n{}",
                result.trace
            );
            assert!(result.completed, "seed {seed}");
        }
    }

    #[test]
    fn decision_replay_reproduces_trace() {
        let program = sample_program();
        let original = run(
            &program,
            &mut RandomScheduler::new(1234),
            &SimConfig::default(),
        )
        .expect("run succeeds");
        let replayed = run(
            &program,
            &mut ScriptedScheduler::new(original.decisions.clone()),
            &SimConfig::default(),
        )
        .expect("replay succeeds");
        assert_eq!(replayed.trace.ops(), original.trace.ops());
        assert_eq!(replayed.decisions, original.decisions);
    }

    #[test]
    fn max_steps_cuts_off_run() {
        let result = run(
            &sample_program(),
            &mut RoundRobinScheduler::new(),
            &SimConfig { max_steps: 5 },
        )
        .expect("run succeeds");
        assert!(!result.completed);
        assert_eq!(result.steps, 5);
        // A cut-off trace is still a feasible prefix.
        assert_eq!(validate(&result.trace), Ok(()));
    }

    #[test]
    fn injections_fire_from_idle_looper() {
        let mut p = ProgramBuilder::new();
        let main = p.thread(
            ThreadSpec::app("main")
                .kind(ThreadKind::Main)
                .initial()
                .with_queue(),
        );
        let loc = p.loc("o", "C.f");
        let click = p.event_task("onClick", "click:btn", vec![Action::Write(loc)]);
        p.inject(Injection {
            poster: main,
            task: click,
            target: main,
            kind: PostKind::Plain,
        });
        let program = p.finish().expect("valid");
        let result = run(
            &program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("run succeeds");
        assert!(result.completed);
        assert_eq!(validate(&result.trace), Ok(()));
        // The injected post is executed by main itself and carries the event.
        let post = result
            .trace
            .ops()
            .iter()
            .find(|op| matches!(op.kind, OpKind::Post { .. }))
            .expect("post emitted");
        assert!(matches!(post.kind, OpKind::Post { event: Some(_), .. }));
    }

    #[test]
    fn enable_gates_posting() {
        // The injection's task needs an enable that only the first task
        // provides: the run must still complete, with enable before post.
        let mut p = ProgramBuilder::new();
        let main = p.thread(
            ThreadSpec::app("main")
                .kind(ThreadKind::Main)
                .initial()
                .with_queue(),
        );
        let loc = p.loc("o", "C.f");
        let destroy = p.task("onDestroy", vec![Action::Write(loc)]);
        p.require_enable(destroy);
        let launch = p.task("LAUNCH", vec![Action::Write(loc), Action::Enable(destroy)]);
        p.set_thread_body(
            main,
            vec![Action::Post {
                task: launch,
                target: main,
                kind: PostKind::Plain,
            }],
        );
        p.inject(Injection {
            poster: main,
            task: destroy,
            target: main,
            kind: PostKind::Plain,
        });
        let program = p.finish().expect("valid");
        for seed in 0..20 {
            let result = run(
                &program,
                &mut RandomScheduler::new(seed),
                &SimConfig::default(),
            )
            .expect("run succeeds");
            assert!(result.completed, "seed {seed}");
            assert_eq!(validate(&result.trace), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn cancel_removes_pending_task() {
        let mut p = ProgramBuilder::new();
        let main = p.thread(
            ThreadSpec::app("main")
                .kind(ThreadKind::Main)
                .initial()
                .with_queue(),
        );
        let loc = p.loc("o", "C.f");
        let victim = p.task("victim", vec![Action::Write(loc)]);
        // Post delayed so the poster can cancel before it begins: the looper
        // posts victim (delayed), then cancels it from the same body.
        p.set_thread_body(
            main,
            vec![
                Action::Post {
                    task: victim,
                    target: main,
                    kind: PostKind::Delayed(1000),
                },
                Action::Cancel(victim),
            ],
        );
        let program = p.finish().expect("valid");
        let result = run(
            &program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("run succeeds");
        assert!(result.completed);
        assert_eq!(validate(&result.trace), Ok(()));
        assert!(result
            .trace
            .ops()
            .iter()
            .any(|op| matches!(op.kind, OpKind::Cancel { .. })));
        assert!(!result
            .trace
            .ops()
            .iter()
            .any(|op| matches!(op.kind, OpKind::Begin { .. })));
    }

    #[test]
    fn idle_handler_runs_after_queue_drains() {
        let mut p = ProgramBuilder::new();
        let main = p.thread(
            ThreadSpec::app("main")
                .kind(ThreadKind::Main)
                .initial()
                .with_queue(),
        );
        let loc = p.loc("o", "C.f");
        let busy = p.task("busy", vec![Action::Write(loc)]);
        let idle = p.task("onIdle", vec![Action::Read(loc)]);
        p.set_thread_body(
            main,
            vec![
                Action::AddIdle { task: idle, target: main },
                Action::Post {
                    task: busy,
                    target: main,
                    kind: PostKind::Plain,
                },
            ],
        );
        let program = p.finish().expect("valid");
        for seed in 0..20 {
            let result = run(
                &program,
                &mut crate::scheduler::RandomScheduler::new(seed),
                &SimConfig::default(),
            )
            .expect("runs");
            assert!(result.completed, "seed {seed}:\n{}", result.trace);
            assert_eq!(validate(&result.trace), Ok(()), "seed {seed}");
            // The idle handler runs strictly after the queued task: its
            // begin comes last, and registration enabled it beforehand.
            let names = result.trace.names();
            let begins: Vec<String> = result
                .trace
                .ops()
                .iter()
                .filter_map(|op| match op.kind {
                    OpKind::Begin { task } => Some(names.task_name(task)),
                    _ => None,
                })
                .collect();
            assert_eq!(begins, vec!["busy".to_owned(), "onIdle".to_owned()], "seed {seed}");
            let enable_pos = result
                .trace
                .ops()
                .iter()
                .position(|op| matches!(op.kind, OpKind::Enable { task } if names.task_name(task) == "onIdle"))
                .expect("registration emits enable");
            let post_pos = result
                .trace
                .ops()
                .iter()
                .position(|op| matches!(op.kind, OpKind::Post { task, .. } if names.task_name(task) == "onIdle"))
                .expect("idle handler posted");
            assert!(enable_pos < post_pos, "seed {seed}");
        }
    }

    #[test]
    fn incomplete_runs_report_blocked_threads() {
        // A post gated on an enable that never happens: the poster stalls
        // and the result says so.
        let mut p = ProgramBuilder::new();
        let main = p.thread(
            ThreadSpec::app("main")
                .kind(ThreadKind::Main)
                .initial()
                .with_queue(),
        );
        let poster = p.thread(ThreadSpec::app("poster").initial());
        let never = p.task("never", vec![]);
        p.require_enable(never);
        p.set_thread_body(
            poster,
            vec![Action::Post {
                task: never,
                target: main,
                kind: PostKind::Plain,
            }],
        );
        let program = p.finish().expect("valid");
        let result = run(
            &program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("runs");
        assert!(!result.completed);
        assert!(
            result.blocked.iter().any(|b| b.contains("poster")),
            "{:?}",
            result.blocked
        );
        // Completed runs report nothing.
        let mut p = ProgramBuilder::new();
        let solo = p.thread(ThreadSpec::app("solo").initial());
        let loc = p.loc("o", "C.f");
        p.set_thread_body(solo, vec![Action::Write(loc)]);
        let result = run(
            &p.finish().expect("valid"),
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("runs");
        assert!(result.completed);
        assert!(result.blocked.is_empty());
    }

    #[test]
    fn release_without_hold_is_reported() {
        let mut p = ProgramBuilder::new();
        let main = p.thread(ThreadSpec::app("main").initial());
        let m = p.lock("m");
        p.set_thread_body(main, vec![Action::Release(m)]);
        let program = p.finish().expect("structurally valid");
        let err = run(
            &program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::ReleaseWithoutHold { .. }));
    }

    #[test]
    fn contended_lock_blocks_until_released() {
        let mut p = ProgramBuilder::new();
        let a = p.thread(ThreadSpec::app("a").initial());
        let c = p.thread(ThreadSpec::app("c").initial());
        let m = p.lock("m");
        let loc = p.loc("o", "C.f");
        let body = vec![
            Action::Acquire(m),
            Action::Write(loc),
            Action::Release(m),
        ];
        p.set_thread_body(a, body.clone());
        p.set_thread_body(c, body);
        let program = p.finish().expect("valid");
        for seed in 0..30 {
            let result = run(
                &program,
                &mut RandomScheduler::new(seed),
                &SimConfig::default(),
            )
            .expect("run succeeds");
            assert!(result.completed, "seed {seed}");
            assert_eq!(validate(&result.trace), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn fork_join_lifecycle_roundtrip() {
        let mut p = ProgramBuilder::new();
        let main = p.thread(ThreadSpec::app("main").initial());
        let worker = p.thread(ThreadSpec::app("worker"));
        let loc = p.loc("o", "C.f");
        p.set_thread_body(
            main,
            vec![
                Action::Write(loc),
                Action::Fork(worker),
                Action::Join(worker),
                Action::Read(loc),
            ],
        );
        p.set_thread_body(worker, vec![Action::Write(loc)]);
        let program = p.finish().expect("valid");
        for seed in 0..20 {
            let result = run(
                &program,
                &mut RandomScheduler::new(seed),
                &SimConfig::default(),
            )
            .expect("run succeeds");
            assert!(result.completed, "seed {seed}");
            assert_eq!(validate(&result.trace), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn repeated_fork_names_instances() {
        let mut p = ProgramBuilder::new();
        let main = p.thread(ThreadSpec::app("main").initial());
        let worker = p.thread(ThreadSpec::app("worker"));
        p.set_thread_body(
            main,
            vec![
                Action::Fork(worker),
                Action::Join(worker),
                Action::Fork(worker),
                Action::Join(worker),
            ],
        );
        p.set_thread_body(worker, vec![]);
        let program = p.finish().expect("valid");
        let result = run(
            &program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("run succeeds");
        assert!(result.completed);
        let names: Vec<String> = result
            .trace
            .names()
            .threads()
            .map(|(_, d)| d.name.clone())
            .collect();
        assert!(names.contains(&"worker".to_owned()));
        assert!(names.contains(&"worker#2".to_owned()));
    }

    #[test]
    fn front_post_runs_first() {
        let mut p = ProgramBuilder::new();
        let main = p.thread(
            ThreadSpec::app("main")
                .kind(ThreadKind::Main)
                .initial()
                .with_queue(),
        );
        let loc = p.loc("o", "C.f");
        let slow = p.task("slow", vec![Action::Read(loc)]);
        let urgent = p.task("urgent", vec![Action::Write(loc)]);
        p.set_thread_body(
            main,
            vec![
                Action::Post {
                    task: slow,
                    target: main,
                    kind: PostKind::Plain,
                },
                Action::Post {
                    task: urgent,
                    target: main,
                    kind: PostKind::Front,
                },
            ],
        );
        let program = p.finish().expect("valid");
        let result = run(
            &program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("run succeeds");
        assert_eq!(validate(&result.trace), Ok(()));
        let begins: Vec<String> = result
            .trace
            .ops()
            .iter()
            .filter_map(|op| match op.kind {
                OpKind::Begin { task } => Some(result.trace.names().task_name(task)),
                _ => None,
            })
            .collect();
        assert_eq!(begins, vec!["urgent".to_owned(), "slow".to_owned()]);
    }
}
