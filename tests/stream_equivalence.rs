//! Differential suite for the streaming engine: **streamed ≡ batch**.
//!
//! The streaming analysis maintains the happens-before relation
//! column-by-column as operations arrive; the batch engine saturates
//! row-by-row over the whole trace. Both compute the same least fixpoint,
//! so for every corpus trace, every chunk-size partition of its op
//! sequence, and every rule preset the streamed session must reproduce
//! the batch race set and classification exactly — and, when the session
//! does not summarize (retire columns into digests), the reconstructed
//! `st`/`mt` matrices must be *bit-identical* to the batch matrices.

use droidracer::apps::corpus;
use droidracer::core::{
    classify, detect, ClassifiedRace, HappensBefore, HbConfig, HbMode, StreamOptions,
    StreamOutcome, StreamingAnalysis,
};
use droidracer::trace::Trace;

/// Batch result over the cancellation-filtered trace: classified races and
/// the closed relation.
fn batch(trace: &Trace, config: HbConfig) -> (Vec<ClassifiedRace>, HappensBefore) {
    let filtered = trace.without_cancelled();
    let hb = HappensBefore::compute(&filtered, config);
    let index = filtered.index();
    let races = detect(&filtered, &hb)
        .into_iter()
        .map(|race| ClassifiedRace {
            category: classify(&filtered, &index, &hb, &race),
            race,
        })
        .collect();
    (races, hb)
}

/// Streams `trace` in `chunk`-sized pieces.
fn stream(trace: &Trace, config: HbConfig, options: StreamOptions, chunk: usize) -> StreamOutcome {
    let mut s = StreamingAnalysis::new(config, options);
    for piece in trace.ops().chunks(chunk.max(1)) {
        s.push_chunk(piece).expect("unbudgeted stream cannot exhaust");
    }
    s.finish(trace.names()).expect("unbudgeted stream cannot exhaust")
}

/// Asserts one streamed partition reproduces the batch result. Summarized
/// sessions compare the race set and per-category totals (their matrices
/// are partially retired); unsummarized sessions also compare the
/// matrices bit for bit.
fn assert_equiv(trace: &Trace, config: HbConfig, chunk: usize, summarize: bool, context: &str) {
    let (expected, hb) = batch(trace, config);
    let options = StreamOptions {
        summarize,
        window: 32,
        ..StreamOptions::default()
    };
    let out = stream(trace, config, options, chunk);
    assert_eq!(
        out.races, expected,
        "{context}: race set diverges (chunk={chunk}, summarize={summarize})"
    );
    let mut counts = droidracer::core::CategoryCounts::default();
    for r in &expected {
        counts.add(r.category, 1);
    }
    assert_eq!(
        out.counts, counts,
        "{context}: classification totals diverge (chunk={chunk})"
    );
    if summarize {
        assert!(out.matrices.is_none(), "{context}: summarized session kept matrices");
    } else {
        let (st, mt) = out.matrices.as_ref().expect("unsummarized session returns matrices");
        let (bst, bmt) = hb.relation_matrices();
        assert_eq!(st, bst, "{context}: st matrix diverges (chunk={chunk})");
        assert_eq!(
            mt.as_ref(),
            bmt,
            "{context}: mt matrix diverges (chunk={chunk})"
        );
    }
    // Cancel-free corpus entries must emit every race before `finish`
    // reconciliation and never retract; entries with cancels may rebuild.
    if out.stats.rebuilds == 0 {
        assert_eq!(out.stats.late_emissions, 0, "{context}: late emissions");
        assert_eq!(out.stats.retractions, 0, "{context}: retractions");
    }
    assert!(!out.stats.degenerate, "{context}: corpus traces are well-formed");
}

/// Every corpus app at the production chunk size, with and without
/// summarization.
#[test]
fn corpus_streamed_equals_batch_chunk64() {
    for entry in corpus() {
        let trace = entry.generate_trace().expect("corpus entries generate");
        assert_equiv(&trace, HbConfig::new(), 64, false, entry.name);
        assert_equiv(&trace, HbConfig::new(), 64, true, entry.name);
    }
}

/// Every corpus app pushed as one whole-trace chunk (the degenerate
/// partition: a single boundary, like a batch run through the streaming
/// code path).
#[test]
fn corpus_streamed_equals_batch_whole_chunk() {
    for entry in corpus() {
        let trace = entry.generate_trace().expect("corpus entries generate");
        assert_equiv(&trace, HbConfig::new(), trace.len().max(1), false, entry.name);
    }
}

/// Fine-grained partitions (chunk sizes 1 and 7) across all five rule
/// presets and both summarization settings. Op-at-a-time streaming is the
/// adversarial partition — every boundary between two dependent ops is
/// exercised — so this sweep runs on the corpus entries small enough for
/// 20 debug-build closures each.
#[test]
fn corpus_small_entries_fine_chunks_all_modes() {
    let mut checked = 0usize;
    for entry in corpus() {
        let trace = entry.generate_trace().expect("corpus entries generate");
        if trace.len() > 12_000 {
            continue;
        }
        for mode in HbMode::all() {
            let config = HbConfig::for_mode(mode);
            for chunk in [1usize, 7] {
                for summarize in [false, true] {
                    let context = format!("{} / {mode:?}", entry.name);
                    assert_equiv(&trace, config, chunk, summarize, &context);
                }
            }
        }
        checked += 1;
    }
    assert!(checked >= 4, "the fine-chunk sweep must cover several apps");
}

/// Node merging off: access ops become individual nodes, shifting every
/// block boundary the emitter sees.
#[test]
fn corpus_streamed_equals_batch_without_merging() {
    for entry in corpus() {
        let trace = entry.generate_trace().expect("corpus entries generate");
        if trace.len() > 12_000 {
            continue;
        }
        assert_equiv(&trace, HbConfig::new().without_merging(), 7, false, entry.name);
    }
}

/// Summarization bounds live memory: on the larger corpus entries the
/// windowed session must retire columns and keep its peak matrix
/// footprint below the batch engine's dense `2·n²` bits.
#[test]
fn summarization_bounds_memory_on_large_entries() {
    for entry in corpus() {
        let trace = entry.generate_trace().expect("corpus entries generate");
        if trace.len() < 20_000 {
            continue;
        }
        let config = HbConfig::new();
        let options = StreamOptions {
            summarize: true,
            window: 64,
            ..StreamOptions::default()
        };
        let out = stream(&trace, config, options, 64);
        let (_, hb) = batch(&trace, config);
        let n = hb.graph().node_count() as u64;
        let batch_bits = 2 * n * n;
        assert!(out.stats.retired_rows > 0, "{}: nothing retired", entry.name);
        assert!(
            out.stats.peak_matrix_bits < batch_bits,
            "{}: streamed peak {} bits ≥ batch dense {} bits",
            entry.name,
            out.stats.peak_matrix_bits,
            batch_bits
        );
    }
}
