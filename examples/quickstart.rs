//! Quickstart: build a tiny app model, drive one UI event, detect a race.
//!
//! Run with `cargo run --example quickstart`.

use droidracer::core::AnalysisBuilder;
use droidracer::framework::{compile, AppBuilder, Stmt, UiEvent, UiEventKind};
use droidracer::sim::{run, RandomScheduler, SimConfig};
use droidracer::trace::{validate, TraceStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the app: onCreate forks a loader thread that initializes
    //    shared state; a button reads that state when clicked. Nothing
    //    orders the two accesses.
    let mut b = AppBuilder::new("Quickstart");
    let act = b.activity("MainActivity");
    let state = b.var("MainActivity-obj", "loadedState");
    let loader = b.worker("loader", vec![Stmt::Write(state)]);
    b.on_create(act, vec![Stmt::ForkWorker(loader)]);
    let show = b.button(act, "show", vec![Stmt::Read(state)]);
    let app = b.finish();

    // 2. Compile with a UI event sequence and execute on the simulator.
    let events = [UiEvent::Widget(show, UiEventKind::Click)];
    let compiled = compile(&app, &events)?;
    let result = run(
        &compiled.program,
        &mut RandomScheduler::new(42),
        &SimConfig::default(),
    )?;
    assert!(result.completed);

    // 3. Every simulated trace satisfies the paper's operational semantics.
    validate(&result.trace)?;
    println!("trace ({}):", TraceStats::of(&result.trace));
    println!("{}", result.trace);

    // 4. Compute the happens-before relation and report races.
    let analysis = AnalysisBuilder::new().analyze(&result.trace).unwrap();
    println!("{}", analysis.render());
    assert_eq!(analysis.races().len(), 1, "the loader race is found");
    Ok(())
}
