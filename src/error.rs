//! The workspace-wide error type.
//!
//! Every pipeline stage has its own precise error enum (parse, validate,
//! compile, simulate, analyze, corpus/exploration). [`Error`] is the union
//! used at the boundaries — the CLI, scripts, examples — where one `?`
//! chain crosses several stages. `From` impls exist for each stage error,
//! so typed results compose without `map_err` noise:
//!
//! ```
//! use droidracer::trace::from_text;
//! use droidracer::core::AnalysisBuilder;
//!
//! fn races_in(text: &str) -> Result<usize, droidracer::Error> {
//!     let trace = from_text(text)?;
//!     let analysis = AnalysisBuilder::new().validate_first(true).analyze(&trace)?;
//!     Ok(analysis.representatives().len())
//! }
//!
//! assert!(races_in("not a trace").is_err());
//! ```

use std::fmt;

use droidracer_apps::CorpusError;
use droidracer_core::AnalysisError;
use droidracer_explorer::ExploreError;
use droidracer_framework::CompileError;
use droidracer_sim::SimError;
use droidracer_trace::{ParseTraceError, ValidateError};

/// Any failure of the end-to-end pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A trace file failed to parse.
    Parse(ParseTraceError),
    /// A trace violates the concurrency semantics (Figure 5).
    Validate(ValidateError),
    /// An app model failed to compile.
    Compile(CompileError),
    /// The simulator failed.
    Sim(SimError),
    /// An analysis session failed.
    Analysis(AnalysisError),
    /// A corpus pipeline failed.
    Corpus(CorpusError),
    /// An I/O failure (reading a trace, writing a profile or report).
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse error: {e}"),
            Error::Validate(e) => write!(f, "invalid trace: {e}"),
            Error::Compile(e) => write!(f, "compile error: {e}"),
            Error::Sim(e) => write!(f, "simulation error: {e}"),
            Error::Analysis(e) => write!(f, "analysis error: {e}"),
            Error::Corpus(e) => write!(f, "corpus error: {e}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Validate(e) => Some(e),
            Error::Compile(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Analysis(e) => Some(e),
            Error::Corpus(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

impl From<ParseTraceError> for Error {
    fn from(e: ParseTraceError) -> Self {
        Error::Parse(e)
    }
}

impl From<ValidateError> for Error {
    fn from(e: ValidateError) -> Self {
        Error::Validate(e)
    }
}

impl From<CompileError> for Error {
    fn from(e: CompileError) -> Self {
        Error::Compile(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<AnalysisError> for Error {
    fn from(e: AnalysisError) -> Self {
        Error::Analysis(e)
    }
}

impl From<CorpusError> for Error {
    fn from(e: CorpusError) -> Self {
        Error::Corpus(e)
    }
}

impl From<ExploreError> for Error {
    fn from(e: ExploreError) -> Self {
        match e {
            ExploreError::Compile(c) => Error::Compile(c),
            ExploreError::Sim(s) => Error::Sim(s),
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}
