//! The UI event alphabet and an abstract UI state for exploration.
//!
//! DroidRacer's UI Explorer "inspects UI related classes at runtime and
//! obtains the events enabled on a screen for all widgets" (§5). Our
//! equivalent is [`UiState`]: an abstract activity stack over the [`App`]
//! description that answers "which events are available now?" and advances
//! when an event fires — exactly the interface the explorer's depth-first
//! enumeration needs.

use std::fmt;

use crate::app::{ActivityId, App, Stmt, UiEventKind, WidgetId};

/// One environment event the user (or system) can trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UiEvent {
    /// An event on a widget of the current screen.
    Widget(WidgetId, UiEventKind),
    /// The BACK button.
    Back,
    /// Screen rotation (destroys and relaunches the current activity).
    Rotate,
}

impl UiEvent {
    /// Renders the event with app-provided names.
    pub fn describe(&self, app: &App) -> String {
        match self {
            UiEvent::Widget(w, k) => format!(
                "{}:{}.{}",
                k.label(),
                app.activity_name(app.widget_activity(*w)),
                app.widget_name(*w)
            ),
            UiEvent::Back => "back".to_owned(),
            UiEvent::Rotate => "rotate".to_owned(),
        }
    }
}

impl fmt::Display for UiEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UiEvent::Widget(w, k) => write!(f, "{}@w{}", k, w.0),
            UiEvent::Back => f.write_str("back"),
            UiEvent::Rotate => f.write_str("rotate"),
        }
    }
}

/// Abstract UI state: the activity stack.
///
/// Widget availability is approximated optimistically: a widget counts as
/// available if it is initially enabled or any `EnableWidget` statement for
/// it exists in the app (the concrete run still gates the handler post on
/// the actual `enable`, so an optimistically chosen event at worst blocks
/// and truncates the run — it can never produce an infeasible trace).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UiState {
    stack: Vec<ActivityId>,
}

impl UiState {
    /// The launch state: the main activity on the stack.
    pub fn initial(app: &App) -> Option<Self> {
        app.main_activity().map(|a| UiState { stack: vec![a] })
    }

    /// The foreground activity, if any.
    pub fn top(&self) -> Option<ActivityId> {
        self.stack.last().copied()
    }

    /// Whether the app has exited (empty stack).
    pub fn is_exited(&self) -> bool {
        self.stack.is_empty()
    }

    /// Depth of the activity stack.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Events available in this state, in a deterministic order.
    pub fn available_events(&self, app: &App) -> Vec<UiEvent> {
        let Some(top) = self.top() else {
            return Vec::new();
        };
        let mut events = Vec::new();
        for &w in app.widgets_of(top) {
            if Self::possibly_enabled(app, w) {
                for kind in app.widget_events(w) {
                    events.push(UiEvent::Widget(w, kind));
                }
            }
        }
        events.push(UiEvent::Rotate);
        events.push(UiEvent::Back);
        events
    }

    fn possibly_enabled(app: &App, w: WidgetId) -> bool {
        if app.widget_initially_enabled(w) {
            return true;
        }
        // Enabled somewhere via setEnabled(true)?
        fn mentions(stmts: &[Stmt], w: WidgetId) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::EnableWidget(x, _) => *x == w,
                Stmt::Synchronized(_, inner) => mentions(inner, w),
                _ => false,
            })
        }
        let in_activity = app.activities.iter().any(|a| {
            let c = &a.callbacks;
            [
                &c.create, &c.start, &c.resume, &c.pause, &c.stop, &c.restart, &c.destroy,
            ]
            .iter()
            .any(|b| mentions(b, w))
        });
        in_activity
            || app
                .async_tasks
                .iter()
                .any(|t| mentions(&t.post_execute, w) || mentions(&t.progress_update, w))
            || app.handlers.iter().any(|h| mentions(&h.body, w))
            || app
                .widgets
                .iter()
                .any(|wd| wd.handlers.iter().any(|(_, b)| mentions(b, w)))
            || app
                .services
                .iter()
                .any(|s| mentions(&s.create, w) || mentions(&s.start_command, w))
            || app
                .intent_services
                .iter()
                .any(|s| mentions(&s.handle_intent, w))
            || app.fragments.iter().any(|f| {
                mentions(&f.attach, w)
                    || mentions(&f.create_view, w)
                    || mentions(&f.destroy_view, w)
                    || mentions(&f.detach, w)
            })
            || app.receivers.iter().any(|r| mentions(&r.receive, w))
    }

    /// Advances the abstract state by one event. Returns `None` when the
    /// event is not available (wrong screen, or app exited).
    pub fn apply(&self, app: &App, event: UiEvent) -> Option<UiState> {
        let top = self.top()?;
        let mut next = self.clone();
        match event {
            UiEvent::Back => {
                next.stack.pop();
            }
            UiEvent::Rotate => {
                // Destroy + relaunch: stack unchanged.
            }
            UiEvent::Widget(w, kind) => {
                if app.widget_activity(w) != top || !app.widget_events(w).contains(&kind) {
                    return None;
                }
                let def = &app.widgets[w.0];
                let body = def
                    .handlers
                    .iter()
                    .find(|(k, _)| *k == kind)
                    .map(|(_, b)| b.clone())
                    .unwrap_or_default();
                next.apply_stmts(&body, 0);
            }
        }
        Some(next)
    }

    /// Tracks activity-stack effects of statements (startActivity / finish).
    fn apply_stmts(&mut self, stmts: &[Stmt], depth: usize) {
        if depth > 8 {
            return;
        }
        for stmt in stmts {
            match stmt {
                Stmt::StartActivity(b) => self.stack.push(*b),
                Stmt::FinishActivity => {
                    self.stack.pop();
                }
                Stmt::Synchronized(_, inner) => self.apply_stmts(inner, depth + 1),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;

    fn two_screen_app() -> (App, ActivityId, ActivityId, WidgetId) {
        let mut b = AppBuilder::new("X");
        let main = b.activity("Main");
        let detail = b.activity("Detail");
        let open = b.button(main, "open", vec![Stmt::StartActivity(detail)]);
        b.button(detail, "close", vec![Stmt::FinishActivity]);
        (b.finish(), main, detail, open)
    }

    #[test]
    fn initial_state_has_main_on_top() {
        let (app, main, _, _) = two_screen_app();
        let s = UiState::initial(&app).expect("has main activity");
        assert_eq!(s.top(), Some(main));
        assert_eq!(s.depth(), 1);
        assert!(!s.is_exited());
    }

    #[test]
    fn available_events_cover_widgets_and_system() {
        let (app, _, _, open) = two_screen_app();
        let s = UiState::initial(&app).unwrap();
        let events = s.available_events(&app);
        assert!(events.contains(&UiEvent::Widget(open, UiEventKind::Click)));
        assert!(events.contains(&UiEvent::Back));
        assert!(events.contains(&UiEvent::Rotate));
        // The detail screen's button is not on this screen.
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn start_activity_pushes_stack() {
        let (app, _, detail, open) = two_screen_app();
        let s = UiState::initial(&app).unwrap();
        let s2 = s
            .apply(&app, UiEvent::Widget(open, UiEventKind::Click))
            .expect("event available");
        assert_eq!(s2.top(), Some(detail));
        assert_eq!(s2.depth(), 2);
    }

    #[test]
    fn back_pops_and_exits() {
        let (app, main, _, _) = two_screen_app();
        let s = UiState::initial(&app).unwrap();
        let s2 = s.apply(&app, UiEvent::Back).unwrap();
        assert!(s2.is_exited());
        assert!(s2.available_events(&app).is_empty());
        let _ = main;
    }

    #[test]
    fn rotate_keeps_stack() {
        let (app, main, _, _) = two_screen_app();
        let s = UiState::initial(&app).unwrap();
        let s2 = s.apply(&app, UiEvent::Rotate).unwrap();
        assert_eq!(s2.top(), Some(main));
    }

    #[test]
    fn wrong_screen_event_is_unavailable() {
        let (app, _, detail, open) = two_screen_app();
        let s = UiState::initial(&app).unwrap();
        let s2 = s
            .apply(&app, UiEvent::Widget(open, UiEventKind::Click))
            .unwrap();
        assert_eq!(s2.top(), Some(detail));
        // open is on Main, not Detail.
        assert!(s2.apply(&app, UiEvent::Widget(open, UiEventKind::Click)).is_none());
    }

    #[test]
    fn disabled_widget_needs_enable_stmt_to_appear() {
        let mut b = AppBuilder::new("X");
        let a = b.activity("Main");
        let play = b.button(a, "play", vec![]);
        b.initially_disabled(play);
        let app = b.finish();
        let s = UiState::initial(&app).unwrap();
        // No EnableWidget anywhere → event not offered.
        assert!(!s
            .available_events(&app)
            .contains(&UiEvent::Widget(play, UiEventKind::Click)));

        let mut b = AppBuilder::new("X");
        let a = b.activity("Main");
        let play = b.button(a, "play", vec![]);
        b.initially_disabled(play);
        let h = b.handler("enablePlay", vec![Stmt::EnableWidget(play, UiEventKind::Click)]);
        b.on_resume(a, vec![Stmt::Post { handler: h, delay: None, front: false }]);
        let app = b.finish();
        let s = UiState::initial(&app).unwrap();
        assert!(s
            .available_events(&app)
            .contains(&UiEvent::Widget(play, UiEventKind::Click)));
    }

    #[test]
    fn describe_uses_names() {
        let (app, _, _, open) = two_screen_app();
        assert_eq!(
            UiEvent::Widget(open, UiEventKind::Click).describe(&app),
            "click:Main.open"
        );
        assert_eq!(UiEvent::Back.describe(&app), "back");
    }
}
