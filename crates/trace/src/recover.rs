//! Semantic repair for leniently parsed traces.
//!
//! The syntax pass ([`crate::format::parse_syntax`]) drops lines it cannot
//! read; this pass replays the surviving operations through the Figure 5
//! transition system ([`crate::validate::step`]) and repairs the
//! inconsistencies a truncated or corrupted log typically exhibits:
//!
//! * a `join` of a thread whose `threadexit` was lost → synthesize the exit
//!   ([`Repair::SynthesizeClose`]);
//! * a `begin` whose antecedents cannot hold (task never posted, queue order
//!   violated, thread not idle) → drop the whole task body through its
//!   matching `end` ([`Repair::TruncateTask`]);
//! * any other infeasible operation → drop it ([`Repair::SkipOp`]);
//! * at EOF, still-executing tasks get a synthesized `end` and still-held
//!   locks get synthesized `release`s, so a truncated tail yields a closed,
//!   analyzable prefix.
//!
//! One deliberate departure from the strict checker: a `threadinit` of a
//! *declared* thread that was never forked is accepted silently (the
//! declaration is its creation witness). Real tracers miss forks performed
//! in native code, so such records are legitimate blind-spot output, not
//! corruption — the analysis pipeline accepts them too. Apart from that,
//! the result satisfies [`crate::validate::validate`]: every kept or
//! synthesized operation was accepted by the same `step` function the
//! validator uses, and re-parsing a recovered trace leniently is a fixed
//! point (zero further diagnostics).

use crate::format::{Diagnostic, PendingOp, Repair};
use crate::ids::{TaskId, ThreadId};
use crate::names::Names;
use crate::op::{Op, OpKind};
use crate::trace::Trace;
use crate::validate::{step, State, ValidateErrorKind};

/// Replays `ops` through the semantics checker, repairing as it goes, and
/// assembles the recovered trace. Repairs are appended to `diags`.
pub(crate) fn repair(
    names: Names,
    ops: Vec<PendingOp>,
    diags: &mut Vec<Diagnostic>,
    eof_line: usize,
    eof_span: (usize, usize),
) -> Trace {
    let mut st = State::default();
    for (id, decl) in names.threads() {
        if decl.initial {
            st.created.insert(id);
        }
    }
    let mut kept: Vec<Op> = Vec::new();
    // Threads whose current task execution is being truncated: ops on the
    // thread are dropped (as part of the one TruncateTask diagnostic) until
    // the matching `end` goes by.
    let mut truncating: std::collections::HashMap<ThreadId, TaskId> =
        std::collections::HashMap::new();
    for p in ops {
        let t = p.op.thread;
        if let Some(&task) = truncating.get(&t) {
            if matches!(p.op.kind, OpKind::End { task: e } if e == task) {
                truncating.remove(&t);
            }
            continue;
        }
        match step(&mut st, p.op) {
            Ok(()) => kept.push(p.op),
            Err(kind) => match (&kind, p.op.kind) {
                // A declared thread initializing without a logged fork: the
                // fork happened where the tracer cannot see (native code).
                // Accept the declaration as the creation witness — this is
                // blind-spot output, not corruption, so no diagnostic.
                (&ValidateErrorKind::ThreadNotCreated(child), OpKind::ThreadInit)
                    if child == t
                        && names.thread(t).is_some()
                        && !st.running.contains(&t)
                        && !st.finished.contains(&t) =>
                {
                    st.created.insert(t);
                    // invariant: `t` is now in `created` and in no other
                    // lifecycle set, which is all the INIT rule requires.
                    step(&mut st, p.op).expect("created thread can init");
                    kept.push(p.op);
                }
                // Dangling join: the child is still running, so its exit
                // record was lost. Synthesize it and retry the join.
                (&ValidateErrorKind::JoinBeforeExit(child), OpKind::Join { .. })
                    if st.running.contains(&child) =>
                {
                    let exit = Op::new(child, OpKind::ThreadExit);
                    // invariant: the guard checked `child` is running, which
                    // is the only antecedent of the EXIT rule.
                    step(&mut st, exit).expect("running thread can exit");
                    kept.push(exit);
                    diags.push(Diagnostic {
                        line: p.line,
                        span: p.span,
                        message: format!(
                            "join of thread {child} whose exit was never logged; \
                             synthesized threadexit"
                        ),
                        repair: Repair::SynthesizeClose,
                    });
                    match step(&mut st, p.op) {
                        Ok(()) => kept.push(p.op),
                        // invariant: the child just exited and the joining
                        // thread passed the running check above.
                        Err(k) => unreachable!("join after synthesized exit failed: {k}"),
                    }
                }
                // Infeasible task execution: drop the begin, its body, and
                // the matching end wholesale.
                (_, OpKind::Begin { task })
                    if matches!(
                        kind,
                        ValidateErrorKind::BeginWithoutLoop(_)
                            | ValidateErrorKind::ThreadNotIdle(_)
                            | ValidateErrorKind::TaskNotQueued(_)
                            | ValidateErrorKind::QueueOrderViolated { .. }
                    ) =>
                {
                    truncating.insert(t, task);
                    diags.push(Diagnostic {
                        line: p.line,
                        span: p.span,
                        message: format!("infeasible execution of task {task} ({kind}); \
                             dropped through its end"),
                        repair: Repair::TruncateTask,
                    });
                }
                // Anything else: drop the single offending op.
                _ => diags.push(Diagnostic {
                    line: p.line,
                    span: p.span,
                    message: format!("infeasible op `{}` ({kind}); dropped", p.op),
                    repair: Repair::SkipOp,
                }),
            },
        }
    }
    close_at_eof(&mut st, &mut kept, diags, eof_line, eof_span);
    Trace::from_parts(names, kept)
}

/// Closes what a truncated tail left open: still-executing tasks and
/// still-held locks, in deterministic (id-sorted) order.
fn close_at_eof(
    st: &mut State,
    kept: &mut Vec<Op>,
    diags: &mut Vec<Diagnostic>,
    eof_line: usize,
    eof_span: (usize, usize),
) {
    let mut executing: Vec<(ThreadId, TaskId)> = st.executing.iter().map(|(&t, &p)| (t, p)).collect();
    executing.sort_by_key(|&(t, _)| t);
    for (t, task) in executing {
        let end = Op::new(t, OpKind::End { task });
        if step(st, end).is_ok() {
            kept.push(end);
            diags.push(Diagnostic {
                line: eof_line,
                span: eof_span,
                message: format!(
                    "task {task} still executing on thread {t} at end of trace; \
                     synthesized end"
                ),
                repair: Repair::SynthesizeClose,
            });
        }
    }
    let mut held: Vec<_> = st
        .lock_holders
        .iter()
        .map(|(&l, &(t, count))| (l, t, count))
        .collect();
    held.sort_by_key(|&(l, _, _)| l);
    for (lock, holder, count) in held {
        for _ in 0..count {
            let rel = Op::new(holder, OpKind::Release { lock });
            if step(st, rel).is_err() {
                // Holder exited while holding the lock: nothing to close.
                break;
            }
            kept.push(rel);
            diags.push(Diagnostic {
                line: eof_line,
                span: eof_span,
                message: format!(
                    "lock {lock} still held by thread {holder} at end of trace; \
                     synthesized release"
                ),
                repair: Repair::SynthesizeClose,
            });
        }
    }
}
