//! The UI Explorer: systematic, replayable testing of app models.
//!
//! DroidRacer's first component (§5) systematically generates UI event
//! sequences up to a bound `k`, in depth-first order, storing them in a
//! database for backtracking and consistent replay. This crate reproduces
//! that pipeline against the framework model:
//!
//! * [`enumerate_sequences`] — bounded DFS over the abstract UI state;
//! * [`run_sequence`] — compile + execute one sequence to a trace;
//! * [`run_campaign`] / [`ReplayDb`] — execute all sequences and replay any
//!   recorded test bit-identically;
//! * [`TextFormat`] — format-aware text input generation.
//!
//! # Examples
//!
//! ```
//! use droidracer_explorer::{run_campaign, ExplorerConfig};
//! use droidracer_framework::{AppBuilder, Stmt};
//!
//! let mut b = AppBuilder::new("Demo");
//! let act = b.activity("Main");
//! let v = b.var("obj", "C.count");
//! b.button(act, "inc", vec![Stmt::Write(v)]);
//! let app = b.finish();
//!
//! let campaign = run_campaign(&app, &ExplorerConfig { max_depth: 2, ..Default::default() })?;
//! assert!(!campaign.runs.is_empty());
//! # Ok::<(), droidracer_explorer::ExploreError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod db;
mod explore;
mod input;

pub use db::{
    run_campaign, run_campaign_cached, run_campaign_isolated, run_campaign_parallel,
    run_campaign_profiled, Campaign, DbDiagnostic, ReplayDb, TestEntry,
};
pub use explore::{enumerate_sequences, run_sequence, ExploreError, ExplorerConfig};
pub use input::TextFormat;
