//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of the criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short warm-up,
//! then `sample_size` timed batches, and prints the median per-iteration
//! time. There is no statistical analysis, plotting, or baseline storage —
//! just enough to keep `cargo bench` compiling, running, and printing
//! comparable numbers.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and a rough scale estimate for batching.
        let warm = Instant::now();
        let mut calls = 0u32;
        while warm.elapsed() < Duration::from_millis(20) && calls < 1_000 {
            std::hint::black_box(routine());
            calls += 1;
        }
        let per_call = warm.elapsed() / calls.max(1);
        // Pick a batch size aiming at ~5ms per sample.
        let batch = (Duration::from_millis(5).as_nanos() / per_call.as_nanos().max(1))
            .clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        self.report(&id.into(), bencher.median());
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        self.report(&id, bencher.median());
        self
    }

    /// Ends the group (kept for API parity; reporting is incremental).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, median: Duration) {
        println!("{}/{}: median {:?}", self.name, id, median);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 50,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("add", |b| b.iter(|| 1u64 + 1));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x + 1)
        });
        group.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn group_macro_and_timing_run() {
        smoke();
    }
}
