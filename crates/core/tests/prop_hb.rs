//! Property-based tests of the happens-before engine over random *valid*
//! traces generated directly at the core-language level (independent of the
//! framework model, so loopers, locks, delayed posts and thread structure
//! are exercised in odd combinations the compiler would never emit).

use proptest::prelude::*;
use std::collections::BTreeSet;

use droidracer_core::{Analysis, AnalysisBuilder, HbConfig, HbMode, RaceCategory};
use droidracer_trace::{
    validate, MemLoc, PostKind, TaskId, ThreadId, ThreadKind, Trace, TraceBuilder,
};

/// Byte cursor (structured fuzzing).
struct Bytes<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Bytes<'a> {
    fn new(data: &'a [u8]) -> Self {
        Bytes { data, pos: 0 }
    }
    fn next(&mut self) -> u8 {
        let b = self.data.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }
    fn pick(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.next() as usize % n
        }
    }
    fn done(&self) -> bool {
        self.pos >= self.data.len()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum ThreadState {
    Created,
    Running,
    Looping,
    InTask(TaskId),
    Exited,
}

/// Generates a feasible trace by maintaining the Figure-5 state and only
/// emitting operations whose antecedents hold.
fn random_valid_trace(bytes: &[u8]) -> Trace {
    let mut c = Bytes::new(bytes);
    let mut b = TraceBuilder::new();

    let n_loopers = 1 + c.pick(2);
    let n_plain = 1 + c.pick(2);
    let mut threads: Vec<(ThreadId, bool, ThreadState)> = Vec::new();
    for i in 0..n_loopers {
        let t = b.thread(
            format!("looper{i}"),
            if i == 0 { ThreadKind::Main } else { ThreadKind::App },
            true,
        );
        threads.push((t, true, ThreadState::Created));
    }
    for i in 0..n_plain {
        let t = b.thread(format!("plain{i}"), ThreadKind::App, true);
        threads.push((t, false, ThreadState::Created));
    }
    let locs: Vec<MemLoc> = (0..3).map(|i| b.loc("o", format!("C.f{i}"))).collect();
    let locks = [b.lock("m0"), b.lock("m1")];

    // Per-looper queue: (task, kind). Lock holders: lock -> (thread, depth).
    let mut queues: Vec<Vec<(TaskId, PostKind)>> = vec![Vec::new(); threads.len()];
    let mut lock_holder: [Option<(ThreadId, u32)>; 2] = [None, None];
    let mut task_counter = 0usize;
    let mut enabled_pending: Vec<TaskId> = Vec::new();

    // Bound the run.
    for _ in 0..bytes.len().min(120) {
        if c.done() {
            break;
        }
        let ti = c.pick(threads.len());
        let (tid, has_queue, state) = threads[ti];
        match state {
            ThreadState::Created => {
                b.thread_init(tid);
                if has_queue {
                    b.attach_q(tid);
                    b.loop_on_q(tid);
                    threads[ti].2 = ThreadState::Looping;
                } else {
                    threads[ti].2 = ThreadState::Running;
                }
            }
            ThreadState::Exited => {}
            ThreadState::Looping => {
                // Either begin an eligible task or do nothing this round.
                let queue = &mut queues[ti];
                let mut eligible = None;
                let mut earlier_plain = false;
                let mut min_delay: Option<u64> = None;
                let mut eligibles = Vec::new();
                for (pos, (task, kind)) in queue.iter().enumerate() {
                    let blocked = match kind.delay() {
                        None => earlier_plain,
                        Some(d) => earlier_plain || min_delay.is_some_and(|m| m <= d),
                    };
                    if !blocked {
                        eligibles.push((pos, *task));
                    }
                    match kind.delay() {
                        None => earlier_plain = true,
                        Some(d) => min_delay = Some(min_delay.map_or(d, |m| m.min(d))),
                    }
                }
                if !eligibles.is_empty() {
                    eligible = Some(eligibles[c.pick(eligibles.len())]);
                }
                if let Some((pos, task)) = eligible {
                    queue.remove(pos);
                    b.begin(tid, task);
                    threads[ti].2 = ThreadState::InTask(task);
                }
            }
            ThreadState::Running | ThreadState::InTask(_) => {
                // Emit a random action.
                match c.pick(8) {
                    0 | 1 => {
                        let loc = locs[c.pick(locs.len())];
                        if c.pick(2) == 0 {
                            b.read(tid, loc);
                        } else {
                            b.write(tid, loc);
                        }
                    }
                    2 => {
                        // Acquire a free (or self-held) lock.
                        let li = c.pick(2);
                        match lock_holder[li] {
                            Some((h, d)) if h == tid => {
                                lock_holder[li] = Some((h, d + 1));
                                b.acquire(tid, locks[li]);
                            }
                            None => {
                                lock_holder[li] = Some((tid, 1));
                                b.acquire(tid, locks[li]);
                            }
                            _ => {}
                        }
                    }
                    3 => {
                        // Release a held lock.
                        let li = c.pick(2);
                        if let Some((h, d)) = lock_holder[li] {
                            if h == tid {
                                lock_holder[li] = if d > 1 { Some((h, d - 1)) } else { None };
                                b.release(tid, locks[li]);
                            }
                        }
                    }
                    4 | 5 => {
                        // Post (sometimes enabled first, sometimes delayed).
                        let target = c.pick(threads.len());
                        let (target_id, has_q, tstate) = threads[target];
                        let attached = has_q
                            && !matches!(tstate, ThreadState::Created | ThreadState::Exited);
                        if attached {
                            let kind = match c.pick(5) {
                                0 => PostKind::Delayed(10 * (1 + c.pick(4) as u64)),
                                1 => PostKind::Front,
                                _ => PostKind::Plain,
                            };
                            let task = if !enabled_pending.is_empty() && c.pick(2) == 0 {
                                enabled_pending.remove(0)
                            } else {
                                task_counter += 1;
                                b.task(format!("p{task_counter}"))
                            };
                            b.post_with(tid, task, target_id, kind, None);
                            if matches!(kind, PostKind::Front) {
                                queues[target].insert(0, (task, kind));
                            } else {
                                queues[target].push((task, kind));
                            }
                        }
                    }
                    6 => {
                        // Enable a future task.
                        task_counter += 1;
                        let task = b.task(format!("p{task_counter}"));
                        b.enable(tid, task);
                        enabled_pending.push(task);
                    }
                    7 => {
                        // End the task / exit the thread.
                        match threads[ti].2 {
                            ThreadState::InTask(task) => {
                                // Release any locks we still hold first, to
                                // keep generation simple.
                                for li in 0..2 {
                                    while let Some((h, d)) = lock_holder[li] {
                                        if h != tid {
                                            break;
                                        }
                                        lock_holder[li] =
                                            if d > 1 { Some((h, d - 1)) } else { None };
                                        b.release(tid, locks[li]);
                                    }
                                }
                                b.end(tid, task);
                                threads[ti].2 = ThreadState::Looping;
                            }
                            ThreadState::Running => {
                                for li in 0..2 {
                                    while let Some((h, d)) = lock_holder[li] {
                                        if h != tid {
                                            break;
                                        }
                                        lock_holder[li] =
                                            if d > 1 { Some((h, d - 1)) } else { None };
                                        b.release(tid, locks[li]);
                                    }
                                }
                                b.thread_exit(tid);
                                threads[ti].2 = ThreadState::Exited;
                            }
                            _ => {}
                        }
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
    b.finish()
}

fn race_keys(analysis: &Analysis) -> BTreeSet<(MemLoc, RaceCategory)> {
    analysis
        .representatives()
        .iter()
        .map(|cr| (cr.race.loc, cr.category))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The generator only emits feasible traces (sanity of everything
    /// below).
    #[test]
    fn generated_traces_validate(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let trace = random_valid_trace(&bytes);
        prop_assert_eq!(validate(&trace), Ok(()), "trace:\n{}", trace);
    }

    /// Node merging is lossless on arbitrary feasible traces.
    #[test]
    fn merging_is_lossless(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let trace = random_valid_trace(&bytes);
        let merged = AnalysisBuilder::new().config(HbConfig::new()).analyze(&trace).unwrap();
        let unmerged = AnalysisBuilder::new().config(HbConfig::new().without_merging()).analyze(&trace).unwrap();
        prop_assert_eq!(race_keys(&merged), race_keys(&unmerged));
    }

    /// `≺` is irreflexive w.r.t. trace order: no later op ever
    /// happens-before an earlier one.
    #[test]
    fn respects_trace_order(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let trace = random_valid_trace(&bytes);
        let analysis = AnalysisBuilder::new().analyze(&trace).unwrap();
        let n = analysis.trace().len();
        for i in 0..n {
            for j in i + 1..n {
                prop_assert!(!analysis.hb().ordered(j, i), "op {} ≺ op {}", j, i);
            }
        }
    }

    /// TRANS-MT invariant: `a ≺ b ≺ c` with `a`, `c` on different threads
    /// implies `a ≺ c`.
    #[test]
    fn trans_mt_is_closed(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
        let trace = random_valid_trace(&bytes);
        let analysis = AnalysisBuilder::new().analyze(&trace).unwrap();
        let t = analysis.trace();
        let n = t.len();
        for a in 0..n {
            for bb in a + 1..n {
                if !analysis.hb().ordered(a, bb) {
                    continue;
                }
                for cc in bb + 1..n {
                    if analysis.hb().ordered(bb, cc)
                        && t.op(a).thread != t.op(cc).thread
                    {
                        prop_assert!(
                            analysis.hb().ordered(a, cc),
                            "TRANS-MT violated: {} ≺ {} ≺ {} but {} ⊀ {}",
                            a, bb, cc, a, cc
                        );
                    }
                }
            }
        }
    }

    /// TRANS-ST invariant: `a ≺ b ≺ c` all on one thread implies `a ≺ c`
    /// (same-thread orderings live in `≺st`, which is transitively closed).
    #[test]
    fn trans_st_is_closed(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
        let trace = random_valid_trace(&bytes);
        let analysis = AnalysisBuilder::new().analyze(&trace).unwrap();
        let t = analysis.trace();
        let n = t.len();
        for a in 0..n {
            for bb in a + 1..n {
                if t.op(a).thread != t.op(bb).thread || !analysis.hb().ordered(a, bb) {
                    continue;
                }
                for cc in bb + 1..n {
                    if t.op(cc).thread == t.op(a).thread && analysis.hb().ordered(bb, cc) {
                        prop_assert!(
                            analysis.hb().ordered(a, cc),
                            "TRANS-ST violated: {} ≺ {} ≺ {} but {} ⊀ {}",
                            a, bb, cc, a, cc
                        );
                    }
                }
            }
        }
    }

    /// The paper's relation is a restriction of the naive combination:
    /// every ordering it derives, the naive closure derives too — hence
    /// naive races ⊆ full races.
    #[test]
    fn full_orderings_subset_of_naive(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
        let trace = random_valid_trace(&bytes);
        let full = AnalysisBuilder::new().analyze(&trace).unwrap();
        let naive = AnalysisBuilder::new().mode(HbMode::NaiveCombined).analyze(&trace).unwrap();
        let n = trace.len();
        for i in 0..n {
            for j in i + 1..n {
                if full.hb().ordered(i, j) {
                    prop_assert!(
                        naive.hb().ordered(i, j),
                        "full orders {} ≺ {} but naive does not",
                        i, j
                    );
                }
            }
        }
    }

    /// Analyses are deterministic.
    #[test]
    fn analysis_is_deterministic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let trace = random_valid_trace(&bytes);
        let a = AnalysisBuilder::new().analyze(&trace).unwrap();
        let b = AnalysisBuilder::new().analyze(&trace).unwrap();
        prop_assert_eq!(a.races(), b.races());
        prop_assert_eq!(a.hb().ordered_pairs(), b.hb().ordered_pairs());
    }
}
