//! Property tests for the wire protocol: encode/decode round-trips, and
//! arbitrary corruption/truncation never panics — it decodes to a typed
//! [`WireError`].

use std::io::Cursor;

use droidracer_server::protocol::{read_frame, write_frame, Request, Response, WireError};

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn submit_round_trips(
        tenant in proptest::collection::vec(any::<u8>(), 0..24),
        spec in proptest::collection::vec(any::<u8>(), 0..48),
        trace in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let request = Request::Submit {
            tenant: String::from_utf8_lossy(&tenant).into_owned(),
            spec: String::from_utf8_lossy(&spec).into_owned(),
            trace,
        };
        prop_assert_eq!(Request::decode(&request.encode()).unwrap(), request);
    }

    #[test]
    fn stream_requests_round_trip(
        tenant in proptest::collection::vec(any::<u8>(), 0..24),
        chunk_ops in any::<u32>(),
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let open = Request::StreamOpen {
            tenant: String::from_utf8_lossy(&tenant).into_owned(),
            spec: "v1:full:merge:strict:ops=-:bits=-:dl=-".to_owned(),
            chunk_ops,
        };
        prop_assert_eq!(Request::decode(&open.encode()).unwrap(), open);
        let chunk = Request::StreamChunk { data };
        prop_assert_eq!(Request::decode(&chunk.encode()).unwrap(), chunk);
        prop_assert_eq!(
            Request::decode(&Request::StreamFinish.encode()).unwrap(),
            Request::StreamFinish
        );
    }

    #[test]
    fn responses_round_trip(
        cache_hit in any::<bool>(),
        record in proptest::collection::vec(any::<u8>(), 0..200),
        buffered in any::<u64>(),
    ) {
        let report = Response::Report {
            cache_hit,
            record: String::from_utf8_lossy(&record).into_owned(),
        };
        prop_assert_eq!(Response::decode(&report.encode()).unwrap(), report);
        let ack = Response::StreamAck { buffered };
        prop_assert_eq!(Response::decode(&ack.encode()).unwrap(), ack);
        let shed = Response::Overloaded { retry_after_ms: buffered };
        prop_assert_eq!(Response::decode(&shed.encode()).unwrap(), shed);
        prop_assert_eq!(Response::decode(&Response::Bye.encode()).unwrap(), Response::Bye);
    }

    #[test]
    fn truncation_never_panics(
        trace in proptest::collection::vec(any::<u8>(), 0..64),
        cut_frac in 0u32..1000,
    ) {
        let encoded = Request::Submit {
            tenant: "t".to_owned(),
            spec: "s".to_owned(),
            trace,
        }
        .encode();
        let cut = (encoded.len() as u64 * u64::from(cut_frac) / 1000) as usize;
        if cut < encoded.len() {
            // Every proper prefix must fail with a typed error, not panic.
            prop_assert!(Request::decode(&encoded[..cut]).is_err());
        }
    }

    #[test]
    fn corruption_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        // Arbitrary bytes: decoding may fail or (rarely) succeed, but must
        // never panic, for requests and responses alike.
        let _ = Request::decode(&payload);
        let _ = Response::decode(&payload);
    }

    #[test]
    fn torn_frames_are_unexpected_eof(
        trace in proptest::collection::vec(any::<u8>(), 0..64),
        cut_frac in 0u32..1000,
    ) {
        let request = Request::Submit {
            tenant: "t".to_owned(),
            spec: "s".to_owned(),
            trace,
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &request.encode()).unwrap();
        let cut = (wire.len() as u64 * u64::from(cut_frac) / 1000) as usize;
        if cut >= wire.len() {
            let got = read_frame(&mut Cursor::new(&wire[..])).unwrap().unwrap();
            prop_assert_eq!(Request::decode(&got).unwrap(), request);
        } else if cut == 0 {
            // Nothing read at all is a clean EOF between frames.
            prop_assert!(read_frame(&mut Cursor::new(&wire[..0])).unwrap().is_none());
        } else {
            // Anything torn mid-frame is UnexpectedEof.
            match read_frame(&mut Cursor::new(&wire[..cut])) {
                Ok(frame) => prop_assert!(false, "torn frame decoded: {frame:?}"),
                Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
            }
        }
    }
}

#[test]
fn wire_error_is_typed_and_displayable() {
    let err = Request::decode(&[]).unwrap_err();
    assert!(matches!(err, WireError::Truncated | WireError::BadLength(_)));
    assert!(!err.to_string().is_empty());
}
