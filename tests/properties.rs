//! Property-based tests spanning the whole pipeline: random app models are
//! compiled, simulated under random schedules, validated against the
//! operational semantics (experiment E6), and analyzed under every
//! happens-before mode, checking the invariants that relate them.

use proptest::prelude::*;
use std::collections::BTreeSet;

use droidracer::core::{
    classify, detect, vc, Analysis, AnalysisBuilder, ClassifiedRace, HappensBefore, HbConfig,
    HbMode, RaceCategory, StreamOptions, StreamingAnalysis,
};
use droidracer::framework::{compile, App, AppBuilder, Stmt, UiEvent, UiEventKind};
use droidracer::sim::{run, RandomScheduler, SimConfig};
use droidracer::trace::{validate, ChunkedReader, MemLoc, Trace};

/// A cursor over fuzz bytes.
struct Bytes<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Bytes<'a> {
    fn new(data: &'a [u8]) -> Self {
        Bytes { data, pos: 0 }
    }

    fn next(&mut self) -> u8 {
        let b = self.data.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    fn pick(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.next() as usize % n
        }
    }
}

/// Derives a small random-but-valid app model from fuzz bytes.
///
/// Construction rules keep compilation total: handlers may only post
/// handlers with larger indices (no recursion), joins always follow a fork
/// of the same worker, and events are clicks of declared buttons.
fn build_random_app(bytes: &[u8]) -> (App, Vec<UiEvent>) {
    let mut c = Bytes::new(bytes);
    let mut b = AppBuilder::new("Fuzzed");
    let act = b.activity("Main");
    let n_vars = 1 + c.pick(5);
    let vars: Vec<_> = (0..n_vars)
        .map(|i| b.var("obj", format!("f{i}")))
        .collect();
    let n_mutexes = 1 + c.pick(2);
    let mutexes: Vec<_> = (0..n_mutexes)
        .map(|i| b.mutex(format!("m{i}")))
        .collect();

    let leaf = |c: &mut Bytes| -> Stmt {
        let v = vars[c.pick(vars.len())];
        match c.pick(4) {
            0 => Stmt::Read(v),
            1 | 2 => Stmt::Write(v),
            _ => Stmt::Synchronized(
                mutexes[c.pick(mutexes.len())],
                vec![if c.pick(2) == 0 {
                    Stmt::Read(v)
                } else {
                    Stmt::Write(v)
                }],
            ),
        }
    };

    // Handlers, declared in reverse so earlier ones can post later ones
    // without creating post cycles (the compile walk would reject them).
    let n_handlers = 1 + c.pick(3);
    let mut handlers_rev: Vec<droidracer::framework::HandlerId> = Vec::new();
    for i in (0..n_handlers).rev() {
        let len = c.pick(4);
        let mut body = Vec::new();
        for _ in 0..len {
            body.push(leaf(&mut c));
        }
        if !handlers_rev.is_empty() && c.pick(2) == 0 {
            body.push(Stmt::Post {
                handler: handlers_rev[c.pick(handlers_rev.len())],
                delay: if c.pick(3) == 0 {
                    Some(10 * (1 + c.pick(5) as u64))
                } else {
                    None
                },
                front: c.pick(6) == 0,
            });
        }
        handlers_rev.push(b.handler(format!("h{i}"), body));
    }
    let handlers = handlers_rev;

    // Workers: leaves plus posts to main.
    let n_workers = c.pick(3);
    let workers: Vec<_> = (0..n_workers)
        .map(|i| {
            let len = c.pick(3);
            let mut body = Vec::new();
            for _ in 0..len {
                body.push(leaf(&mut c));
            }
            if c.pick(2) == 0 {
                body.push(Stmt::Post {
                    handler: handlers[c.pick(handlers.len())],
                    delay: None,
                    front: false,
                });
            }
            b.worker(format!("w{i}"), body)
        })
        .collect();

    // An optional AsyncTask.
    let has_async = c.pick(2) == 0;
    let at = if has_async {
        let bg = vec![leaf(&mut c), Stmt::PublishProgress, leaf(&mut c)];
        Some(b.async_task(
            "T",
            vec![leaf(&mut c)],
            bg,
            vec![leaf(&mut c)],
            vec![leaf(&mut c)],
        ))
    } else {
        None
    };

    // onCreate: leaves, forks (optionally joined), posts, async execute.
    let mut on_create = Vec::new();
    for _ in 0..c.pick(4) {
        on_create.push(leaf(&mut c));
    }
    for &w in &workers {
        on_create.push(Stmt::ForkWorker(w));
        if c.pick(3) == 0 {
            on_create.push(Stmt::JoinWorker(w));
        }
    }
    for _ in 0..c.pick(3) {
        on_create.push(Stmt::Post {
            handler: handlers[c.pick(handlers.len())],
            delay: if c.pick(4) == 0 { Some(50) } else { None },
            front: c.pick(8) == 0,
        });
    }
    if let Some(at) = at {
        on_create.push(Stmt::ExecuteAsyncTask(at));
    }
    b.on_create(act, on_create);
    let mut destroy = Vec::new();
    for _ in 0..c.pick(3) {
        destroy.push(leaf(&mut c));
    }
    b.on_destroy(act, destroy);

    // Buttons and the event sequence.
    let n_buttons = c.pick(3);
    let buttons: Vec<_> = (0..n_buttons)
        .map(|i| {
            let mut body = vec![leaf(&mut c)];
            if c.pick(2) == 0 {
                body.push(leaf(&mut c));
            }
            b.button(act, format!("btn{i}"), body)
        })
        .collect();
    let mut events = Vec::new();
    for _ in 0..c.pick(4) {
        if !buttons.is_empty() {
            events.push(UiEvent::Widget(
                buttons[c.pick(buttons.len())],
                UiEventKind::Click,
            ));
        }
    }
    if c.pick(3) == 0 {
        events.push(UiEvent::Rotate);
    }
    if c.pick(2) == 0 {
        events.push(UiEvent::Back);
    }
    (b.finish(), events)
}

fn simulate(bytes: &[u8], seed: u64) -> Trace {
    let (app, events) = build_random_app(bytes);
    let compiled = compile(&app, &events).expect("random apps always compile");
    let result = run(
        &compiled.program,
        &mut RandomScheduler::new(seed),
        &SimConfig::default(),
    )
    .expect("random apps always run");
    result.trace
}

fn race_keys(analysis: &Analysis) -> BTreeSet<(MemLoc, RaceCategory)> {
    analysis
        .representatives()
        .iter()
        .map(|cr| (cr.race.loc, cr.category))
        .collect()
}

fn race_locs(analysis: &Analysis) -> BTreeSet<MemLoc> {
    analysis.races().iter().map(|cr| cr.race.loc).collect()
}


/// Batch races over the cancellation-filtered trace, classified — the
/// oracle for the streamed≡batch properties below.
fn batch_races(trace: &Trace, config: HbConfig) -> Vec<ClassifiedRace> {
    let filtered = trace.without_cancelled();
    let hb = HappensBefore::compute(&filtered, config);
    let index = filtered.index();
    detect(&filtered, &hb)
        .into_iter()
        .map(|race| ClassifiedRace {
            category: classify(&filtered, &index, &hb, &race),
            race,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// E6: every simulated trace satisfies the Figure 5 semantics.
    #[test]
    fn simulated_traces_are_valid(bytes in proptest::collection::vec(any::<u8>(), 0..160), seed in 0u64..1000) {
        let trace = simulate(&bytes, seed);
        prop_assert_eq!(validate(&trace), Ok(()));
    }

    /// The §6 optimization is lossless: merged and unmerged graphs report
    /// identical (location, category) race sets.
    #[test]
    fn node_merging_preserves_races(bytes in proptest::collection::vec(any::<u8>(), 0..160), seed in 0u64..500) {
        let trace = simulate(&bytes, seed);
        let merged = AnalysisBuilder::new().config(HbConfig::new()).analyze(&trace).unwrap();
        let unmerged = AnalysisBuilder::new().config(HbConfig::new().without_merging()).analyze(&trace).unwrap();
        prop_assert_eq!(race_keys(&merged), race_keys(&unmerged));
    }

    /// Happens-before respects trace order: `αj ⊀ αi` for `i < j`.
    #[test]
    fn hb_never_orders_backwards(bytes in proptest::collection::vec(any::<u8>(), 0..120), seed in 0u64..500) {
        let trace = simulate(&bytes, seed);
        let analysis = AnalysisBuilder::new().analyze(&trace).unwrap();
        let n = analysis.trace().len();
        // Sample pairs rather than the full quadratic set.
        for i in (0..n).step_by(3) {
            for j in (i + 1..n).step_by(5) {
                prop_assert!(!(analysis.hb().ordered(j, i) && i != j), "op {} ≺ op {}", j, i);
            }
        }
    }

    /// Dropping rules only removes orderings: races under the full relation
    /// survive under events-as-threads; races under naive-combined are a
    /// subset of the full relation's.
    #[test]
    fn mode_monotonicity(bytes in proptest::collection::vec(any::<u8>(), 0..160), seed in 0u64..500) {
        let trace = simulate(&bytes, seed);
        let full = AnalysisBuilder::new().analyze(&trace).unwrap();
        let weaker = AnalysisBuilder::new().mode(HbMode::EventsAsThreads).analyze(&trace).unwrap();
        prop_assert!(race_locs(&full).is_subset(&race_locs(&weaker)));
        let naive = AnalysisBuilder::new().mode(HbMode::NaiveCombined).analyze(&trace).unwrap();
        prop_assert!(race_locs(&naive).is_subset(&race_locs(&full)));
    }

    /// The vector-clock detector, the FastTrack detector and the
    /// graph-based multithreaded-only mode flag exactly the same locations.
    #[test]
    fn vc_equals_graph_mt_baseline(bytes in proptest::collection::vec(any::<u8>(), 0..160), seed in 0u64..500) {
        let trace = simulate(&bytes, seed);
        let vc_locs: BTreeSet<MemLoc> =
            vc::detect_multithreaded(&trace).iter().map(|r| r.loc).collect();
        let ft_locs: BTreeSet<MemLoc> =
            droidracer::core::fasttrack::detect(&trace).iter().map(|r| r.loc).collect();
        let graph = AnalysisBuilder::new().mode(HbMode::MultithreadedOnly).analyze(&trace).unwrap();
        prop_assert_eq!(&vc_locs, &race_locs(&graph));
        prop_assert_eq!(&ft_locs, &vc_locs);
    }

    /// Replay determinism: the same seed yields the same trace.
    #[test]
    fn same_seed_same_trace(bytes in proptest::collection::vec(any::<u8>(), 0..120), seed in 0u64..200) {
        let a = simulate(&bytes, seed);
        let b = simulate(&bytes, seed);
        prop_assert_eq!(a.ops(), b.ops());
    }

    /// Trace text serialization round-trips.
    #[test]
    fn trace_format_roundtrips(bytes in proptest::collection::vec(any::<u8>(), 0..120), seed in 0u64..200) {
        let trace = simulate(&bytes, seed);
        let text = droidracer::trace::to_text(&trace);
        let back = droidracer::trace::from_text(&text).expect("parses");
        prop_assert_eq!(back.ops(), trace.ops());
    }

    /// Streamed ≡ batch on every random chunk partition: the op sequence
    /// is cut at fuzz-chosen boundaries and pushed chunk by chunk; the
    /// session must reproduce the batch race set, classification and
    /// bit-identical matrices.
    #[test]
    fn streamed_equals_batch_on_random_partitions(
        bytes in proptest::collection::vec(any::<u8>(), 0..160),
        seed in 0u64..300,
        cuts in proptest::collection::vec(0usize..64, 0..12),
        mode_pick in 0usize..5,
    ) {
        let trace = simulate(&bytes, seed);
        let config = HbConfig::for_mode(HbMode::all()[mode_pick]);
        let expected = batch_races(&trace, config);
        let hb = HappensBefore::compute(&trace.without_cancelled(), config);

        let mut s = StreamingAnalysis::new(config, StreamOptions::default());
        let mut pos = 0usize;
        for cut in cuts {
            let next = (pos + cut).min(trace.len());
            s.push_chunk(&trace.ops()[pos..next]).expect("unbudgeted");
            pos = next;
        }
        s.push_chunk(&trace.ops()[pos..]).expect("unbudgeted");
        let out = s.finish(trace.names()).expect("unbudgeted");

        prop_assert_eq!(&out.races, &expected);
        let (st, mt) = out.matrices.as_ref().expect("unsummarized");
        let (bst, bmt) = hb.relation_matrices();
        prop_assert_eq!(st, bst);
        prop_assert_eq!(mt.as_ref(), bmt);
    }

    /// Chunked text reading is split-point-invariant: serializing the
    /// trace, tearing the text at arbitrary byte positions (including
    /// mid-record) and streaming the recovered ops yields the same
    /// analysis as the batch pipeline on the original trace.
    #[test]
    fn torn_text_chunks_stream_to_the_batch_result(
        bytes in proptest::collection::vec(any::<u8>(), 0..120),
        seed in 0u64..200,
        tears in proptest::collection::vec(1usize..97, 1..8),
    ) {
        let trace = simulate(&bytes, seed);
        let text = droidracer::trace::to_text(&trace);
        let config = HbConfig::new();
        let expected = batch_races(&trace, config);

        let mut reader = ChunkedReader::new();
        let mut s = StreamingAnalysis::new(config, StreamOptions::default());
        let mut pos = 0usize;
        for step in tears {
            let mut next = (pos + step).min(text.len());
            while !text.is_char_boundary(next) {
                next += 1;
            }
            let ops = reader.push_text(&text[pos..next]).expect("valid header");
            s.push_chunk(&ops).expect("unbudgeted");
            pos = next;
        }
        let ops = reader.push_text(&text[pos..]).expect("valid header");
        s.push_chunk(&ops).expect("unbudgeted");
        let (names, rest, diags) = reader.finish().expect("valid header");
        prop_assert!(diags.is_empty(), "clean text needs no repairs");
        s.push_chunk(&rest).expect("unbudgeted");
        let out = s.finish(&names).expect("unbudgeted");
        prop_assert_eq!(&out.races, &expected);
    }
}
