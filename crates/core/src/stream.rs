//! Streaming/online race detection with a streamed ≡ batch contract.
//!
//! The batch pipeline parses a whole trace, closes the happens-before
//! relation, then scans for races. [`StreamingAnalysis`] instead ingests
//! operations one at a time (or in chunks), maintains the graph's direct
//! edges and a sparse column-oriented happens-before state incrementally,
//! and emits [`RaceEvent`]s as soon as they become derivable — long before
//! the trace ends.
//!
//! # Why columns
//!
//! The batch engine stores the relation row-wise (`row(i)` = successors of
//! `i`) and saturates rows in reverse trace order. Online, the natural
//! orientation is the transpose: `col(j)` holds the *predecessors* of node
//! `j`. All happens-before edges point forward in the trace, so every base
//! edge produced by a newly ingested operation targets that operation's own
//! node, and a recomputation pass over the dirty columns in *increasing* id
//! order sees only complete predecessor columns. The transposed fixpoint
//! equations are exactly the batch engine's (see `recompute_col`), so the
//! least fixpoint — and therefore the final matrices — are bit-identical.
//!
//! # The frozen-column invariant
//!
//! After each boundary fixpoint (one per `push_op`/`push_chunk` call),
//! every existing column is final:
//!
//! * base rules only ever add edges into the newest node at ingest time;
//! * FIFO/NOPRE firings target the `begin` node of a candidate, and every
//!   candidate is decided at the boundary that registered it — its guard
//!   reads only columns of nodes older than its `begin` node, which are
//!   already frozen, so a candidate unfired at its own boundary can never
//!   fire later and is dropped.
//!
//! Three consequences carry the design: early race emission is sound (an
//! unordered pair of closed access blocks stays unordered), races can be
//! classified the moment they are found (posting chains only look
//! backwards), and fully-closed prefix columns can be *retired* into
//! compact run-length digests without losing information — this is what
//! bounds memory in summarized mode.
//!
//! # Cancellation
//!
//! `cancel(t)` retroactively erases `post`/`enable` operations anywhere in
//! the trace (§4.2), which can merge access blocks and *remove* orderings.
//! The session handles a mid-stream cancel by replaying the retained prefix
//! into a fresh engine and diffing the standing race set: newly invalid
//! reports are retracted ([`StreamEvent::Retracted`]), newly derivable ones
//! emitted.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

use droidracer_trace::{
    IndexBuilder, LockId, MemLoc, Names, Op, OpKind, PostKind, TaskId, ThreadId, Trace,
};

use crate::bitmatrix::BitMatrix;
use crate::classify::{classify_with, RaceCategory};
use crate::engine::{fifo_delay_ok, EngineStats, HappensBefore};
use crate::graph::{DirectEdges, GraphBuilder, HbGraph, NodeId};
use crate::race::{find_races_with, pick_witness, BlockAccesses, Race};
use crate::report::{CategoryCounts, ClassifiedRace};
use crate::robust::{Budget, BudgetExhausted, BudgetReason};
use crate::rules::HbConfig;
use crate::simd;

/// Options controlling a [`StreamingAnalysis`] session.
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Retire fully-closed prefix columns into run-length digests, bounding
    /// live matrix memory. Retirement is lossless for race detection and
    /// classification, but the session no longer reconstructs whole
    /// relation matrices at [`StreamingAnalysis::finish`].
    pub summarize: bool,
    /// How many of the newest graph nodes keep live (uncompressed) columns
    /// in summarized mode. Clamped to at least 1.
    pub window: usize,
    /// Optional resource budget; when exhausted the session fails soft with
    /// a [`BudgetExhausted`] carrying partial counters.
    pub budget: Option<Budget>,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            summarize: false,
            window: 128,
            budget: None,
        }
    }
}

/// Counters describing a streaming session. Unlike the relation matrices
/// and the race set, these are *not* part of the streamed ≡ batch contract:
/// they describe how the work was scheduled, which legitimately depends on
/// the chunking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Operations ingested (including ones filtered out by cancellation).
    pub ops: u64,
    /// `push_op`/`push_chunk` calls — one boundary fixpoint each.
    pub chunks: u64,
    /// Races emitted incrementally (before `finish`).
    pub races_emitted: u64,
    /// Standing races retracted (only cancellation can retract).
    pub retractions: u64,
    /// Races first derived at `finish` that incremental emission missed
    /// (zero on cancel-free valid traces — asserted by the test suite).
    pub late_emissions: u64,
    /// Full replays triggered by mid-stream `cancel` operations.
    pub rebuilds: u64,
    /// Columns retired into run-length digests (summarized mode).
    pub retired_rows: u64,
    /// 64-bit words touched by column recomputation — comparable in kind
    /// (not in value) to the batch engine's `word_ops`.
    pub word_ops: u64,
    /// Peak footprint of the relation state in bits, sampled at every
    /// boundary before retirement: live words × 64 + retired run-length
    /// entries × 128.
    pub peak_matrix_bits: u64,
    /// Current footprint of the relation state in bits.
    pub live_matrix_bits: u64,
    /// Whether the session fell back to a batch computation at `finish`
    /// because the stream was not a well-formed prefix-closed trace.
    pub degenerate: bool,
}

/// A race report produced (or withdrawn) mid-stream. Indices are positions
/// in the *original* op stream as pushed, so they stay stable across
/// cancellation replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceEvent {
    /// The race, with `first`/`second` as original stream positions.
    pub race: Race,
    /// Its §4.3 classification.
    pub category: RaceCategory,
    /// Number of ops that had been pushed when the event fired.
    pub at: usize,
}

/// An incremental result of pushing operations into a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEvent {
    /// A new race became derivable.
    Emitted(RaceEvent),
    /// A previously emitted race is no longer derivable (or changed
    /// category) after a `cancel` erased posts it depended on.
    Retracted(RaceEvent),
}

/// The final result of a streaming session.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// All races with classification, in the batch engine's deterministic
    /// order. Indices are positions in the *cancellation-filtered* op
    /// sequence — directly comparable to a batch analysis of
    /// `trace.without_cancelled()`.
    pub races: Vec<ClassifiedRace>,
    /// Per-category totals.
    pub counts: CategoryCounts,
    /// The closed relation matrices `(st, Some(mt))` — or `(plain, None)`
    /// in the unrestricted ablation mode — reconstructed from the columns.
    /// `None` in summarized mode and after a degenerate fallback under a
    /// matrix-bit budget.
    pub matrices: Option<(BitMatrix, Option<BitMatrix>)>,
    /// Maps each filtered op index to its original stream position.
    pub orig_of: Vec<usize>,
    /// Session counters.
    pub stats: StreamStats,
    /// Events produced at `finish` (late emissions/retractions discovered
    /// while reconciling the standing set against the final state).
    pub events: Vec<StreamEvent>,
}

// ---------------------------------------------------------------------------
// Column store
// ---------------------------------------------------------------------------

/// One predecessor column: live words with conservative nonzero-word
/// bounds, or a frozen run-length digest.
#[derive(Debug, Clone)]
enum Col {
    /// Mutable words; `col(j)` has `j.div_ceil(64)` words (bits `< j`).
    /// Every nonzero word lies in `[lo, hi)` — the same conservative
    /// bounds discipline as [`BitMatrix`], maintained by `Cols::set` and
    /// rescanned after a recompute. Predecessor ORs touch only the bounded
    /// span, which is what brings `stream.word_ops` near the batch
    /// engine's (batch rows and stream columns count the same kind of
    /// work: words actually visited inside bounds).
    Live {
        words: Vec<u64>,
        lo: usize,
        hi: usize,
    },
    /// Retired: `(word, run)` pairs compressing the frozen word array.
    Retired(Vec<(u64, u32)>),
}

impl Col {
    /// Wraps a recomputed word array as a live column, rescanning its
    /// nonzero bounds (one pass — cheap next to the ORs that built it).
    fn live_from(words: Vec<u64>) -> Col {
        let (lo, hi) = match words.iter().position(|&w| w != 0) {
            Some(first) => {
                let last = words
                    .iter()
                    .rposition(|&w| w != 0)
                    .expect("a nonzero word exists");
                (first, last + 1)
            }
            None => (0, 0),
        };
        Col::Live { words, lo, hi }
    }

    fn get(&self, bit: usize) -> bool {
        let (w, m) = (bit / 64, 1u64 << (bit % 64));
        match self {
            Col::Live { words, .. } => words.get(w).map(|x| x & m != 0).unwrap_or(false),
            Col::Retired(rle) => {
                let mut at = 0usize;
                for &(word, run) in rle {
                    let next = at + run as usize;
                    if w < next {
                        return word & m != 0;
                    }
                    at = next;
                }
                false
            }
        }
    }

    /// The column's conservative nonzero-word span, clamped to `cap`
    /// words. For retired columns the span is derived from the digest's
    /// nonzero runs (the digest is short by construction).
    fn bounds(&self, cap: usize) -> (usize, usize) {
        match self {
            Col::Live { lo, hi, .. } => ((*lo).min(cap), (*hi).min(cap)),
            Col::Retired(rle) => {
                let (mut lo, mut hi, mut at) = (0usize, 0usize, 0usize);
                for &(word, run) in rle {
                    let next = at + run as usize;
                    if word != 0 {
                        if hi == 0 {
                            lo = at;
                        }
                        hi = next;
                    }
                    at = next;
                }
                (lo.min(cap), hi.min(cap))
            }
        }
    }

    /// ORs the column's words into the prefix of `dst`, visiting only the
    /// bounded nonzero span; returns the number of words touched (the
    /// column engine's `word_ops` currency).
    fn or_into_counted(&self, dst: &mut [u64]) -> u64 {
        match self {
            Col::Live { words, lo, hi } => {
                let hi = (*hi).min(dst.len()).min(words.len());
                let lo = (*lo).min(hi);
                simd::or_into(&mut dst[lo..hi], &words[lo..hi]);
                (hi - lo) as u64
            }
            Col::Retired(rle) => {
                let mut touched = 0u64;
                let mut at = 0usize;
                'outer: for &(word, run) in rle {
                    if word == 0 {
                        at += run as usize;
                        continue;
                    }
                    for _ in 0..run {
                        if at >= dst.len() {
                            break 'outer;
                        }
                        dst[at] |= word;
                        at += 1;
                        touched += 1;
                    }
                }
                touched
            }
        }
    }

    /// Calls `f` with every set bit position.
    fn for_each_set(&self, mut f: impl FnMut(usize)) {
        match self {
            Col::Live { words, lo, hi } => {
                simd::for_each_set(&words[*lo..*hi], *lo, &mut f);
            }
            Col::Retired(rle) => {
                let mut visit = |w: usize, mut word: u64| {
                    while word != 0 {
                        f(w * 64 + word.trailing_zeros() as usize);
                        word &= word - 1;
                    }
                };
                let mut at = 0usize;
                for &(word, run) in rle {
                    if word != 0 {
                        for w in at..at + run as usize {
                            visit(w, word);
                        }
                    }
                    at += run as usize;
                }
            }
        }
    }
}

/// A growable set of predecessor columns with footprint accounting.
#[derive(Debug, Clone, Default)]
struct Cols {
    cols: Vec<Col>,
    live_words: u64,
    retired_entries: u64,
}

impl Cols {
    fn push_col(&mut self) {
        let id = self.cols.len();
        let words = id.div_ceil(64);
        self.cols.push(Col::Live {
            words: vec![0; words],
            lo: 0,
            hi: 0,
        });
        self.live_words += words as u64;
    }

    /// Sets bit `i` in column `j`; returns whether it was newly set.
    /// Columns are only written while live.
    fn set(&mut self, i: NodeId, j: NodeId) -> bool {
        debug_assert!(i < j);
        match &mut self.cols[j] {
            Col::Live { words, lo, hi } => {
                let (w, m) = (i / 64, 1u64 << (i % 64));
                let was = words[w] & m != 0;
                words[w] |= m;
                if *lo == *hi {
                    (*lo, *hi) = (w, w + 1);
                } else {
                    *lo = (*lo).min(w);
                    *hi = (*hi).max(w + 1);
                }
                !was
            }
            Col::Retired(_) => unreachable!("retired columns are frozen"),
        }
    }

    fn get(&self, i: NodeId, j: NodeId) -> bool {
        self.cols[j].get(i)
    }

    /// Retires column `j` into a run-length digest.
    fn retire(&mut self, j: NodeId) {
        let Col::Live { words, .. } = &self.cols[j] else {
            return;
        };
        let mut rle: Vec<(u64, u32)> = Vec::new();
        for &w in words {
            match rle.last_mut() {
                Some((word, run)) if *word == w => *run += 1,
                _ => rle.push((w, 1)),
            }
        }
        // A digest entry costs two words; short or irregular columns can
        // be cheaper raw. Keep whichever representation is smaller, so
        // summarization only ever shrinks the footprint.
        if rle.len() as u64 * 2 >= words.len() as u64 {
            return;
        }
        self.live_words -= words.len() as u64;
        self.retired_entries += rle.len() as u64;
        self.cols[j] = Col::Retired(rle);
    }

    /// Current footprint in bits: live words plus 128 bits per retired
    /// run-length entry (a `(u64, u32)` pair padded to two words).
    fn footprint_bits(&self) -> u64 {
        self.live_words * 64 + self.retired_entries * 128
    }
}

// ---------------------------------------------------------------------------
// Budget polling
// ---------------------------------------------------------------------------

/// Cooperative budget polling for the streaming engine, mirroring the batch
/// engine's poller: unlimited budgets cost one branch, deadlines are
/// sampled every 64 ticks.
#[derive(Debug, Clone)]
struct StreamPoll {
    limited: bool,
    max_ops: Option<u64>,
    max_matrix_bits: Option<u64>,
    deadline: Option<Instant>,
    ticks: u32,
}

impl StreamPoll {
    fn new(budget: Option<&Budget>) -> Self {
        match budget {
            Some(b) => StreamPoll {
                limited: b.is_limited(),
                max_ops: b.max_ops,
                max_matrix_bits: b.max_matrix_bits,
                deadline: b.deadline,
                ticks: 0,
            },
            None => StreamPoll {
                limited: false,
                max_ops: None,
                max_matrix_bits: None,
                deadline: None,
                ticks: 0,
            },
        }
    }

    #[inline]
    fn check(&mut self, work_done: u64) -> Result<(), BudgetReason> {
        if !self.limited {
            return Ok(());
        }
        if let Some(cap) = self.max_ops {
            if work_done > cap {
                return Err(BudgetReason::OpCap);
            }
        }
        if let Some(deadline) = self.deadline {
            if self.ticks & 63 == 0 && Instant::now() >= deadline {
                return Err(BudgetReason::Deadline);
            }
            self.ticks = self.ticks.wrapping_add(1);
        }
        Ok(())
    }

    fn check_bits(&self, bits: u64) -> Result<(), BudgetReason> {
        match self.max_matrix_bits {
            Some(cap) if bits > cap => Err(BudgetReason::MatrixBits),
            _ => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// The incremental engine
// ---------------------------------------------------------------------------

/// A FIFO/NOPRE candidate pending in the current boundary. Mirrors the
/// batch engine's `TaskPairCandidate`; unlike batch candidates these live
/// for exactly one boundary — the frozen-column invariant proves a
/// candidate unfired at its registration boundary can never fire.
#[derive(Debug, Clone, Copy)]
struct StreamCand {
    end_node: NodeId,
    begin_node: NodeId,
    post1: Option<(NodeId, PostKind)>,
    post2: Option<(NodeId, PostKind)>,
    first: TaskId,
}

/// The column-oriented incremental closure engine. Operates on the
/// cancellation-filtered ("retained") op sequence; the session wrapper owns
/// the original stream and the cancel replays.
#[derive(Debug)]
struct StreamEngine {
    config: HbConfig,
    plain: bool,
    // Retained ops and derived structure.
    ops: Vec<Op>,
    indexer: IndexBuilder,
    builder: GraphBuilder,
    // Relation state: predecessor columns plus direct-edge adjacency.
    st: Cols,
    mt: Cols,
    st_edges: DirectEdges,
    mt_edges: DirectEdges,
    thread_masks: Vec<Vec<u64>>,
    dirty_targets: Vec<NodeId>,
    // Online base-rule state.
    prev_node: HashMap<ThreadId, NodeId>,
    loop_node: HashMap<ThreadId, NodeId>,
    attach_node: HashMap<ThreadId, NodeId>,
    pending_cross_post: HashSet<ThreadId>,
    init_seen: HashSet<ThreadId>,
    first_exit: HashMap<ThreadId, NodeId>,
    forks_awaiting: HashMap<ThreadId, Vec<NodeId>>,
    lock_releases: HashMap<LockId, Vec<(NodeId, ThreadId, Option<TaskId>)>>,
    // Online task state.
    task_nodes: HashMap<TaskId, Vec<NodeId>>,
    post_node: HashMap<TaskId, (NodeId, PostKind)>,
    post_target: HashMap<TaskId, ThreadId>,
    enable_node: HashMap<TaskId, NodeId>,
    end_node: HashMap<TaskId, NodeId>,
    posted: HashSet<TaskId>,
    begun: HashSet<TaskId>,
    ended: HashSet<TaskId>,
    open_task: HashMap<ThreadId, TaskId>,
    per_thread_begun: HashMap<ThreadId, Vec<TaskId>>,
    // Candidates of the current boundary.
    pending: Vec<StreamCand>,
    cand_done: Vec<bool>,
    cand_seen: Vec<bool>,
    watch: HashMap<NodeId, Vec<usize>>,
    // Emission state.
    per_loc: HashMap<MemLoc, Vec<(NodeId, BlockAccesses)>>,
    slot: HashMap<(MemLoc, NodeId), usize>,
    node_locs: HashMap<NodeId, Vec<MemLoc>>,
    closed: Vec<bool>,
    newly_closed: Vec<NodeId>,
    // Lifecycle.
    degenerate: bool,
    summarize: bool,
    window: usize,
    retire_cursor: usize,
    poll: StreamPoll,
    word_ops: u64,
    work_base: u64,
    peak_bits: u64,
    retired_rows: u64,
    fifo_fired: u64,
    nopre_fired: u64,
    scratch: Vec<u64>,
    frontier: Vec<NodeId>,
}

impl StreamEngine {
    fn new(config: HbConfig, options: &StreamOptions, work_base: u64) -> Self {
        StreamEngine {
            plain: !config.rules.restricted_transitivity,
            config,
            ops: Vec::new(),
            indexer: IndexBuilder::new(),
            builder: GraphBuilder::new(config.merge_accesses),
            st: Cols::default(),
            mt: Cols::default(),
            st_edges: DirectEdges::default(),
            mt_edges: DirectEdges::default(),
            thread_masks: Vec::new(),
            dirty_targets: Vec::new(),
            prev_node: HashMap::new(),
            loop_node: HashMap::new(),
            attach_node: HashMap::new(),
            pending_cross_post: HashSet::new(),
            init_seen: HashSet::new(),
            first_exit: HashMap::new(),
            forks_awaiting: HashMap::new(),
            lock_releases: HashMap::new(),
            task_nodes: HashMap::new(),
            post_node: HashMap::new(),
            post_target: HashMap::new(),
            enable_node: HashMap::new(),
            end_node: HashMap::new(),
            posted: HashSet::new(),
            begun: HashSet::new(),
            ended: HashSet::new(),
            open_task: HashMap::new(),
            per_thread_begun: HashMap::new(),
            pending: Vec::new(),
            cand_done: Vec::new(),
            cand_seen: Vec::new(),
            watch: HashMap::new(),
            per_loc: HashMap::new(),
            slot: HashMap::new(),
            node_locs: HashMap::new(),
            closed: Vec::new(),
            newly_closed: Vec::new(),
            degenerate: false,
            summarize: options.summarize,
            window: options.window.max(1),
            retire_cursor: 0,
            poll: StreamPoll::new(options.budget.as_ref()),
            word_ops: 0,
            work_base,
            peak_bits: 0,
            retired_rows: 0,
            fifo_fired: 0,
            nopre_fired: 0,
            scratch: Vec::new(),
            frontier: Vec::new(),
        }
    }

    fn node_count(&self) -> usize {
        self.st.cols.len()
    }

    fn node_thread(&self, id: NodeId) -> ThreadId {
        self.builder.nodes()[id].thread
    }

    /// Node-level ordering `a ≺ b`; non-reflexive, like the batch
    /// `HappensBefore::ordered_nodes`.
    fn ordered_nodes(&self, a: NodeId, b: NodeId) -> bool {
        if a >= b {
            return false;
        }
        if self.plain {
            self.st.get(a, b)
        } else {
            self.st.get(a, b) || self.mt.get(a, b)
        }
    }

    /// Op-level ordering, reflexive, as the batch `HappensBefore::ordered`.
    fn ordered_ops(&self, i: usize, j: usize) -> bool {
        if i == j {
            return true;
        }
        let (a, b) = (self.builder.node_of(i), self.builder.node_of(j));
        if a == b {
            return i < j;
        }
        self.ordered_nodes(a, b)
    }

    /// Records the direct edge `a → b`. Backward edges are impossible for
    /// well-formed streams; seeing one flips the degenerate fallback
    /// instead of corrupting state.
    fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        if a > b {
            self.degenerate = true;
            return false;
        }
        let cross = !self.plain && self.node_thread(a) != self.node_thread(b);
        let newly = if cross {
            self.mt.set(a, b)
        } else {
            self.st.set(a, b)
        };
        if newly {
            if cross {
                self.mt_edges.push(a, b);
            } else {
                self.st_edges.push(a, b);
            }
            self.dirty_targets.push(b);
        }
        newly
    }

    fn on_new_node(&mut self, id: NodeId, thread: ThreadId) {
        self.st.push_col();
        if !self.plain {
            self.mt.push_col();
        }
        self.st_edges.grow_to(id + 1);
        self.mt_edges.grow_to(id + 1);
        self.closed.push(false);
        let t = thread.index();
        if t >= self.thread_masks.len() {
            self.thread_masks.resize_with(t + 1, Vec::new);
        }
        let mask = &mut self.thread_masks[t];
        let w = id / 64;
        if w >= mask.len() {
            mask.resize(w + 1, 0);
        }
        mask[w] |= 1u64 << (id % 64);
    }

    fn record_access(&mut self, loc: MemLoc, node: NodeId, i: usize, is_write: bool) {
        let blocks = self.per_loc.entry(loc).or_default();
        let node_locs = &mut self.node_locs;
        let idx = *self.slot.entry((loc, node)).or_insert_with(|| {
            blocks.push((node, BlockAccesses::default()));
            node_locs.entry(node).or_default().push(loc);
            blocks.len() - 1
        });
        let acc = &mut blocks[idx].1;
        let slot_ref = if is_write {
            &mut acc.first_write
        } else {
            &mut acc.first_read
        };
        if slot_ref.is_none() {
            *slot_ref = Some(i);
        }
    }

    /// Checks the stream invariants an op must satisfy for the online rules
    /// to be equivalent to the batch engine's whole-trace view. A violation
    /// (possible only for traces the validator would reject) makes the
    /// session fall back to a batch computation at `finish`.
    fn degenerate_trigger(&self, op: Op) -> bool {
        let rules = &self.config.rules;
        match op.kind {
            OpKind::Post { task, .. } => {
                // A re-post or a post of an already-running task would
                // retroactively rewrite the task's info in the batch index.
                self.posted.contains(&task) || self.begun.contains(&task)
            }
            OpKind::Enable { task } => {
                // The batch ENABLE edge uses the final enable site; an
                // enable arriving after the post would point backwards.
                self.posted.contains(&task)
            }
            OpKind::Begin { task } => {
                if self.begun.contains(&task) || self.open_task.contains_key(&op.thread) {
                    return true;
                }
                // Batch groups candidates by the post's target thread; a
                // task beginning elsewhere breaks the grouping.
                if let Some(&t) = self.post_target.get(&task) {
                    if t != op.thread {
                        return true;
                    }
                }
                // ASYNC-PO edges exist only on threads with a loopOnQ;
                // whether the batch adds them depends on the whole trace,
                // but a task beginning before its thread loops is invalid
                // anyway.
                rules.async_po
                    && !rules.whole_thread_program_order
                    && !self.loop_node.contains_key(&op.thread)
            }
            OpKind::End { task } => {
                !self.begun.contains(&task)
                    || self.ended.contains(&task)
                    || self.open_task.get(&op.thread) != Some(&task)
            }
            OpKind::AttachQ => {
                // A cross-thread post already arrived for this queue; the
                // batch ATTACH-Q edge would point backwards.
                rules.attach_q && self.pending_cross_post.contains(&op.thread)
            }
            // Cancels are filtered by the session wrapper; one reaching the
            // engine is a bug shield, not a semantics.
            OpKind::Cancel { .. } => true,
            _ => false,
        }
    }

    /// Ingests one retained op: graph/index growth, base-rule edges,
    /// candidate registration. No fixpoint runs here — `boundary` does.
    fn ingest(&mut self, op: Op) {
        if self.degenerate {
            return;
        }
        if self.degenerate_trigger(op) {
            self.degenerate = true;
            return;
        }
        let i = self.ops.len();
        let task = self.indexer.push(op);
        let push = self.builder.push_op(i, op, task, false);
        self.ops.push(op);
        if push.new_node {
            self.on_new_node(push.node, op.thread);
            if let Some(t) = task {
                self.task_nodes.entry(t).or_default().push(push.node);
            }
        }
        if let Some(c) = push.closed {
            self.newly_closed.push(c);
        }
        if push.new_node && self.builder.open_block_of(op.thread) != Some(push.node) {
            self.newly_closed.push(push.node);
        }
        if let Some(loc) = op.kind.accessed_loc() {
            self.record_access(loc, push.node, i, op.kind.is_write());
        }
        if push.new_node {
            self.program_order(push.node, op.thread, task);
        }
        self.apply_op_rules(op, push.node, task);
    }

    /// NO-Q-PO / ASYNC-PO for a freshly created node, matching the batch
    /// `add_program_order_edges` split: whole-thread chaining before (or
    /// without) the thread's `loopOnQ`, `loopOnQ ≺ everything later`
    /// afterwards, and task-internal chaining for ASYNC-PO.
    fn program_order(&mut self, n: NodeId, thread: ThreadId, task: Option<TaskId>) {
        let rules = self.config.rules;
        let prev = self.prev_node.insert(thread, n);
        let lp = self.loop_node.get(&thread).copied();
        if rules.no_q_po {
            match lp {
                Some(l) if !rules.whole_thread_program_order => {
                    self.add_edge(l, n);
                }
                _ => {
                    if let Some(p) = prev {
                        self.add_edge(p, n);
                    }
                }
            }
        }
        if rules.async_po && !rules.whole_thread_program_order && task.is_some() {
            if let Some(p) = prev {
                if self.builder.nodes()[p].task == task {
                    self.add_edge(p, n);
                }
            }
        }
    }

    fn apply_op_rules(&mut self, op: Op, n: NodeId, task: Option<TaskId>) {
        let rules = self.config.rules;
        match op.kind {
            OpKind::ThreadInit => {
                if self.init_seen.insert(op.thread) {
                    if let Some(forks) = self.forks_awaiting.remove(&op.thread) {
                        for f in forks {
                            self.add_edge(f, n);
                        }
                    }
                }
            }
            OpKind::ThreadExit => {
                self.first_exit.entry(op.thread).or_insert(n);
            }
            OpKind::Fork { child } => {
                // Batch: every fork preceding the child's *first* init gets
                // an edge; forks after it get none.
                if rules.fork && !self.init_seen.contains(&child) {
                    self.forks_awaiting.entry(child).or_default().push(n);
                }
            }
            OpKind::Join { child } => {
                if rules.join {
                    if let Some(&x) = self.first_exit.get(&child) {
                        self.add_edge(x, n);
                    }
                }
            }
            OpKind::AttachQ => {
                self.attach_node.entry(op.thread).or_insert(n);
            }
            OpKind::LoopOnQ => {
                self.loop_node.entry(op.thread).or_insert(n);
            }
            OpKind::Post { task: t, target, kind, .. } => {
                self.posted.insert(t);
                self.post_node.insert(t, (n, kind));
                self.post_target.insert(t, target);
                if rules.enable {
                    if let Some(&e) = self.enable_node.get(&t) {
                        self.add_edge(e, n);
                    }
                }
                if rules.attach_q && op.thread != target {
                    match self.attach_node.get(&target) {
                        Some(&a) => {
                            self.add_edge(a, n);
                        }
                        None => {
                            self.pending_cross_post.insert(target);
                        }
                    }
                }
            }
            OpKind::Enable { task: t } => {
                self.enable_node.insert(t, n);
            }
            OpKind::Begin { task: t } => {
                self.begun.insert(t);
                self.open_task.insert(op.thread, t);
                if rules.post {
                    if let Some(&(p, _)) = self.post_node.get(&t) {
                        self.add_edge(p, n);
                    }
                }
                if rules.fifo || rules.nopre {
                    let group = self
                        .per_thread_begun
                        .entry(op.thread)
                        .or_default()
                        .clone();
                    for first in group {
                        if !self.ended.contains(&first) {
                            // Overlapping tasks on one thread: invalid, and
                            // the batch candidate enumeration asserts
                            // against it.
                            self.degenerate = true;
                            return;
                        }
                        self.register_candidate(first, t, n);
                    }
                }
                self.per_thread_begun.entry(op.thread).or_default().push(t);
            }
            OpKind::End { task: t } => {
                self.ended.insert(t);
                self.end_node.insert(t, n);
                self.open_task.remove(&op.thread);
            }
            OpKind::Acquire { lock } => {
                if rules.lock || rules.same_thread_lock {
                    let releases = self.lock_releases.get(&lock).cloned().unwrap_or_default();
                    for (rn, rt, rtask) in releases {
                        let cross = rt != op.thread;
                        let applies = if cross {
                            rules.lock
                        } else {
                            rules.same_thread_lock && rtask != task
                        };
                        if applies {
                            self.add_edge(rn, n);
                        }
                    }
                }
            }
            OpKind::Release { lock } => {
                if rules.lock || rules.same_thread_lock {
                    self.lock_releases
                        .entry(lock)
                        .or_default()
                        .push((n, op.thread, task));
                }
            }
            OpKind::Read { .. } | OpKind::Write { .. } => {}
            OpKind::Cancel { .. } => {
                // Unreachable: the degenerate trigger catches cancels.
                self.degenerate = true;
            }
        }
    }

    /// Registers the FIFO/NOPRE candidate for the ordered task pair
    /// `(first, second)`, indexing it under the columns whose recomputation
    /// can change its evaluation within this boundary.
    fn register_candidate(&mut self, first: TaskId, _second: TaskId, begin_n: NodeId) {
        let rules = self.config.rules;
        let Some(&end_node) = self.end_node.get(&first) else {
            return;
        };
        let post1 = self.post_node.get(&first).copied();
        let post2 = self.post_node.get(&_second).copied();
        let fifo_possible = rules.fifo
            && matches!(
                (post1, post2),
                (Some((_, k1)), Some((_, k2))) if fifo_delay_ok(k1, k2, rules.delayed_fifo)
            );
        let nopre_possible =
            rules.nopre && post2.is_some() && self.task_nodes.contains_key(&first);
        if !fifo_possible && !nopre_possible {
            return;
        }
        let idx = self.pending.len();
        self.pending.push(StreamCand {
            end_node,
            begin_node: begin_n,
            post1,
            post2,
            first,
        });
        self.cand_done.push(false);
        self.cand_seen.push(false);
        self.watch.entry(begin_n).or_default().push(idx);
        if let Some((p2, _)) = post2 {
            self.watch.entry(p2).or_default().push(idx);
        }
    }

    /// Evaluates one candidate, firing at most one `end ≺ begin` edge —
    /// the batch `examine_candidate` over columns.
    fn examine(&mut self, c: usize) -> bool {
        if self.cand_done[c] {
            return false;
        }
        let cand = self.pending[c];
        if self.ordered_nodes(cand.end_node, cand.begin_node) {
            self.cand_done[c] = true;
            return false;
        }
        let rules = self.config.rules;
        let mut fifo_fire = false;
        if rules.fifo {
            if let (Some((p1, k1)), Some((p2, k2))) = (cand.post1, cand.post2) {
                if fifo_delay_ok(k1, k2, rules.delayed_fifo)
                    && (p1 == p2 || self.ordered_nodes(p1, p2))
                {
                    fifo_fire = true;
                }
            }
        }
        let mut nopre_fire = false;
        if !fifo_fire && rules.nopre {
            if let Some((p2, _)) = cand.post2 {
                if let Some(nodes) = self.task_nodes.get(&cand.first) {
                    nopre_fire = nodes.iter().any(|&k| k == p2 || self.ordered_nodes(k, p2));
                }
            }
        }
        if (fifo_fire || nopre_fire) && self.add_edge(cand.end_node, cand.begin_node) {
            self.cand_done[c] = true;
            if fifo_fire {
                self.fifo_fired += 1;
            } else {
                self.nopre_fired += 1;
            }
            return true;
        }
        false
    }

    /// Forward dirty propagation: every column reachable from a freshly
    /// targeted node may change; recompute them in increasing id order so
    /// each recomputation sees complete predecessor columns. Returns the
    /// recomputed ids.
    fn flush(&mut self) -> Result<Vec<NodeId>, BudgetReason> {
        if self.dirty_targets.is_empty() {
            return Ok(Vec::new());
        }
        let seeds = std::mem::take(&mut self.dirty_targets);
        let mut mark: HashSet<NodeId> = HashSet::new();
        let mut stack: Vec<NodeId> = Vec::new();
        for s in seeds {
            if mark.insert(s) {
                stack.push(s);
            }
        }
        while let Some(x) = stack.pop() {
            for &d in self.st_edges.succs(x) {
                if mark.insert(d) {
                    stack.push(d);
                }
            }
            for &d in self.mt_edges.succs(x) {
                if mark.insert(d) {
                    stack.push(d);
                }
            }
        }
        let mut dirty: Vec<NodeId> = mark.into_iter().collect();
        dirty.sort_unstable();
        for &j in &dirty {
            self.recompute_col(j)?;
        }
        Ok(dirty)
    }

    /// Recomputes column `j` from its direct predecessors — the transpose
    /// of the batch `recompute_row`:
    ///
    /// * `Plain`: `col(j)` is the direct predecessor bits (already set by
    ///   `add_edge`) ORed with every direct predecessor's column.
    /// * `Restricted`: TRANS-ST composes same-thread chains, and every
    ///   same-thread predecessor of `j` is reached through a *direct* st
    ///   predecessor, so the st column is the OR of their st columns.
    ///   TRANS-MT composes the combined relation through a frontier seeded
    ///   with the direct st predecessors and the current mt column: each
    ///   popped `k` contributes `(st_col(k) | mt_col(k)) & ¬mask(thread(j))`
    ///   and every newly derived mt bit re-enters the frontier.
    fn recompute_col(&mut self, j: NodeId) -> Result<(), BudgetReason> {
        self.poll.check(self.work_base + self.word_ops)?;
        let empty = || Col::Live {
            words: Vec::new(),
            lo: 0,
            hi: 0,
        };
        // ST phase (the whole computation in plain mode). Each predecessor
        // OR touches only the predecessor column's nonzero span, and
        // `word_ops` counts the words actually visited — the same currency
        // as the batch engine's bounded row ORs.
        let mut dst = match std::mem::replace(&mut self.st.cols[j], empty()) {
            Col::Live { words, .. } => words,
            Col::Retired(_) => unreachable!("dirty columns are never retired"),
        };
        for &p in self.st_edges.preds(j) {
            self.word_ops += self.st.cols[p].or_into_counted(&mut dst);
        }
        self.st.cols[j] = Col::live_from(dst);
        if self.plain {
            return Ok(());
        }
        // MT phase.
        let t = self.node_thread(j).index();
        let mut dst = match std::mem::replace(&mut self.mt.cols[j], empty()) {
            Col::Live { words, .. } => words,
            Col::Retired(_) => unreachable!("dirty columns are never retired"),
        };
        let mut frontier = std::mem::take(&mut self.frontier);
        frontier.clear();
        // Direct mt predecessors need no explicit seeding: `add_edge` set
        // their bits in this column and recompute only ever ORs, so the
        // dst scan below covers them — seeding them again would pop (and
        // charge) every one twice.
        frontier.extend_from_slice(self.st_edges.preds(j));
        for (w, &word) in dst.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                frontier.push(w * 64 + word.trailing_zeros() as usize);
                word &= word - 1;
            }
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        while let Some(k) = frontier.pop() {
            let kw = k.div_ceil(64);
            if kw == 0 {
                continue;
            }
            // Contribution of k is `(st_col(k) | mt_col(k)) & ¬mask`; both
            // columns are zero outside their bounds, so the scratch fill
            // and the merge scan are restricted to the union span.
            let (slo, shi) = self.st.cols[k].bounds(kw);
            let (mlo, mhi) = self.mt.cols[k].bounds(kw);
            let (ulo, uhi) = match (slo < shi, mlo < mhi) {
                (true, true) => (slo.min(mlo), shi.max(mhi)),
                (true, false) => (slo, shi),
                (false, true) => (mlo, mhi),
                (false, false) => continue,
            };
            scratch.clear();
            scratch.resize(uhi, 0);
            // The scratch fills read exactly the words the merge scan below
            // visits, so — like the batch engine's fused masked-union
            // kernel, which reads st|mt|mask|dst in one bounded loop — the
            // pop is charged its union span once.
            let _ = self.st.cols[k].or_into_counted(&mut scratch);
            let _ = self.mt.cols[k].or_into_counted(&mut scratch);
            self.word_ops += (uhi - ulo) as u64;
            let mask = &self.thread_masks[t];
            for (w, dw) in dst[ulo..uhi].iter_mut().enumerate() {
                let w = w + ulo;
                let m = mask.get(w).copied().unwrap_or(0);
                let val = scratch[w] & !m;
                let mut added = val & !*dw;
                if added != 0 {
                    *dw |= val;
                    while added != 0 {
                        frontier.push(w * 64 + added.trailing_zeros() as usize);
                        added &= added - 1;
                    }
                }
            }
        }
        self.scratch = scratch;
        self.frontier = frontier;
        self.mt.cols[j] = Col::live_from(dst);
        Ok(())
    }

    /// One boundary: run the fixpoint (saturation alternating with
    /// generator firing), drop the boundary's candidates, emit races for
    /// newly-closed access blocks, then retire old columns.
    fn boundary(&mut self) -> Result<Vec<(Race, RaceCategory)>, BudgetExhausted> {
        if self.degenerate {
            self.pending.clear();
            self.cand_done.clear();
            self.cand_seen.clear();
            self.watch.clear();
            self.dirty_targets.clear();
            self.newly_closed.clear();
            return Ok(Vec::new());
        }
        if let Err(reason) = self.fixpoint() {
            return Err(self.exhausted(reason));
        }
        // A generator fire can trip the backward-edge shield mid-fixpoint.
        if self.degenerate {
            return self.boundary();
        }
        let races = self.collect_emissions();
        let bits = self.st.footprint_bits() + self.mt.footprint_bits();
        self.peak_bits = self.peak_bits.max(bits);
        if self.summarize {
            self.retire_old();
        }
        let bits_now = self.st.footprint_bits() + self.mt.footprint_bits();
        if let Err(reason) = self.poll.check_bits(bits_now) {
            return Err(self.exhausted(reason));
        }
        Ok(races)
    }

    fn fixpoint(&mut self) -> Result<(), BudgetReason> {
        loop {
            let recomputed = self.flush()?;
            let mut examine: Vec<usize> = Vec::new();
            for c in 0..self.pending.len() {
                if !self.cand_seen[c] && !self.cand_done[c] {
                    examine.push(c);
                }
            }
            for &r in &recomputed {
                if let Some(list) = self.watch.get(&r) {
                    for &c in list {
                        if !self.cand_done[c] {
                            examine.push(c);
                        }
                    }
                }
            }
            examine.sort_unstable();
            examine.dedup();
            if examine.is_empty() {
                break;
            }
            let mut fired = false;
            for c in examine {
                self.cand_seen[c] = true;
                fired |= self.examine(c);
                if self.degenerate {
                    return Ok(());
                }
            }
            if !fired {
                break;
            }
        }
        // Unfired candidates can never fire (their guards read frozen
        // columns); drop them with the boundary.
        self.pending.clear();
        self.cand_done.clear();
        self.cand_seen.clear();
        self.watch.clear();
        Ok(())
    }

    /// Emits races for every access block closed this boundary, against all
    /// previously closed blocks — exactly once per unordered pair: a block
    /// is marked closed before its scan, so a pair closing in one boundary
    /// is found by whichever of the two is processed second.
    fn collect_emissions(&mut self) -> Vec<(Race, RaceCategory)> {
        let queue = std::mem::take(&mut self.newly_closed);
        let mut out = Vec::new();
        for b in queue {
            if self.closed[b] {
                continue;
            }
            self.closed[b] = true;
            let Some(locs) = self.node_locs.get(&b) else {
                continue;
            };
            for &loc in locs.clone().iter() {
                let blocks = &self.per_loc[&loc];
                let my = blocks[self.slot[&(loc, b)]].1;
                let mut found: Vec<Race> = Vec::new();
                for &(other, acc) in blocks {
                    if other == b || !self.closed[other] {
                        continue;
                    }
                    let (lo, hi) = (b.min(other), b.max(other));
                    // Reverse ordering is impossible: edges point forward.
                    if self.ordered_nodes(lo, hi) {
                        continue;
                    }
                    let Some(w) = pick_witness(&my, &acc) else {
                        continue;
                    };
                    let (first, second) = (w.0.min(w.1), w.0.max(w.1));
                    let kind = match (
                        self.ops[first].kind.is_write(),
                        self.ops[second].kind.is_write(),
                    ) {
                        (true, true) => crate::race::RaceKind::WriteWrite,
                        (true, false) => crate::race::RaceKind::WriteRead,
                        (false, true) => crate::race::RaceKind::ReadWrite,
                        (false, false) => unreachable!("a race witness has at least one write"),
                    };
                    found.push(Race {
                        first,
                        second,
                        loc,
                        kind,
                    });
                }
                for race in found {
                    let category = classify_with(
                        &self.ops,
                        self.indexer.index(),
                        |i, j| self.ordered_ops(i, j),
                        &race,
                    );
                    out.push((race, category));
                }
            }
        }
        out
    }

    /// Retires every column outside the live window into a run-length
    /// digest. Only frozen columns are eligible; the boundary fixpoint has
    /// already run, so everything but the newest `window` nodes qualifies.
    fn retire_old(&mut self) {
        let n = self.node_count();
        if n <= self.window {
            return;
        }
        let limit = n - self.window;
        while self.retire_cursor < limit {
            let j = self.retire_cursor;
            self.st.retire(j);
            if !self.plain {
                self.mt.retire(j);
            }
            self.retired_rows += 1;
            self.retire_cursor += 1;
        }
    }

    fn exhausted(&self, reason: BudgetReason) -> BudgetExhausted {
        BudgetExhausted {
            reason,
            partial: EngineStats {
                word_ops: self.word_ops,
                fifo_fired: self.fifo_fired as usize,
                nopre_fired: self.nopre_fired as usize,
                ..EngineStats::default()
            },
            ops_processed: self.work_base + self.word_ops,
        }
    }

    /// Queues every still-open access block for emission (end of stream).
    fn force_close(&mut self) {
        let threads: Vec<ThreadId> = self.prev_node.keys().copied().collect();
        for t in threads {
            if let Some(b) = self.builder.open_block_of(t) {
                self.newly_closed.push(b);
            }
        }
    }

    /// The authoritative final race set over the retained ops — the same
    /// generic scan the batch detector runs, over the frozen columns.
    fn final_races(&self) -> Vec<(Race, RaceCategory)> {
        let races = find_races_with(
            &self.ops,
            |i| self.builder.node_of(i),
            |a, b| self.ordered_nodes(a, b),
        );
        races
            .into_iter()
            .map(|r| {
                let category = classify_with(
                    &self.ops,
                    self.indexer.index(),
                    |i, j| self.ordered_ops(i, j),
                    &r,
                );
                (r, category)
            })
            .collect()
    }

    /// Reconstructs whole relation matrices from the columns (unsummarized
    /// sessions only — callers check).
    fn matrices(&self) -> (BitMatrix, Option<BitMatrix>) {
        let n = self.node_count();
        let mut st = BitMatrix::new(n);
        for (j, col) in self.st.cols.iter().enumerate() {
            col.for_each_set(|i| {
                st.set(i, j);
            });
        }
        if self.plain {
            return (st, None);
        }
        let mut mt = BitMatrix::new(n);
        for (j, col) in self.mt.cols.iter().enumerate() {
            col.for_each_set(|i| {
                mt.set(i, j);
            });
        }
        (st, Some(mt))
    }
}

// ---------------------------------------------------------------------------
// StreamingAnalysis: the public session
// ---------------------------------------------------------------------------

/// An online race-detection session: push trace operations as they arrive,
/// receive [`StreamEvent`]s as soon as races become derivable, and call
/// [`StreamingAnalysis::finish`] for the authoritative result.
///
/// The session wraps the incremental column engine with the two concerns
/// that need the *unfiltered* stream: cancellation (a late `cancel` erases
/// earlier posts, which only a replay can undo) and the degenerate fallback
/// (structurally invalid streams are re-analyzed by the batch pipeline at
/// `finish`, which tolerates them).
#[derive(Debug)]
pub struct StreamingAnalysis {
    config: HbConfig,
    options: StreamOptions,
    engine: StreamEngine,
    /// Every op ever pushed, in arrival order. Needed for cancellation
    /// replays and the degenerate batch fallback.
    originals: Vec<Op>,
    /// Maps the engine's retained-op indices to original stream positions.
    retained_orig: Vec<usize>,
    cancelled: HashSet<TaskId>,
    /// Standing emissions keyed by `(first, second, loc)` in original
    /// stream positions, so the key survives cancellation replays.
    standing: BTreeMap<(usize, usize, MemLoc), (Race, RaceCategory)>,
    chunks: u64,
    races_emitted: u64,
    retractions: u64,
    late_emissions: u64,
    rebuilds: u64,
    /// Work counters absorbed from engines replaced by rebuilds.
    base_word_ops: u64,
    base_retired: u64,
    base_peak: u64,
    exhausted: Option<BudgetExhausted>,
}

impl StreamingAnalysis {
    /// Opens a session.
    pub fn new(config: HbConfig, options: StreamOptions) -> Self {
        let engine = StreamEngine::new(config, &options, 0);
        StreamingAnalysis {
            config,
            options,
            engine,
            originals: Vec::new(),
            retained_orig: Vec::new(),
            cancelled: HashSet::new(),
            standing: BTreeMap::new(),
            chunks: 0,
            races_emitted: 0,
            retractions: 0,
            late_emissions: 0,
            rebuilds: 0,
            base_word_ops: 0,
            base_retired: 0,
            base_peak: 0,
            exhausted: None,
        }
    }

    /// Pushes a single operation (a one-op chunk).
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when a session budget trips; the session
    /// is poisoned afterwards and every later call fails the same way.
    pub fn push_op(&mut self, op: Op) -> Result<Vec<StreamEvent>, BudgetExhausted> {
        self.push_chunk(&[op])
    }

    /// Pushes a chunk of operations and runs one incremental boundary:
    /// edges, saturation, FIFO/NOPRE generation, and emission for every
    /// access block the chunk closed.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when a session budget trips; the session
    /// is poisoned afterwards and every later call fails the same way.
    pub fn push_chunk(&mut self, ops: &[Op]) -> Result<Vec<StreamEvent>, BudgetExhausted> {
        if let Some(e) = self.exhausted {
            return Err(e);
        }
        self.chunks += 1;
        let mut events = Vec::new();
        for &op in ops {
            let at = self.originals.len();
            self.originals.push(op);
            if let OpKind::Cancel { task } = op.kind {
                if self.cancelled.insert(task) && self.retained_mentions(task) {
                    if let Err(e) = self.rebuild(&mut events) {
                        self.exhausted = Some(e);
                        return Err(e);
                    }
                }
                continue;
            }
            if self.filtered(op) {
                continue;
            }
            self.retained_orig.push(at);
            self.engine.ingest(op);
        }
        match self.engine.boundary() {
            Ok(races) => self.absorb(races, &mut events),
            Err(e) => {
                self.exhausted = Some(e);
                return Err(e);
            }
        }
        Ok(events)
    }

    /// Whether `op` is erased by the cancellation filter (the streaming
    /// equivalent of [`Trace::without_cancelled`]'s predicate, applied
    /// forward once the task is known cancelled).
    fn filtered(&self, op: Op) -> bool {
        match op.kind {
            OpKind::Post { task, .. } | OpKind::Enable { task } | OpKind::Cancel { task } => {
                self.cancelled.contains(&task)
            }
            _ => false,
        }
    }

    /// Whether any already-retained op would be erased by cancelling
    /// `task`. When none would, the replay is skipped: the filter only
    /// affects future ops, which the forward path handles.
    fn retained_mentions(&self, task: TaskId) -> bool {
        self.engine.ops.iter().any(|op| {
            matches!(op.kind,
                OpKind::Post { task: t, .. } | OpKind::Enable { task: t } if t == task)
        })
    }

    /// Replays the filtered original stream into a fresh engine (one
    /// boundary — the fixpoint is order-insensitive) and diffs the standing
    /// emission set, producing retraction/emission events.
    fn rebuild(&mut self, events: &mut Vec<StreamEvent>) -> Result<(), BudgetExhausted> {
        self.rebuilds += 1;
        self.base_word_ops += self.engine.word_ops;
        self.base_retired += self.engine.retired_rows;
        self.base_peak = self.base_peak.max(self.engine.peak_bits);
        let mut fresh = StreamEngine::new(self.config, &self.options, self.base_word_ops);
        let mut retained = Vec::new();
        for (idx, &op) in self.originals.iter().enumerate() {
            if self.filtered(op) || matches!(op.kind, OpKind::Cancel { .. }) {
                continue;
            }
            retained.push(idx);
            fresh.ingest(op);
        }
        let races = fresh.boundary()?;
        let at = self.originals.len();
        let mut new_standing = BTreeMap::new();
        for (race, category) in races {
            let orig = to_orig(&retained, race);
            new_standing.insert((orig.first, orig.second, orig.loc), (orig, category));
        }
        for (key, &(race, category)) in &self.standing {
            if new_standing.get(key) != Some(&(race, category)) {
                events.push(StreamEvent::Retracted(RaceEvent { race, category, at }));
                self.retractions += 1;
            }
        }
        for (key, &(race, category)) in &new_standing {
            if self.standing.get(key) != Some(&(race, category)) {
                events.push(StreamEvent::Emitted(RaceEvent { race, category, at }));
                self.races_emitted += 1;
            }
        }
        self.standing = new_standing;
        self.retained_orig = retained;
        self.engine = fresh;
        Ok(())
    }

    /// Records fresh boundary emissions into the standing set and the
    /// outgoing event list.
    fn absorb(&mut self, races: Vec<(Race, RaceCategory)>, events: &mut Vec<StreamEvent>) {
        let at = self.originals.len();
        for (race, category) in races {
            let orig = to_orig(&self.retained_orig, race);
            self.standing
                .insert((orig.first, orig.second, orig.loc), (orig, category));
            events.push(StreamEvent::Emitted(RaceEvent {
                race: orig,
                category,
                at,
            }));
            self.races_emitted += 1;
        }
    }

    /// Number of operations pushed so far (including filtered ones).
    pub fn ops_pushed(&self) -> usize {
        self.originals.len()
    }

    /// Session counters so far. `finish` returns the final reading inside
    /// the [`StreamOutcome`].
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            ops: self.originals.len() as u64,
            chunks: self.chunks,
            races_emitted: self.races_emitted,
            retractions: self.retractions,
            late_emissions: self.late_emissions,
            rebuilds: self.rebuilds,
            retired_rows: self.base_retired + self.engine.retired_rows,
            word_ops: self.base_word_ops + self.engine.word_ops,
            peak_matrix_bits: self.base_peak.max(self.engine.peak_bits),
            live_matrix_bits: self.engine.st.footprint_bits() + self.engine.mt.footprint_bits(),
            degenerate: self.engine.degenerate,
        }
    }

    /// Closes the stream: flushes still-open access blocks, emits any last
    /// races, reconciles the standing emissions against the authoritative
    /// final scan, and returns the complete result.
    ///
    /// `names` is the symbol table for the ops that were pushed (the
    /// streaming reader accumulates one; hand-built sessions can pass the
    /// builder's). It is only consulted on the degenerate fallback path,
    /// which rebuilds a whole [`Trace`].
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when a session budget trips (or had
    /// already tripped).
    pub fn finish(mut self, names: &Names) -> Result<StreamOutcome, BudgetExhausted> {
        if let Some(e) = self.exhausted {
            return Err(e);
        }
        if self.engine.degenerate {
            return self.finish_degenerate(names);
        }
        let mut events = Vec::new();
        self.engine.force_close();
        let races = match self.engine.boundary() {
            Ok(r) => r,
            Err(e) => {
                self.exhausted = Some(e);
                return Err(e);
            }
        };
        // The engine can only discover degeneracy during ingest, which
        // force_close/boundary never perform.
        debug_assert!(!self.engine.degenerate);
        self.absorb(races, &mut events);
        let finals = self.engine.final_races();
        self.reconcile(&finals, &mut events);
        let races: Vec<ClassifiedRace> = finals
            .iter()
            .map(|&(race, category)| ClassifiedRace { race, category })
            .collect();
        let mut counts = CategoryCounts::default();
        for r in &races {
            counts.add(r.category, 1);
        }
        let matrices = if self.options.summarize {
            None
        } else {
            Some(self.engine.matrices())
        };
        let mut stats = self.stats();
        stats.late_emissions = self.late_emissions;
        stats.retractions = self.retractions;
        stats.races_emitted = self.races_emitted;
        Ok(StreamOutcome {
            races,
            counts,
            matrices,
            orig_of: self.retained_orig,
            stats,
            events,
        })
    }

    /// Diffs the standing emission set against the authoritative final
    /// race list, pushing retraction events for emissions the final scan
    /// does not confirm and late-emission events for races it adds. On a
    /// cancel-free stream both deltas are provably empty (columns freeze,
    /// so early emissions are final); the reconcile is the runtime check
    /// of that theorem.
    fn reconcile(&mut self, finals: &[(Race, RaceCategory)], events: &mut Vec<StreamEvent>) {
        let at = self.originals.len();
        let mut final_standing = BTreeMap::new();
        for &(race, category) in finals {
            let orig = to_orig(&self.retained_orig, race);
            final_standing.insert((orig.first, orig.second, orig.loc), (orig, category));
        }
        for (key, &(race, category)) in &self.standing {
            if final_standing.get(key) != Some(&(race, category)) {
                events.push(StreamEvent::Retracted(RaceEvent { race, category, at }));
                self.retractions += 1;
            }
        }
        for (key, &(race, category)) in &final_standing {
            if self.standing.get(key) != Some(&(race, category)) {
                events.push(StreamEvent::Emitted(RaceEvent { race, category, at }));
                self.late_emissions += 1;
            }
        }
        self.standing = final_standing;
    }

    /// Batch fallback for structurally degenerate streams: rebuild a
    /// [`Trace`] from the buffered originals and run the tolerant batch
    /// pipeline, then reconcile events as usual.
    fn finish_degenerate(mut self, names: &Names) -> Result<StreamOutcome, BudgetExhausted> {
        let trace = Trace::from_parts(names.clone(), self.originals.clone()).without_cancelled();
        // Re-derive the original position of each filtered op with the
        // same predicate `without_cancelled` used.
        let orig_of: Vec<usize> = self
            .originals
            .iter()
            .enumerate()
            .filter(|(_, op)| match op.kind {
                OpKind::Post { task, .. }
                | OpKind::Cancel { task }
                | OpKind::Enable { task } => !self.cancelled.contains(&task),
                _ => true,
            })
            .map(|(i, _)| i)
            .collect();
        debug_assert_eq!(orig_of.len(), trace.len());
        let index = trace.index();
        let graph = HbGraph::build(&trace, &index, self.config.merge_accesses);
        let n = graph.node_count() as u64;
        let hb = match &self.options.budget {
            Some(b) => {
                match HappensBefore::compute_on_graph_budgeted(
                    &trace, &index, graph, self.config, b,
                ) {
                    Ok(hb) => hb,
                    Err(e) => {
                        self.exhausted = Some(e);
                        return Err(e);
                    }
                }
            }
            None => HappensBefore::compute_on_graph(&trace, &index, graph, self.config),
        };
        let finals: Vec<(Race, RaceCategory)> = crate::race::detect(&trace, &hb)
            .into_iter()
            .map(|r| {
                let c = crate::classify::classify(&trace, &index, &hb, &r);
                (r, c)
            })
            .collect();
        self.retained_orig = orig_of.clone();
        let mut events = Vec::new();
        self.reconcile(&finals, &mut events);
        let races: Vec<ClassifiedRace> = finals
            .iter()
            .map(|&(race, category)| ClassifiedRace { race, category })
            .collect();
        let mut counts = CategoryCounts::default();
        for r in &races {
            counts.add(r.category, 1);
        }
        let matrices = if self.options.summarize {
            None
        } else {
            let (st, mt) = hb.relation_matrices();
            Some((st.clone(), mt.cloned()))
        };
        let mut stats = self.stats();
        stats.degenerate = true;
        let dense = n * n * if matrices.as_ref().is_some_and(|(_, mt)| mt.is_some()) { 2 } else { 1 };
        stats.peak_matrix_bits = stats.peak_matrix_bits.max(dense);
        stats.late_emissions = self.late_emissions;
        stats.retractions = self.retractions;
        Ok(StreamOutcome {
            races,
            counts,
            matrices,
            orig_of,
            stats,
            events,
        })
    }
}

/// Translates a race over retained-op indices into original stream
/// positions via the retained→original map.
fn to_orig(retained: &[usize], race: Race) -> Race {
    Race {
        first: retained[race.first],
        second: retained[race.second],
        loc: race.loc,
        kind: race.kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HappensBefore;
    use crate::race::detect;
    use crate::rules::HbMode;
    use droidracer_trace::{ThreadKind, Trace, TraceBuilder};

    /// Streams `trace` in `chunk`-sized pieces and returns the outcome.
    fn stream(trace: &Trace, config: HbConfig, options: StreamOptions, chunk: usize) -> StreamOutcome {
        let mut s = StreamingAnalysis::new(config, options);
        for piece in trace.ops().chunks(chunk.max(1)) {
            s.push_chunk(piece).expect("unbudgeted stream");
        }
        s.finish(trace.names()).expect("unbudgeted stream")
    }

    /// Batch result over the cancellation-filtered trace.
    fn batch(trace: &Trace, config: HbConfig) -> (Vec<ClassifiedRace>, HappensBefore, Trace) {
        let filtered = trace.without_cancelled();
        let hb = HappensBefore::compute(&filtered, config);
        let index = filtered.index();
        let races: Vec<ClassifiedRace> = detect(&filtered, &hb)
            .into_iter()
            .map(|race| ClassifiedRace {
                category: crate::classify::classify(&filtered, &index, &hb, &race),
                race,
            })
            .collect();
        (races, hb, filtered)
    }

    /// Asserts streamed ≡ batch at several chunk sizes, including matrices
    /// when unsummarized.
    fn assert_equiv(trace: &Trace, config: HbConfig) {
        let (expected, hb, _) = batch(trace, config);
        let (bst, bmt) = hb.relation_matrices();
        let whole = trace.len().max(1);
        for chunk in [1usize, 3, 64, whole] {
            let out = stream(trace, config, StreamOptions::default(), chunk);
            assert_eq!(out.races, expected, "races diverge at chunk={chunk}");
            let (st, mt) = out.matrices.as_ref().expect("unsummarized matrices");
            assert_eq!(st, bst, "st matrix diverges at chunk={chunk}");
            assert_eq!(mt.as_ref(), bmt, "mt matrix diverges at chunk={chunk}");
            assert_eq!(out.stats.chunks, trace.len().div_ceil(chunk) as u64);
            // Summarized pass: same races, no matrices.
            let opts = StreamOptions { summarize: true, window: 4, ..Default::default() };
            let sum = stream(trace, config, opts, chunk);
            assert_eq!(sum.races, expected, "summarized races diverge at chunk={chunk}");
            assert!(sum.matrices.is_none());
        }
    }

    /// A trace exercising posts, FIFO/NOPRE generators, locks, forks and
    /// both racing and non-racing accesses.
    fn looper_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg1 = b.thread("bg1", ThreadKind::App, true);
        let bg2 = b.thread("bg2", ThreadKind::App, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        let t3 = b.task("C");
        let lk = b.lock("m");
        let loc = b.loc("o", "C.f");
        let loc2 = b.loc("p", "C.g");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.thread_init(bg1);
        b.thread_init(bg2);
        b.post(bg1, t1, main);
        b.post(bg2, t2, main);
        b.acquire(bg1, lk);
        b.write(bg1, loc2);
        b.release(bg1, lk);
        b.begin(main, t1);
        b.write(main, loc);
        b.post(main, t3, main);
        b.end(main, t1);
        b.begin(main, t2);
        b.write(main, loc);
        b.end(main, t2);
        b.begin(main, t3);
        b.read(main, loc);
        b.end(main, t3);
        b.acquire(bg2, lk);
        b.read(bg2, loc2);
        b.release(bg2, lk);
        b.finish_validated().expect("feasible trace")
    }

    #[test]
    fn streamed_equals_batch_all_modes() {
        let trace = looper_trace();
        for mode in [
            HbMode::Full,
            HbMode::MultithreadedOnly,
            HbMode::AsyncOnly,
            HbMode::NaiveCombined,
            HbMode::EventsAsThreads,
        ] {
            assert_equiv(&trace, HbConfig::for_mode(mode));
        }
    }

    #[test]
    fn streamed_equals_batch_without_merging() {
        let trace = looper_trace();
        assert_equiv(&trace, HbConfig::new().without_merging());
    }

    #[test]
    fn races_emit_as_soon_as_derivable() {
        // The race between t1's and t2's writes is derivable the moment
        // t2's write block closes (at End(t2)) — before the stream ends.
        let trace = looper_trace();
        let mut s = StreamingAnalysis::new(HbConfig::new(), StreamOptions::default());
        let mut first_emit_at = None;
        for (i, op) in trace.ops().iter().enumerate() {
            let events = s.push_op(*op).unwrap();
            if first_emit_at.is_none()
                && events.iter().any(|e| matches!(e, StreamEvent::Emitted(_)))
            {
                first_emit_at = Some(i);
            }
        }
        let at = first_emit_at.expect("a race should emit mid-stream");
        assert!(at < trace.len() - 1, "emission should precede stream end");
        let out = s.finish(trace.names()).unwrap();
        assert_eq!(out.stats.late_emissions, 0, "cancel-free: no late emissions");
        assert_eq!(out.stats.retractions, 0, "cancel-free: no retractions");
        assert!(!out.races.is_empty());
    }

    #[test]
    fn summarization_retires_rows_and_preserves_races() {
        let trace = looper_trace();
        let opts = StreamOptions { summarize: true, window: 2, ..Default::default() };
        let out = stream(&trace, HbConfig::new(), opts, 1);
        let (expected, _, _) = batch(&trace, HbConfig::new());
        assert_eq!(out.races, expected);
        assert!(out.stats.retired_rows > 0, "window=2 must retire columns");
        assert!(out.stats.peak_matrix_bits > 0);
        assert!(out.matrices.is_none());
    }

    #[test]
    fn cancellation_triggers_replay_and_matches_batch() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.thread_init(bg);
        b.post(bg, t1, main);
        b.post(bg, t2, main);
        b.begin(main, t1);
        b.write(main, loc);
        b.end(main, t1);
        b.write(bg, loc);
        b.cancel(bg, t2);
        let trace = b.finish();
        let config = HbConfig::new();
        let (expected, hb, _) = batch(&trace, config);
        for chunk in [1usize, 2, trace.len()] {
            let out = stream(&trace, config, StreamOptions::default(), chunk);
            assert_eq!(out.races, expected, "chunk={chunk}");
            let (st, mt) = out.matrices.as_ref().unwrap();
            let (bst, bmt) = hb.relation_matrices();
            assert_eq!(st, bst);
            assert_eq!(mt.as_ref(), bmt);
            assert!(out.stats.rebuilds >= 1, "cancel of posted task must replay");
        }
    }

    #[test]
    fn cancel_of_unposted_task_skips_replay() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let t1 = b.task("A");
        b.thread_init(main);
        b.cancel(main, t1);
        let trace = b.finish();
        let out = stream(&trace, HbConfig::new(), StreamOptions::default(), 1);
        assert_eq!(out.stats.rebuilds, 0);
        assert!(out.races.is_empty());
    }

    #[test]
    fn degenerate_stream_falls_back_to_batch() {
        // End without a Begin is structurally invalid for the incremental
        // engine; the batch pipeline tolerates it.
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let t1 = b.task("A");
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.end(main, t1);
        b.fork(main, bg);
        b.thread_init(bg);
        b.write(bg, loc);
        b.read(main, loc);
        let trace = b.finish();
        let config = HbConfig::new();
        let (expected, hb, _) = batch(&trace, config);
        let out = stream(&trace, config, StreamOptions::default(), 2);
        assert!(out.stats.degenerate);
        assert_eq!(out.races, expected);
        let (st, mt) = out.matrices.as_ref().unwrap();
        let (bst, bmt) = hb.relation_matrices();
        assert_eq!(st, bst);
        assert_eq!(mt.as_ref(), bmt);
    }

    #[test]
    fn matrix_budget_poisons_the_session() {
        let trace = looper_trace();
        let budget = Budget {
            max_matrix_bits: Some(1),
            ..Budget::default()
        };
        let opts = StreamOptions { budget: Some(budget), ..Default::default() };
        let mut s = StreamingAnalysis::new(HbConfig::new(), opts);
        let mut tripped = None;
        for op in trace.ops() {
            if let Err(e) = s.push_op(*op) {
                tripped = Some(e);
                break;
            }
        }
        let e = tripped.expect("1-bit budget must trip");
        assert_eq!(e.reason, BudgetReason::MatrixBits);
        // Poisoned: later calls fail identically.
        assert_eq!(s.push_op(trace.ops()[0]).unwrap_err().reason, e.reason);
        assert_eq!(s.finish(trace.names()).unwrap_err().reason, e.reason);
    }

    #[test]
    fn stats_count_ops_and_chunks() {
        let trace = looper_trace();
        let mut s = StreamingAnalysis::new(HbConfig::new(), StreamOptions::default());
        for piece in trace.ops().chunks(5) {
            s.push_chunk(piece).unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.ops, trace.len() as u64);
        assert_eq!(stats.chunks, trace.len().div_ceil(5) as u64);
        let out = s.finish(trace.names()).unwrap();
        assert!(out.stats.word_ops > 0);
        assert!(out.stats.races_emitted >= out.races.len() as u64);
    }
}
