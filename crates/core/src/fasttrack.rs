//! FastTrack (Flanagan & Freund, PLDI 2009) — the epoch-optimized
//! vector-clock race detector the paper cites as the efficient state of the
//! art for multi-threaded programs (reference 7 of its bibliography).
//!
//! Where [`crate::vc`] keeps full per-thread clock maps per location
//! (DJIT⁺), FastTrack represents the last write — and, in the common case,
//! the last read — as a single *epoch* `c@t`, falling back to a read vector
//! only for concurrent reads. Both detectors see only threads, fork/join
//! and locks; asynchronous dispatch is invisible to them, so both miss
//! every single-threaded race — the §7 claim the ablation demonstrates.
//!
//! The implementation follows the published state machine: same-epoch
//! fast paths, write-epoch checks, read-epoch/read-shared adaptivity.

use std::collections::HashMap;

use droidracer_trace::{LockId, MemLoc, OpKind, ThreadId, Trace};

use crate::robust::{Budget, BudgetExhausted, BudgetReason};
use crate::vc::{VcRace, VectorClock};

/// An epoch `c@t`: clock value `c` of thread `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// The thread component.
    pub thread: ThreadId,
    /// Its clock at the access.
    pub clock: u32,
}

impl Epoch {
    /// The bottom epoch `0@t0` used for never-accessed state.
    pub fn bottom() -> Self {
        Epoch {
            thread: ThreadId(0),
            clock: 0,
        }
    }

    /// `self ⪯ clock`: the epoch happens-before (or equals) the clock.
    pub fn le(&self, clock: &VectorClock) -> bool {
        self.clock <= clock.get(self.thread)
    }
}

/// Last-access state per memory location.
#[derive(Debug, Clone)]
enum ReadState {
    /// A single last read epoch (the common case).
    Epoch(Epoch, usize),
    /// Concurrent reads: full vector plus op index per thread.
    Shared(HashMap<ThreadId, (u32, usize)>),
}

#[derive(Debug, Clone)]
struct LocState {
    write: Epoch,
    write_op: usize,
    read: ReadState,
}

impl LocState {
    fn new() -> Self {
        LocState {
            write: Epoch::bottom(),
            write_op: usize::MAX,
            read: ReadState::Epoch(Epoch::bottom(), usize::MAX),
        }
    }
}

/// Runs the FastTrack analysis over `trace`, reporting at most one race per
/// location (the first one flagged), exactly like [`crate::vc`].
pub fn detect(trace: &Trace) -> Vec<VcRace> {
    // invariant: an unlimited budget never exhausts.
    detect_budgeted(trace, &Budget::unlimited()).expect("unlimited budget cannot exhaust")
}

/// Like [`detect`] but under a resource [`Budget`]: the pass polls the
/// deadline every 1024 trace ops and the op cap on every op.
///
/// # Errors
///
/// Returns [`BudgetExhausted`] with `ops_processed` = trace ops consumed
/// when a limit trips.
pub fn detect_budgeted(trace: &Trace, budget: &Budget) -> Result<Vec<VcRace>, BudgetExhausted> {
    let limited = budget.is_limited();
    let n = trace.names().thread_count();
    let mut clocks: HashMap<ThreadId, VectorClock> = HashMap::new();
    let mut lock_clocks: HashMap<LockId, VectorClock> = HashMap::new();
    let mut locs: HashMap<MemLoc, LocState> = HashMap::new();
    let mut flagged: HashMap<MemLoc, VcRace> = HashMap::new();

    fn clock_of(
        clocks: &mut HashMap<ThreadId, VectorClock>,
        n: usize,
        t: ThreadId,
    ) -> &mut VectorClock {
        clocks.entry(t).or_insert_with(|| {
            let mut c = VectorClock::new(n);
            c.tick(t);
            c
        })
    }

    for (i, op) in trace.iter() {
        if limited {
            if let Some(err) = poll_trace_budget(budget, i) {
                return Err(err);
            }
        }
        let t = op.thread;
        match op.kind {
            OpKind::Fork { child } => {
                let parent = clock_of(&mut clocks, n, t).clone();
                clock_of(&mut clocks, n, child).join(&parent);
                clock_of(&mut clocks, n, t).tick(t);
            }
            OpKind::Join { child } => {
                let child_clock = clock_of(&mut clocks, n, child).clone();
                clock_of(&mut clocks, n, t).join(&child_clock);
            }
            OpKind::Acquire { lock } => {
                if let Some(lc) = lock_clocks.get(&lock) {
                    let lc = lc.clone();
                    clock_of(&mut clocks, n, t).join(&lc);
                }
            }
            OpKind::Release { lock } => {
                let c = clock_of(&mut clocks, n, t).clone();
                lock_clocks
                    .entry(lock)
                    .or_insert_with(|| VectorClock::new(n))
                    .join(&c);
                clock_of(&mut clocks, n, t).tick(t);
            }
            OpKind::Read { loc } => {
                let c = clock_of(&mut clocks, n, t).clone();
                let epoch = Epoch {
                    thread: t,
                    clock: c.get(t),
                };
                let state = locs.entry(loc).or_insert_with(LocState::new);
                // [FT READ SAME EPOCH] fast path.
                if let ReadState::Epoch(e, _) = state.read {
                    if e == epoch {
                        continue;
                    }
                }
                // Write-read race check.
                if !state.write.le(&c) {
                    flagged.entry(loc).or_insert(VcRace {
                        first: state.write_op,
                        second: i,
                        loc,
                    });
                }
                match &mut state.read {
                    ReadState::Epoch(e, _) if e.le(&c) => {
                        // [FT READ EXCLUSIVE]: the previous read is ordered
                        // before us; stay in epoch representation.
                        state.read = ReadState::Epoch(epoch, i);
                    }
                    ReadState::Epoch(e, prev_i) => {
                        // [FT READ SHARE]: concurrent reads; inflate.
                        let mut shared = HashMap::new();
                        shared.insert(e.thread, (e.clock, *prev_i));
                        shared.insert(t, (epoch.clock, i));
                        state.read = ReadState::Shared(shared);
                    }
                    ReadState::Shared(shared) => {
                        // [FT READ SHARED].
                        shared.insert(t, (epoch.clock, i));
                    }
                }
            }
            OpKind::Write { loc } => {
                let c = clock_of(&mut clocks, n, t).clone();
                let epoch = Epoch {
                    thread: t,
                    clock: c.get(t),
                };
                let state = locs.entry(loc).or_insert_with(LocState::new);
                // [FT WRITE SAME EPOCH] fast path.
                if state.write == epoch {
                    continue;
                }
                // Write-write race check.
                if !state.write.le(&c) {
                    flagged.entry(loc).or_insert(VcRace {
                        first: state.write_op,
                        second: i,
                        loc,
                    });
                }
                // Read-write race checks.
                match &state.read {
                    ReadState::Epoch(e, prev_i) => {
                        if e.clock > 0 && !e.le(&c) {
                            flagged.entry(loc).or_insert(VcRace {
                                first: *prev_i,
                                second: i,
                                loc,
                            });
                        }
                    }
                    ReadState::Shared(shared) => {
                        for (&u, &(rc, ri)) in shared {
                            if u != t && rc > c.get(u) {
                                flagged.entry(loc).or_insert(VcRace {
                                    first: ri,
                                    second: i,
                                    loc,
                                });
                            }
                        }
                    }
                }
                // [FT WRITE EXCLUSIVE/SHARED]: writes always collapse the
                // read state back to an epoch representation.
                state.write = epoch;
                state.write_op = i;
                state.read = ReadState::Epoch(Epoch::bottom(), usize::MAX);
            }
            _ => {}
        }
    }
    let mut races: Vec<VcRace> = flagged.into_values().collect();
    races.sort_by_key(|r| (r.loc, r.first, r.second));
    Ok(races)
}

/// Shared per-op budget poll for the trace-scanning detectors: the op cap
/// is exact, the deadline is sampled every 1024 ops.
pub(crate) fn poll_trace_budget(budget: &Budget, ops_done: usize) -> Option<BudgetExhausted> {
    let exhausted = |reason| BudgetExhausted {
        reason,
        partial: crate::EngineStats::default(),
        ops_processed: ops_done as u64,
    };
    if let Some(cap) = budget.max_ops {
        if ops_done as u64 >= cap {
            return Some(exhausted(BudgetReason::OpCap));
        }
    }
    if ops_done & 1023 == 0 && budget.deadline_passed() {
        return Some(exhausted(BudgetReason::Deadline));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vc::detect_multithreaded;
    use droidracer_trace::{ThreadKind, TraceBuilder};
    use std::collections::BTreeSet;

    fn locs(races: &[VcRace]) -> BTreeSet<MemLoc> {
        races.iter().map(|r| r.loc).collect()
    }

    #[test]
    fn epoch_comparison() {
        let mut c = VectorClock::new(2);
        c.set(ThreadId(0), 3);
        assert!(Epoch { thread: ThreadId(0), clock: 3 }.le(&c));
        assert!(Epoch { thread: ThreadId(0), clock: 2 }.le(&c));
        assert!(!Epoch { thread: ThreadId(0), clock: 4 }.le(&c));
        assert!(!Epoch { thread: ThreadId(1), clock: 1 }.le(&c));
    }

    #[test]
    fn flags_unsynchronized_write_read() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.write(bg, loc); // 3
        b.read(main, loc); // 4
        let races = detect(&b.finish());
        assert_eq!(races.len(), 1);
        assert_eq!((races[0].first, races[0].second), (3, 4));
    }

    #[test]
    fn read_share_inflation_catches_later_write() {
        // Two concurrent readers, then an unsynchronized writer: the write
        // races with at least one read in the shared representation.
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let r1 = b.thread("r1", ThreadKind::App, false);
        let r2 = b.thread("r2", ThreadKind::App, false);
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.write(main, loc); // initialize before forking: no race yet
        b.fork(main, r1);
        b.fork(main, r2);
        b.thread_init(r1);
        b.thread_init(r2);
        b.read(r1, loc);
        b.read(r2, loc);
        b.write(main, loc); // races with both reads
        let races = detect(&b.finish());
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn lock_and_join_synchronization_suppress_races() {
        let mut b = TraceBuilder::new();
        let a = b.thread("a", ThreadKind::App, true);
        let c = b.thread("c", ThreadKind::App, true);
        let l = b.lock("m");
        let loc = b.loc("o", "C.f");
        b.thread_init(a);
        b.thread_init(c);
        b.acquire(a, l);
        b.write(a, loc);
        b.release(a, l);
        b.acquire(c, l);
        b.write(c, loc);
        b.release(c, l);
        assert!(detect(&b.finish()).is_empty());
    }

    #[test]
    fn same_epoch_fast_path_is_neutral() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        for _ in 0..10 {
            b.write(main, loc);
            b.read(main, loc);
        }
        assert!(detect(&b.finish()).is_empty());
    }

    #[test]
    fn agrees_with_djit_on_random_shapes() {
        // A handful of hand-made mixed traces: FastTrack and the full-VC
        // detector flag the same locations.
        for variant in 0..4 {
            let mut b = TraceBuilder::new();
            let main = b.thread("main", ThreadKind::Main, true);
            let w1 = b.thread("w1", ThreadKind::App, false);
            let w2 = b.thread("w2", ThreadKind::App, false);
            let l = b.lock("m");
            let safe = b.loc("o", "C.safe");
            let racy = b.loc("o", "C.racy");
            b.thread_init(main);
            b.write(main, safe);
            b.write(main, racy);
            b.fork(main, w1);
            b.fork(main, w2);
            b.thread_init(w1);
            b.thread_init(w2);
            if variant % 2 == 0 {
                b.acquire(w1, l);
                b.write(w1, safe);
                b.release(w1, l);
            } else {
                b.read(w1, racy);
            }
            b.write(w2, racy);
            if variant >= 2 {
                b.acquire(w2, l);
                b.read(w2, safe);
                b.release(w2, l);
            }
            b.thread_exit(w1);
            b.join(main, w1);
            b.read(main, safe);
            let trace = b.finish();
            assert_eq!(
                locs(&detect(&trace)),
                locs(&detect_multithreaded(&trace)),
                "variant {variant}"
            );
        }
    }
}
