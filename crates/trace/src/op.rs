//! Operations of the core concurrency language (Table 1 of the paper).

use std::fmt;

use crate::ids::{EventId, LockId, MemLoc, TaskId, ThreadId};

/// How a `post` entered the target thread's task queue.
///
/// Plain posts follow Android's FIFO semantics. Delayed posts (§4.2 of the
/// paper) carry a timeout and run when it expires. Front posts override FIFO
/// by jumping to the head of the queue; the paper defers them to future work,
/// this reproduction implements them as an extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PostKind {
    /// Ordinary FIFO post.
    #[default]
    Plain,
    /// `postDelayed`-style post with a timeout in milliseconds of virtual
    /// time.
    Delayed(u64),
    /// `postAtFrontOfQueue`-style post (extension beyond the paper).
    Front,
}

impl PostKind {
    /// The timeout of a delayed post, if any.
    pub fn delay(self) -> Option<u64> {
        match self {
            PostKind::Delayed(d) => Some(d),
            _ => None,
        }
    }

    /// Whether this is a delayed post.
    pub fn is_delayed(self) -> bool {
        matches!(self, PostKind::Delayed(_))
    }
}

/// Whether a queue entry posted with kind `earlier` (sitting at a smaller
/// queue position) must execute before one posted with kind `later`, under
/// the §4.2-refined FIFO semantics:
///
/// * two non-delayed posts keep their FIFO order;
/// * a non-delayed post always runs before a later delayed one;
/// * a delayed post may be overtaken by a later non-delayed one;
/// * two delayed posts order by timeout (`δ_earlier ≤ δ_later`).
///
/// Front-of-queue posts (the extension beyond the paper) participate through
/// their queue *position* — this predicate only refines by delay.
pub fn queue_must_precede(earlier: PostKind, later: PostKind) -> bool {
    match (earlier.delay(), later.delay()) {
        (None, None) => true,
        (None, Some(_)) => true,
        (Some(_), None) => false,
        (Some(d1), Some(d2)) => d1 <= d2,
    }
}

/// An operation of the core language, minus the executing thread.
///
/// The executing thread is stored alongside in [`Op`]; the kinds here mirror
/// Table 1, plus `cancel` which the paper handles by erasing the
/// corresponding post from the trace (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Start executing the current thread.
    ThreadInit,
    /// Complete executing the current thread.
    ThreadExit,
    /// Create thread `child`.
    Fork {
        /// The newly created thread.
        child: ThreadId,
    },
    /// Consume the completed thread `child`.
    Join {
        /// The thread being joined.
        child: ThreadId,
    },
    /// Attach a task queue to the current thread.
    AttachQ,
    /// Begin executing procedures from the current thread's queue.
    LoopOnQ,
    /// Post task `task` asynchronously to thread `target`.
    Post {
        /// The posted task instance.
        task: TaskId,
        /// The thread whose queue receives the task.
        target: ThreadId,
        /// FIFO, delayed or front-of-queue.
        kind: PostKind,
        /// The environment event whose handler this post schedules, if any.
        ///
        /// Used by race classification (§4.3): the *co-enabled* category
        /// inspects the most recent posts for environmental events.
        event: Option<EventId>,
    },
    /// Start executing the posted task `task`.
    Begin {
        /// The task being dequeued and run.
        task: TaskId,
    },
    /// Finish executing the posted task `task`.
    End {
        /// The task that ran to completion.
        task: TaskId,
    },
    /// Remove a not-yet-begun `task` from its target queue (§4.2 handles
    /// cancellation by deleting the corresponding post from the trace).
    Cancel {
        /// The task whose pending post is revoked.
        task: TaskId,
    },
    /// Acquire lock `lock`.
    Acquire {
        /// The lock being acquired.
        lock: LockId,
    },
    /// Release lock `lock`.
    Release {
        /// The lock being released.
        lock: LockId,
    },
    /// Read memory location `loc`.
    Read {
        /// The location read.
        loc: MemLoc,
    },
    /// Write memory location `loc`.
    Write {
        /// The location written.
        loc: MemLoc,
    },
    /// Enable posting of task `task` (models the runtime environment; see
    /// §2.4 and §4.2 of the paper).
    Enable {
        /// The task instance whose posting becomes possible.
        task: TaskId,
    },
}

impl OpKind {
    /// The memory location accessed by this operation, if it is a read or
    /// write.
    pub fn accessed_loc(&self) -> Option<MemLoc> {
        match *self {
            OpKind::Read { loc } | OpKind::Write { loc } => Some(loc),
            _ => None,
        }
    }

    /// Whether this operation writes memory.
    pub fn is_write(&self) -> bool {
        matches!(self, OpKind::Write { .. })
    }

    /// Whether this is a memory access (read or write).
    pub fn is_access(&self) -> bool {
        matches!(self, OpKind::Read { .. } | OpKind::Write { .. })
    }

    /// Whether this operation synchronizes (anything that can carry a
    /// happens-before edge, i.e. everything except plain memory accesses).
    ///
    /// The graph optimization of §6 merges contiguous accesses separated by
    /// no synchronization operation; this predicate defines "synchronization"
    /// for that purpose.
    pub fn is_sync(&self) -> bool {
        !self.is_access()
    }

    /// A short mnemonic matching the paper's notation.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::ThreadInit => "threadinit",
            OpKind::ThreadExit => "threadexit",
            OpKind::Fork { .. } => "fork",
            OpKind::Join { .. } => "join",
            OpKind::AttachQ => "attachQ",
            OpKind::LoopOnQ => "loopOnQ",
            OpKind::Post { .. } => "post",
            OpKind::Begin { .. } => "begin",
            OpKind::End { .. } => "end",
            OpKind::Cancel { .. } => "cancel",
            OpKind::Acquire { .. } => "acquire",
            OpKind::Release { .. } => "release",
            OpKind::Read { .. } => "read",
            OpKind::Write { .. } => "write",
            OpKind::Enable { .. } => "enable",
        }
    }
}

/// One operation of an execution trace: an [`OpKind`] plus the thread that
/// executes it (always the first parameter of the paper's op-codes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Op {
    /// The executing thread.
    pub thread: ThreadId,
    /// What the operation does.
    pub kind: OpKind,
}

impl Op {
    /// Creates an operation executed by `thread`.
    pub fn new(thread: ThreadId, kind: OpKind) -> Self {
        Op { thread, kind }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.thread;
        match self.kind {
            OpKind::ThreadInit => write!(f, "threadinit({t})"),
            OpKind::ThreadExit => write!(f, "threadexit({t})"),
            OpKind::Fork { child } => write!(f, "fork({t},{child})"),
            OpKind::Join { child } => write!(f, "join({t},{child})"),
            OpKind::AttachQ => write!(f, "attachQ({t})"),
            OpKind::LoopOnQ => write!(f, "loopOnQ({t})"),
            OpKind::Post {
                task,
                target,
                kind,
                event,
            } => {
                write!(f, "post({t},{task},{target}")?;
                match kind {
                    PostKind::Plain => {}
                    PostKind::Delayed(d) => write!(f, ",delay={d}")?,
                    PostKind::Front => write!(f, ",front")?,
                }
                if let Some(e) = event {
                    write!(f, ",event={e}")?;
                }
                write!(f, ")")
            }
            OpKind::Begin { task } => write!(f, "begin({t},{task})"),
            OpKind::End { task } => write!(f, "end({t},{task})"),
            OpKind::Cancel { task } => write!(f, "cancel({t},{task})"),
            OpKind::Acquire { lock } => write!(f, "acquire({t},{lock})"),
            OpKind::Release { lock } => write!(f, "release({t},{lock})"),
            OpKind::Read { loc } => write!(f, "read({t},{loc})"),
            OpKind::Write { loc } => write!(f, "write({t},{loc})"),
            OpKind::Enable { task } => write!(f, "enable({t},{task})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FieldId, ObjectId};

    #[test]
    fn display_matches_paper_notation() {
        let op = Op::new(ThreadId(0), OpKind::ThreadInit);
        assert_eq!(op.to_string(), "threadinit(t0)");
        let op = Op::new(
            ThreadId(2),
            OpKind::Post {
                task: TaskId(4),
                target: ThreadId(1),
                kind: PostKind::Plain,
                event: None,
            },
        );
        assert_eq!(op.to_string(), "post(t2,p4,t1)");
        let op = Op::new(
            ThreadId(1),
            OpKind::Read {
                loc: MemLoc::new(ObjectId(0), FieldId(3)),
            },
        );
        assert_eq!(op.to_string(), "read(t1,o0.f3)");
    }

    #[test]
    fn delayed_and_front_posts_render_their_kind() {
        let op = Op::new(
            ThreadId(0),
            OpKind::Post {
                task: TaskId(1),
                target: ThreadId(0),
                kind: PostKind::Delayed(250),
                event: Some(EventId(2)),
            },
        );
        assert_eq!(op.to_string(), "post(t0,p1,t0,delay=250,event=e2)");
        let op = Op::new(
            ThreadId(0),
            OpKind::Post {
                task: TaskId(1),
                target: ThreadId(0),
                kind: PostKind::Front,
                event: None,
            },
        );
        assert_eq!(op.to_string(), "post(t0,p1,t0,front)");
    }

    #[test]
    fn access_predicates() {
        let loc = MemLoc::new(ObjectId(1), FieldId(1));
        assert!(OpKind::Write { loc }.is_write());
        assert!(OpKind::Write { loc }.is_access());
        assert!(!OpKind::Read { loc }.is_write());
        assert!(OpKind::Read { loc }.is_access());
        assert!(!OpKind::Read { loc }.is_sync());
        assert!(OpKind::AttachQ.is_sync());
        assert_eq!(OpKind::Read { loc }.accessed_loc(), Some(loc));
        assert_eq!(OpKind::LoopOnQ.accessed_loc(), None);
    }

    #[test]
    fn post_kind_delay_accessor() {
        assert_eq!(PostKind::Delayed(7).delay(), Some(7));
        assert_eq!(PostKind::Plain.delay(), None);
        assert!(PostKind::Delayed(0).is_delayed());
        assert!(!PostKind::Front.is_delayed());
    }
}
