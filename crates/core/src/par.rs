//! Dependency-free parallel fan-out with deterministic, input-order merge.
//!
//! DroidRacer's detection phase is offline and embarrassingly parallel
//! across traces: each [`Analysis`](crate::Analysis) touches only its own
//! trace, so a batch of traces can be analyzed on a pool of worker threads
//! with no shared mutable state. The only real hazard of parallelizing an
//! analysis pipeline is *nondeterministic output* — results arriving in
//! completion order instead of submission order. This module rules that
//! out structurally.
//!
//! # Determinism contract
//!
//! For any `items`, any pure `f`, and any thread count `n ≥ 0`:
//!
//! ```text
//! par_map(&items, n, f) == items.iter().map(f).collect()
//! ```
//!
//! — element for element, in input order. Workers claim items through a
//! single atomic counter (work stealing by index), compute `f` on their
//! claimed item, and write the result into that item's dedicated output
//! slot. Scheduling decides only *who* computes each result, never *where*
//! it lands or *what* it is. Wall-clock timings embedded in results (e.g.
//! [`AnalysisTiming`](crate::AnalysisTiming)) are the one intentional
//! exception: they vary run to run and are excluded from report equality.
//!
//! The pool is built on [`std::thread::scope`], so `f` and the items only
//! need to outlive the call, not `'static`, and a panic in any worker
//! propagates to the caller after the scope joins.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use droidracer_obs::{Recorder, SpanRecord};
use droidracer_trace::Trace;

use crate::report::Analysis;
use crate::rules::HbConfig;
use crate::session::AnalysisBuilder;

/// A sensible worker count for this machine: the available hardware
/// parallelism, or 1 if it cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Minimum item count before a fan-out spawns worker threads.
///
/// Spawning and joining a scoped pool costs tens of microseconds; below
/// this many items the fixed overhead dominates any speedup (the pipeline
/// bench measured the parallel path at 0.878× sequential for `threads=1`
/// before the short-circuit was made explicit). Items here are whole
/// analyses or row batches — milliseconds each — so the threshold is low;
/// per-row granularity is guarded separately by the engine's
/// `PAR_GROUP_MIN`.
pub const SPAWN_MIN_ITEMS: usize = 2;

/// The worker count a fan-out will actually use: `1` (the inline
/// sequential path — no threads spawned) when `threads ≤ 1` or there are
/// fewer than [`SPAWN_MIN_ITEMS`] items, otherwise `threads` capped at the
/// item count.
///
/// [`par_map`] and [`par_try_map`] route through this, so callers (the
/// pipeline bench exports it as `par.effective_workers`) can report which
/// path a fan-out took without instrumenting the pool.
pub fn effective_workers(items: usize, threads: usize) -> usize {
    if threads <= 1 || items < SPAWN_MIN_ITEMS {
        1
    } else {
        threads.min(items)
    }
}

/// Applies `f` to every item on `threads` workers, returning results in
/// input order (see the module documentation for the contract).
///
/// `threads ≤ 1` runs inline on the caller's thread — the sequential path
/// and the parallel path are the same code shape, so equivalence tests can
/// compare them directly. Worker panics propagate.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = effective_workers(items.len(), threads);
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    // Collected (index, result) pairs; each worker drains its local batch
    // into this under one short lock at exit.
    let gathered: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                gathered
                    .lock()
                    .expect("a worker panicked while holding the gather lock")
                    .append(&mut local);
            });
        }
    });
    let mut pairs = gathered
        .into_inner()
        .expect("a worker panicked while holding the gather lock");
    debug_assert_eq!(pairs.len(), items.len(), "every item produced a result");
    // Deterministic merge: place each result back at its input index. The
    // indices are a permutation of 0..len, so sorting restores input order
    // exactly regardless of which worker computed what.
    pairs.sort_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Why one item of a [`par_try_map`] fan-out produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemError<E> {
    /// The closure returned a typed error for this item.
    Err(E),
    /// The closure panicked on this item; the payload is the rendered panic
    /// message. The worker survived and went on to other items.
    Panic(String),
}

impl<E: std::fmt::Display> std::fmt::Display for ItemError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ItemError::Err(e) => write!(f, "{e}"),
            ItemError::Panic(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

/// Renders a caught panic payload (the `Box<dyn Any>` from
/// [`std::panic::catch_unwind`]) into a displayable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `f` inside the quarantine boundary used by [`par_try_map`]: a
/// typed error becomes [`ItemError::Err`], a panic is caught and becomes
/// [`ItemError::Panic`] with the rendered message, and the calling thread
/// survives either way. This is the single-job form of the fan-out
/// isolation — servers use it to wrap one analysis job per worker without
/// going through a batch.
pub fn run_isolated<R, E>(f: impl FnOnce() -> Result<R, E>) -> Result<R, ItemError<E>> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(Ok(r)) => Ok(r),
        Ok(Err(e)) => Err(ItemError::Err(e)),
        Err(payload) => Err(ItemError::Panic(panic_message(payload))),
    }
}

/// Fault-isolated [`par_map`]: applies the fallible `f` to every item,
/// catching panics per item, and returns one `Result` per input in input
/// order.
///
/// This is the quarantine primitive of the batch pipeline: a panicking or
/// failing item becomes `Err(ItemError)` in its own slot and *nothing
/// else changes* — the sibling results are bit-identical to a run without
/// the bad item, because workers share no mutable state and the merge is
/// by input index. The determinism contract of [`par_map`] carries over:
///
/// ```text
/// par_try_map(&items, n, f)[i] == catch(f(&items[i]))   for every i, any n
/// ```
///
/// Unlike [`par_map`], worker panics do NOT propagate; use `par_map` when
/// a panic should abort the batch.
pub fn par_try_map<T, R, E, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, ItemError<E>>>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    let isolated = |item: &T| -> Result<R, ItemError<E>> { run_isolated(|| f(item)) };
    let workers = effective_workers(items.len(), threads);
    if workers == 1 {
        return items.iter().map(isolated).collect();
    }
    // One (input index, outcome) pair per item, gathered across workers.
    type Slot<R, E> = (usize, Result<R, ItemError<E>>);
    let next = AtomicUsize::new(0);
    let gathered: Mutex<Vec<Slot<R, E>>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<Slot<R, E>> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, isolated(&items[i])));
                }
                gathered
                    .lock()
                    .expect("workers cannot panic while holding the gather lock")
                    .append(&mut local);
            });
        }
    });
    let mut pairs = gathered
        .into_inner()
        .expect("workers cannot panic while holding the gather lock");
    debug_assert_eq!(pairs.len(), items.len(), "every item produced a result");
    pairs.sort_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// [`par_map`] with per-item span recording: every worker records its
/// item's subtree on a clock shared across the whole fan-out, and the
/// subtrees are merged — like the results — by input index under a parent
/// span named `label`.
///
/// Each item `i` gets a span `label[i]` wrapping whatever `f` records; `f`
/// receives a [`Recorder`] already inside that span. Because the merge
/// order is the input order and the recorders share one clock origin, the
/// *structure* of the returned [`SpanRecord`] (names, nesting, counters) is
/// identical for every thread count — only `start_ns`/`dur_ns` vary.
pub fn par_map_profiled<T, R, F>(
    items: &[T],
    threads: usize,
    label: &str,
    f: F,
) -> (Vec<R>, SpanRecord)
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut Recorder) -> R + Sync,
{
    let origin = Instant::now();
    let profiled = par_map(items, threads, |item| {
        let mut rec = Recorder::with_origin(origin);
        rec.start(label.to_owned());
        let result = f(item, &mut rec);
        (result, rec.finish_root())
    });
    let mut parent = SpanRecord::leaf(label);
    parent.counters.push(("items".to_owned(), items.len() as u64));
    let mut results = Vec::with_capacity(profiled.len());
    for (i, (result, mut span)) in profiled.into_iter().enumerate() {
        span.name = format!("{label}[{i}]");
        parent.dur_ns = parent.dur_ns.max(span.start_ns + span.dur_ns);
        parent.children.push(span);
        results.push(result);
    }
    (results, parent)
}

/// Analyzes a batch of traces in parallel with the paper's full
/// configuration, preserving input order.
pub fn analyze_all(traces: &[Trace], threads: usize) -> Vec<Analysis> {
    analyze_all_with(traces, threads, HbConfig::new())
}

/// Analyzes a batch of traces in parallel under an explicit configuration,
/// preserving input order.
pub fn analyze_all_with(traces: &[Trace], threads: usize, config: HbConfig) -> Vec<Analysis> {
    par_map(traces, threads, |trace| {
        AnalysisBuilder::new()
            .config(config)
            .analyze(trace)
            .expect("infallible without validation")
    })
}

/// [`analyze_all_with`] plus a merged profile: the returned span tree has
/// one `analyze[i]` child per trace (in input order, regardless of thread
/// count), each containing that analysis' full phase subtree.
pub fn analyze_all_profiled(
    traces: &[Trace],
    threads: usize,
    config: HbConfig,
) -> (Vec<Analysis>, SpanRecord) {
    par_map_profiled(traces, threads, "analyze", |trace, rec| {
        let analysis = AnalysisBuilder::new()
            .config(config)
            .clock_origin(rec.origin())
            .analyze(trace)
            .expect("infallible without validation");
        rec.adopt(analysis.spans().clone());
        analysis
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [0, 1, 2, 3, 8, 64] {
            let got = par_map(&items, threads, |x| x * x + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(par_map(&empty, 4, |x| *x), Vec::<u32>::new());
        assert_eq!(par_map(&[7u32], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_uses_more_workers_than_items_safely() {
        let items = [1u32, 2];
        assert_eq!(par_map(&items, 16, |x| x * 10), vec![10, 20]);
    }

    #[test]
    fn results_land_at_input_positions_not_completion_order() {
        // Make early items slow so completion order inverts input order.
        let items: Vec<usize> = (0..16).collect();
        let got = par_map(&items, 4, |&i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * 2
        });
        assert_eq!(got, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let items = [0u32, 1, 2, 3];
        let _ = par_map(&items, 2, |&x| {
            assert!(x != 2, "boom");
            x
        });
    }

    #[test]
    fn par_try_map_isolates_panics_and_errors() {
        let items: Vec<u32> = (0..32).collect();
        for threads in [1, 4] {
            let got = par_try_map(&items, threads, |&x| {
                if x == 7 {
                    panic!("injected panic on {x}");
                }
                if x % 10 == 1 {
                    return Err(format!("typed error on {x}"));
                }
                Ok(x * 2)
            });
            assert_eq!(got.len(), items.len(), "threads={threads}");
            for (i, r) in got.iter().enumerate() {
                match (i as u32, r) {
                    (7, Err(ItemError::Panic(msg))) => {
                        assert!(msg.contains("injected panic"), "{msg}")
                    }
                    (x, Err(ItemError::Err(e))) if x % 10 == 1 => {
                        assert!(e.contains("typed error"), "{e}")
                    }
                    (x, Ok(v)) => assert_eq!(*v, x * 2),
                    other => panic!("unexpected slot {other:?} at {i} (threads={threads})"),
                }
            }
        }
    }

    #[test]
    fn par_try_map_siblings_unaffected_by_faulty_item() {
        // The quarantine invariant in miniature: results for the good items
        // are identical with and without a panicking sibling in the batch.
        let clean: Vec<u32> = (0..16).collect();
        let run = |items: &[u32]| {
            par_try_map(items, 4, |&x| {
                if x == 99 {
                    panic!("bad sibling");
                }
                Ok::<u32, String>(x.wrapping_mul(31).rotate_left(3))
            })
        };
        let mut with_fault = clean.clone();
        with_fault.insert(9, 99);
        let baseline = run(&clean);
        let faulted = run(&with_fault);
        let good: Vec<_> = faulted
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 9)
            .map(|(_, r)| r.clone())
            .collect();
        assert_eq!(good, baseline);
        assert!(matches!(faulted[9], Err(ItemError::Panic(_))));
    }

    #[test]
    fn analyze_all_agrees_with_sequential_analysis() {
        use droidracer_trace::{ThreadKind, TraceBuilder};
        let mut traces = Vec::new();
        for k in 0..6 {
            let mut b = TraceBuilder::new();
            let main = b.thread("main", ThreadKind::Main, true);
            let bg = b.thread("bg", ThreadKind::App, false);
            let loc = b.loc("obj", "C.state");
            b.thread_init(main);
            b.fork(main, bg);
            b.thread_init(bg);
            for _ in 0..=k {
                b.write(bg, loc);
            }
            b.read(main, loc);
            traces.push(b.finish());
        }
        let sequential: Vec<Analysis> = traces
            .iter()
            .map(|t| AnalysisBuilder::new().analyze(t).expect("runs"))
            .collect();
        for threads in [1, 2, 8] {
            let parallel = analyze_all(&traces, threads);
            assert_eq!(parallel.len(), sequential.len());
            for (p, s) in parallel.iter().zip(&sequential) {
                assert_eq!(p.races(), s.races(), "threads={threads}");
                assert_eq!(p.counts(), s.counts(), "threads={threads}");
                assert_eq!(p.hb().stats(), s.hb().stats(), "threads={threads}");
                assert_eq!(p.render(), s.render(), "threads={threads}");
            }
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn effective_workers_encodes_the_spawn_threshold() {
        // threads ≤ 1 is always the inline path.
        assert_eq!(effective_workers(100, 0), 1);
        assert_eq!(effective_workers(100, 1), 1);
        // Below the spawn threshold: inline regardless of threads.
        assert_eq!(effective_workers(0, 8), 1);
        assert_eq!(effective_workers(SPAWN_MIN_ITEMS - 1, 8), 1);
        // At/above threshold: capped at the item count.
        assert_eq!(effective_workers(SPAWN_MIN_ITEMS, 8), SPAWN_MIN_ITEMS.min(8));
        assert_eq!(effective_workers(3, 16), 3);
        assert_eq!(effective_workers(100, 8), 8);
    }

    #[test]
    fn profiled_fan_out_has_identical_structure_across_thread_counts() {
        use droidracer_trace::{ThreadKind, TraceBuilder};
        let mut traces = Vec::new();
        for k in 0..5 {
            let mut b = TraceBuilder::new();
            let main = b.thread("main", ThreadKind::Main, true);
            let bg = b.thread("bg", ThreadKind::App, false);
            let loc = b.loc("obj", "C.state");
            b.thread_init(main);
            b.fork(main, bg);
            b.thread_init(bg);
            for _ in 0..=k {
                b.write(bg, loc);
            }
            b.read(main, loc);
            traces.push(b.finish());
        }
        let (_, base) = analyze_all_profiled(&traces, 1, HbConfig::new());
        assert_eq!(base.children.len(), traces.len());
        assert_eq!(base.children[0].name, "analyze[0]");
        assert!(base.children[0].find("closure").is_some());
        for threads in [2, 8] {
            let (_, span) = analyze_all_profiled(&traces, threads, HbConfig::new());
            assert_eq!(span.structure(), base.structure(), "threads={threads}");
        }
    }

    #[test]
    fn par_map_profiled_wraps_worker_spans() {
        let items: Vec<u32> = (0..7).collect();
        let (results, span) = par_map_profiled(&items, 3, "work", |&x, rec| {
            rec.counter("x", x as u64);
            x * 2
        });
        assert_eq!(results, vec![0, 2, 4, 6, 8, 10, 12]);
        assert_eq!(span.name, "work");
        assert_eq!(span.children.len(), 7);
        for (i, child) in span.children.iter().enumerate() {
            assert_eq!(child.name, format!("work[{i}]"));
            assert_eq!(child.counters, vec![("x".to_owned(), i as u64)]);
        }
    }
}
