//! Golden-file regression tests: a committed trace file must keep parsing,
//! validating and analyzing to the same result across changes to the
//! format, the semantics checker and the detector.

use proptest::prelude::*;

use droidracer::core::{AnalysisBuilder, RaceCategory};
use droidracer::trace::{from_text, to_text, validate, TraceStats};

const AARD_TRACE: &str = include_str!("data/aard_dictionary.trace");

#[test]
fn golden_aard_trace_parses_and_validates() {
    let trace = from_text(AARD_TRACE).expect("golden trace parses");
    assert_eq!(trace.len(), 1343);
    // The stripped corpus trace is a feasible prefix except for the
    // scrubbed untracked ops — Aard has none, so it validates fully.
    assert_eq!(validate(&trace), Ok(()));
    let stats = TraceStats::of(&trace);
    assert_eq!(stats.fields, 189);
    assert_eq!(stats.async_tasks, 58);
}

#[test]
fn golden_aard_trace_analyzes_to_the_known_race() {
    let trace = from_text(AARD_TRACE).expect("golden trace parses");
    let analysis = AnalysisBuilder::new().analyze(&trace).unwrap();
    let reps = analysis.representatives();
    assert_eq!(reps.len(), 1);
    assert_eq!(reps[0].category, RaceCategory::Multithreaded);
    assert_eq!(
        analysis
            .trace()
            .names()
            .field_name(reps[0].race.loc.field),
        "mt.f0"
    );
}

#[test]
fn golden_trace_reserializes_identically() {
    let trace = from_text(AARD_TRACE).expect("golden trace parses");
    let text = to_text(&trace);
    let again = from_text(&text).expect("re-serialized trace parses");
    assert_eq!(again.ops(), trace.ops());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_is_total_on_garbage(text in ".{0,400}") {
        let _ = from_text(&text);
    }

    /// Nor on inputs that resemble the format.
    #[test]
    fn parser_is_total_on_format_like_input(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("droidracer-trace v1".to_owned()),
                "thread t[0-9] (main|binder|app|system)( initial)? \"[a-z ]{0,6}\"".prop_map(|s| s),
                "task p[0-9] \"[a-z]{0,6}\"".prop_map(|s| s),
                "op (threadinit|threadexit|attachQ|loopOnQ) t[0-9]".prop_map(|s| s),
                "op post t[0-9] p[0-9] t[0-9]( delay=[0-9]{1,3})?( front)?( event=e[0-9])?".prop_map(|s| s),
                "op (begin|end|cancel|enable) t[0-9] p[0-9]".prop_map(|s| s),
                "op (read|write) t[0-9] o[0-9].f[0-9]".prop_map(|s| s),
                "[a-z =\"]{0,20}".prop_map(|s| s),
            ],
            0..30,
        )
    ) {
        let text = lines.join("\n");
        let _ = from_text(&text);
    }
}
