//! Text input generation for `TextInput` events.
//!
//! DroidRacer's UI Explorer "can determine the required format of the input
//! (e.g., an email address) by inspecting flags associated with text fields.
//! It supplies text of appropriate format from a manually constructed set of
//! data inputs" (§5). We infer the format from the widget name (our stand-in
//! for the input-type flags) and draw from fixed sample sets.

use std::fmt;

/// The input format a text field expects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TextFormat {
    /// Free-form text.
    #[default]
    Plain,
    /// An email address.
    Email,
    /// A phone number.
    Phone,
    /// A numeric value.
    Number,
    /// A URL.
    Url,
    /// A password.
    Password,
}

impl TextFormat {
    /// Infers the expected format from a widget's name, mimicking the
    /// input-type flag inspection of the real explorer.
    pub fn infer(widget_name: &str) -> TextFormat {
        let lower = widget_name.to_lowercase();
        if lower.contains("mail") {
            TextFormat::Email
        } else if lower.contains("phone") || lower.contains("tel") {
            TextFormat::Phone
        } else if lower.contains("url") || lower.contains("link") || lower.contains("site") {
            TextFormat::Url
        } else if lower.contains("pass") || lower.contains("pin") {
            TextFormat::Password
        } else if lower.contains("num") || lower.contains("count") || lower.contains("age") {
            TextFormat::Number
        } else {
            TextFormat::Plain
        }
    }

    /// The manually constructed sample set for this format.
    pub fn samples(self) -> &'static [&'static str] {
        match self {
            TextFormat::Plain => &["hello", "lorem ipsum", "droid racer", ""],
            TextFormat::Email => &[
                concat!("user", "@", "example.com"),
                concat!("test.account", "@", "mail.example.org"),
            ],
            TextFormat::Phone => &["+1-555-0100", "080-2293-2368"],
            TextFormat::Number => &["0", "42", "-7", "3.14"],
            TextFormat::Url => &["http://example.org", "https://dev.example/page?q=1"],
            TextFormat::Password => &["hunter2", "correct horse battery staple"],
        }
    }

    /// Deterministically picks the `n`-th sample (wrapping).
    pub fn sample(self, n: usize) -> &'static str {
        let s = self.samples();
        s[n % s.len()]
    }
}

impl fmt::Display for TextFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TextFormat::Plain => "plain",
            TextFormat::Email => "email",
            TextFormat::Phone => "phone",
            TextFormat::Number => "number",
            TextFormat::Url => "url",
            TextFormat::Password => "password",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_from_names() {
        assert_eq!(TextFormat::infer("emailField"), TextFormat::Email);
        assert_eq!(TextFormat::infer("userMail"), TextFormat::Email);
        assert_eq!(TextFormat::infer("phoneNumber"), TextFormat::Phone);
        assert_eq!(TextFormat::infer("ageInput"), TextFormat::Number);
        assert_eq!(TextFormat::infer("homepageUrl"), TextFormat::Url);
        assert_eq!(TextFormat::infer("passwordBox"), TextFormat::Password);
        assert_eq!(TextFormat::infer("noteBody"), TextFormat::Plain);
    }

    #[test]
    fn samples_are_nonempty_and_format_appropriate() {
        for fmt in [
            TextFormat::Plain,
            TextFormat::Email,
            TextFormat::Phone,
            TextFormat::Number,
            TextFormat::Url,
            TextFormat::Password,
        ] {
            assert!(!fmt.samples().is_empty());
        }
        assert!(TextFormat::Email.samples().iter().all(|s| s.contains('@')));
        assert!(TextFormat::Url.samples().iter().all(|s| s.starts_with("http")));
    }

    #[test]
    fn sample_wraps_deterministically() {
        let n = TextFormat::Email.samples().len();
        assert_eq!(TextFormat::Email.sample(0), TextFormat::Email.sample(n));
        assert_eq!(TextFormat::Email.sample(1), TextFormat::Email.sample(n + 1));
    }
}
