//! Minimal JSON support: string escaping for the writers and a small
//! recursive-descent parser used to validate exported profiles.
//!
//! The workspace is dependency-free by policy (the build environment has no
//! registry access), so the golden tests and the CLI cannot lean on serde.
//! This parser handles the full JSON grammar — objects, arrays, strings
//! with escapes, numbers, booleans, null — which is all the trace-event
//! schema checks need. It is not a streaming parser and keeps the whole
//! document in memory; profiles are small.

use std::collections::BTreeMap;
use std::fmt;

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (keys sorted; duplicate keys keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// The object field `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Advance over a plain UTF-8 run, then handle the interesting byte.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not reassembled; lone
                            // surrogates map to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "s": "x\ny"}"#;
        let json = Json::parse(doc).expect("parses");
        assert_eq!(json.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(json.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(json.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(json.get("s").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let json = Json::parse(&doc).expect("parses");
        assert_eq!(json.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn unicode_escapes_decode() {
        // A \u escape and a raw multi-byte UTF-8 character decode alike.
        let escaped = Json::parse("\"\\u00e9A\"").expect("parses");
        assert_eq!(escaped.as_str(), Some("éA"));
        let raw = Json::parse("\"éA\"").expect("parses");
        assert_eq!(raw.as_str(), Some("éA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "12 34", "nul", ""] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(Vec::new()));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
    }
}
