//! A deterministic chaos harness for the serving layer.
//!
//! [`run_soak`] executes a seeded [`ChaosPlan`]: for each [`Scenario`] it
//! stands up a real in-process server, injects one class of fault —
//! network (torn frames, mid-stream disconnects, stalls past the
//! connection deadline), process (shard-worker kill via the `fault_hook`),
//! or disk (torn write-ahead-log tails, corrupt WAL records) — and then
//! checks the serving invariants the resilience layer promises:
//!
//! * **the server never crashes** — every scenario ends in a clean
//!   shutdown with `Server::run` returning `Ok`;
//! * **no accepted job is lost or duplicated** — a report the client
//!   actually received is durable: resubmitting the same content is a
//!   cache hit (never a re-execution), in the same process and, for the
//!   disk scenarios, across a simulated `kill -9` + restart;
//! * **every completed report is bit-identical** to a direct
//!   [`LocalService`] run of the same spec and trace.
//!
//! Violations are *counted, not panicked*: the soak returns a
//! [`ChaosReport`] whose `srv.chaos.*` counters are all zero on a healthy
//! build, so the pipeline bench can export and CI can pin them. Every
//! fault site (torn offsets, flipped bytes, chunk sizes) derives from
//! [`ChaosPlan::seed`] — replaying a seed replays the exact fault plan,
//! in the spirit of reproducible-nondeterminism testing.

use std::io::{self, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use droidracer_core::{AnalysisService, ExitClass, JobReport, JobSpec, LocalService};
use droidracer_obs::MetricsRegistry;
use droidracer_trace::{to_text, ThreadKind, TraceBuilder};

use crate::client::{Client, RetryPolicy, Submission};
use crate::server::{status_counter, Server, ServerConfig};
use crate::store::{wal_record_ranges, wal_torn_tail_bytes, WalStore};

/// One fault class the soak can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// A rogue connection writes half a frame and disconnects.
    TornFrame,
    /// A streaming upload dies between chunks.
    MidStreamDisconnect,
    /// A peer opens a connection and then stalls past the deadline.
    StalledPeer,
    /// The `shard.*` fault hook kills a shard worker thread mid-queue.
    ShardPanic,
    /// The WAL ends in a half-written record (`kill -9` mid-append).
    TornWalTail,
    /// A bit flips inside a non-final WAL record (disk corruption).
    CorruptWalRecord,
}

impl Scenario {
    /// Every scenario, in canonical soak order.
    pub const ALL: [Scenario; 6] = [
        Scenario::TornFrame,
        Scenario::MidStreamDisconnect,
        Scenario::StalledPeer,
        Scenario::ShardPanic,
        Scenario::TornWalTail,
        Scenario::CorruptWalRecord,
    ];

    /// Stable name for logs and reports.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::TornFrame => "torn-frame",
            Scenario::MidStreamDisconnect => "mid-stream-disconnect",
            Scenario::StalledPeer => "stalled-peer",
            Scenario::ShardPanic => "shard-panic",
            Scenario::TornWalTail => "torn-wal-tail",
            Scenario::CorruptWalRecord => "corrupt-wal-record",
        }
    }
}

/// What to soak and how hard.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Seeds every fault site; same seed, same faults.
    pub seed: u64,
    /// Scenarios to run, in order.
    pub scenarios: Vec<Scenario>,
    /// Distinct jobs submitted per scenario (clamped to ≥ 2).
    pub jobs_per_scenario: usize,
    /// Scratch directory for sockets/caches; each scenario gets a
    /// subdirectory, removed afterwards.
    pub scratch_dir: std::path::PathBuf,
}

impl ChaosPlan {
    /// The full six-scenario soak under `scratch_dir`.
    pub fn full(seed: u64, scratch_dir: impl Into<std::path::PathBuf>) -> Self {
        ChaosPlan {
            seed,
            scenarios: Scenario::ALL.to_vec(),
            jobs_per_scenario: 3,
            scratch_dir: scratch_dir.into(),
        }
    }
}

/// Soak results. The `srv.chaos.*`-exported fields are violation counts —
/// all zero on a healthy build; the activity fields record how much chaos
/// actually ran (exported as gauges so clean-path counter pins stay
/// all-zero).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Scenarios executed.
    pub scenarios: u64,
    /// Individual faults injected (torn frames, flipped bytes, panics…).
    pub faults_injected: u64,
    /// Jobs that completed with a report in hand.
    pub jobs_completed: u64,
    /// Client-side retries spent absorbing the faults.
    pub client_retries: u64,
    /// VIOLATION: a submission ended with no report despite retries.
    pub lost_jobs: u64,
    /// VIOLATION: completed work re-executed (a resubmission of an
    /// already-reported job missed the cache).
    pub duplicated_jobs: u64,
    /// VIOLATION: a completed report differed from the direct
    /// [`LocalService`] run.
    pub mismatched_reports: u64,
    /// VIOLATION: `Server::run` returned an error or its thread panicked.
    pub server_crashes: u64,
    /// VIOLATION: a durably-acknowledged cache entry was gone after a
    /// simulated kill + restart (corruption-skipped records excepted —
    /// those are re-executed by design and checked for bit-identity).
    pub unrecovered_entries: u64,
}

impl ChaosReport {
    /// Total invariant violations (0 = the soak passed).
    pub fn violations(&self) -> u64 {
        self.lost_jobs
            + self.duplicated_jobs
            + self.mismatched_reports
            + self.server_crashes
            + self.unrecovered_entries
    }

    /// Exports the report: violation counts as `srv.chaos.*` counters
    /// (pinned to zero by CI), activity as `chaos.*` gauges.
    pub fn export(&self, registry: &mut MetricsRegistry) {
        registry.counter_add("srv.chaos.lost_jobs", self.lost_jobs);
        registry.counter_add("srv.chaos.duplicated_jobs", self.duplicated_jobs);
        registry.counter_add("srv.chaos.mismatched_reports", self.mismatched_reports);
        registry.counter_add("srv.chaos.server_crashes", self.server_crashes);
        registry.counter_add("srv.chaos.unrecovered_entries", self.unrecovered_entries);
        registry.gauge_set("chaos.scenarios", self.scenarios as f64);
        registry.gauge_set("chaos.faults_injected", self.faults_injected as f64);
        registry.gauge_set("chaos.jobs_completed", self.jobs_completed as f64);
        registry.gauge_set("chaos.client_retries", self.client_retries as f64);
    }
}

/// xorshift64*: the soak's only randomness source, fully seed-determined.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A value in `[1, bound)` (for offsets that must not be zero).
    fn nonzero_below(&mut self, bound: usize) -> usize {
        1 + (self.next() as usize) % bound.saturating_sub(1).max(1)
    }
}

/// The `i`-th soak trace: a deterministic racy trace whose shape (and
/// therefore cache key and report) varies with `i`.
fn soak_trace(i: usize) -> String {
    let mut b = TraceBuilder::new();
    let main = b.thread("main", ThreadKind::Main, true);
    let bg = b.thread("bg", ThreadKind::App, false);
    b.thread_init(main);
    b.fork(main, bg);
    b.thread_init(bg);
    for field in 0..=i {
        let loc = b.loc("obj", format!("Chaos.f{field}"));
        b.write(bg, loc);
        b.read(main, loc);
    }
    to_text(&b.finish())
}

/// The ground truth a served report must be bit-identical to.
fn reference(spec: &JobSpec, text: &str) -> JobReport {
    LocalService::new()
        .submit(spec, text)
        .expect("local reference run cannot fail on a soak trace")
}

/// Everything one scenario needs, plus the running tallies.
struct Soak<'a> {
    plan: &'a ChaosPlan,
    rng: Rng,
    report: ChaosReport,
}

/// One live server under test.
struct Harness {
    addr: String,
    handle: std::thread::JoinHandle<io::Result<()>>,
}

impl Harness {
    fn start(config: ServerConfig) -> io::Result<Harness> {
        let server = Server::bind_tcp("127.0.0.1:0", config)?;
        let addr = server
            .local_addr()
            .ok_or_else(|| io::Error::other("no local addr"))?
            .to_string();
        Ok(Harness {
            addr,
            handle: std::thread::spawn(move || server.run()),
        })
    }

    fn client(&self, tenant: &str, seed: u64) -> io::Result<Client> {
        Client::connect_tcp(&self.addr, tenant)?.with_retry_policy(RetryPolicy {
            max_retries: 6,
            base_backoff_ms: 5,
            max_backoff_ms: 100,
            deadline_ms: Some(30_000),
            connect_timeout_ms: Some(2_000),
            io_timeout_ms: Some(10_000),
            seed,
        })
    }

    /// Clean shutdown; a run error or thread panic is a server crash.
    fn stop(self, soak: &mut Soak<'_>) {
        let clean = Client::connect_tcp(&self.addr, "janitor")
            .and_then(|mut c| c.shutdown())
            .is_ok();
        match self.handle.join() {
            Ok(Ok(())) if clean => {}
            _ => soak.report.server_crashes += 1,
        }
    }
}

impl Soak<'_> {
    /// Submits trace `i`, tallies the outcome, and proves no-duplication
    /// by resubmitting: the immediate resubmission of a completed job must
    /// be answered from the cache.
    fn submit_and_check(&mut self, client: &mut Client, spec: &JobSpec, i: usize) {
        let text = soak_trace(i);
        match client.submit_trace(spec, &text) {
            Ok(Submission::Done { report, .. }) => {
                self.report.jobs_completed += 1;
                if report != reference(spec, &text) {
                    self.report.mismatched_reports += 1;
                }
                match client.submit_trace(spec, &text) {
                    Ok(sub) if sub.cache_hit() => {}
                    _ => self.report.duplicated_jobs += 1,
                }
            }
            _ => self.report.lost_jobs += 1,
        }
    }

    /// Polls the server's status until `key` reaches `at_least` (bounded
    /// wait — timeouts and thread scheduling are not instant).
    fn await_counter(&mut self, harness: &Harness, key: &str, at_least: u64) -> bool {
        for _ in 0..100 {
            let count = Client::connect_tcp(&harness.addr, "probe")
                .and_then(|mut c| c.status())
                .ok()
                .and_then(|s| status_counter(&s, key));
            if count.is_some_and(|c| c >= at_least) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        false
    }
}

/// Runs the plan. See the [module docs](self) for the invariants checked.
///
/// # Errors
///
/// Infrastructure failures only (cannot bind, cannot create scratch
/// space). Invariant *violations* are reported in the returned
/// [`ChaosReport`], not as errors.
pub fn run_soak(plan: &ChaosPlan) -> io::Result<ChaosReport> {
    std::fs::create_dir_all(&plan.scratch_dir)?;
    let mut soak = Soak {
        plan,
        rng: Rng::new(plan.seed),
        report: ChaosReport::default(),
    };
    for (idx, scenario) in plan.scenarios.iter().enumerate() {
        let dir = plan.scratch_dir.join(format!("{idx}-{}", scenario.label()));
        std::fs::create_dir_all(&dir)?;
        match scenario {
            Scenario::TornFrame => torn_frame(&mut soak)?,
            Scenario::MidStreamDisconnect => mid_stream_disconnect(&mut soak)?,
            Scenario::StalledPeer => stalled_peer(&mut soak)?,
            Scenario::ShardPanic => shard_panic(&mut soak)?,
            Scenario::TornWalTail => torn_wal_tail(&mut soak, &dir)?,
            Scenario::CorruptWalRecord => corrupt_wal_record(&mut soak, &dir)?,
        }
        soak.report.scenarios += 1;
        std::fs::remove_dir_all(&dir).ok();
    }
    Ok(soak.report)
}

/// Rogue connections write torn frames (a truncated length prefix, and a
/// full prefix with a truncated payload) and vanish; polite traffic on
/// other connections must be unaffected.
fn torn_frame(soak: &mut Soak<'_>) -> io::Result<()> {
    let harness = Harness::start(ServerConfig::default())?;
    let spec = JobSpec::default();
    let mut client = harness.client("polite", soak.plan.seed ^ 0x7f)?;
    for i in 0..soak.plan.jobs_per_scenario.max(2) {
        // Interleave: one torn frame before every polite job.
        let payload = crate::protocol::Request::Submit {
            tenant: "rogue".to_owned(),
            spec: spec.to_token(),
            trace: soak_trace(i).into_bytes(),
        }
        .encode();
        let mut framed = (payload.len() as u32).to_be_bytes().to_vec();
        framed.extend_from_slice(&payload);
        let cut = soak.rng.nonzero_below(framed.len());
        let mut rogue = TcpStream::connect(&harness.addr)?;
        rogue.write_all(&framed[..cut])?;
        drop(rogue);
        soak.report.faults_injected += 1;

        soak.submit_and_check(&mut client, &spec, i);
    }
    let retries = client.stats().retries;
    soak.report.client_retries += retries;
    drop(client);
    harness.stop(soak);
    Ok(())
}

/// Streaming uploads die between chunks; the per-connection stream state
/// must evaporate with the connection, leaving nothing half-submitted.
fn mid_stream_disconnect(soak: &mut Soak<'_>) -> io::Result<()> {
    let harness = Harness::start(ServerConfig::default())?;
    let spec = JobSpec::default();
    let mut client = harness.client("polite", soak.plan.seed ^ 0x1ead)?;
    for i in 0..soak.plan.jobs_per_scenario.max(2) {
        // A raw streamer opens a stream, sends a seeded number of chunks,
        // then drops the socket without StreamFinish.
        {
            let mut dying = TcpStream::connect(&harness.addr)?;
            let open = crate::protocol::Request::StreamOpen {
                tenant: "dying".to_owned(),
                spec: spec.to_token(),
                chunk_ops: 2,
            };
            crate::protocol::write_frame(&mut dying, &open.encode())?;
            let _ = crate::protocol::read_frame(&mut dying)?;
            let text = soak_trace(i);
            let chunks = 1 + (soak.rng.next() as usize) % 3;
            for chunk in text.as_bytes().chunks(16).take(chunks) {
                let req = crate::protocol::Request::StreamChunk { data: chunk.to_vec() };
                crate::protocol::write_frame(&mut dying, &req.encode())?;
                let _ = crate::protocol::read_frame(&mut dying)?;
            }
        }
        soak.report.faults_injected += 1;

        soak.submit_and_check(&mut client, &spec, i);
    }
    soak.report.client_retries += client.stats().retries;
    drop(client);
    harness.stop(soak);
    Ok(())
}

/// A peer connects and stalls; the connection deadline must reap it
/// (visible as `srv.conn_timeouts`) while sibling connections flow.
fn stalled_peer(soak: &mut Soak<'_>) -> io::Result<()> {
    let harness = Harness::start(ServerConfig {
        conn_timeout_ms: Some(100),
        ..ServerConfig::default()
    })?;
    let spec = JobSpec::default();
    // The staller: half a length prefix, then silence past the deadline.
    let mut staller = TcpStream::connect(&harness.addr)?;
    staller.write_all(&[0, 0])?;
    soak.report.faults_injected += 1;

    let mut client = harness.client("polite", soak.plan.seed ^ 0x57a1)?;
    for i in 0..soak.plan.jobs_per_scenario.max(2) {
        soak.submit_and_check(&mut client, &spec, i);
    }
    if !soak.await_counter(&harness, "srv.conn_timeouts", 1) {
        // The stall was never reaped: the deadline mechanism is broken,
        // which in production is a pinned thread — count it as a loss.
        soak.report.lost_jobs += 1;
    }
    drop(staller);
    soak.report.client_retries += client.stats().retries;
    drop(client);
    harness.stop(soak);
    Ok(())
}

/// The fault hook kills a shard worker outside the quarantine boundary.
/// The supervisor must answer the poison job with a `Resource` quarantine
/// report, respawn the worker, and the very next job on that shard must
/// succeed bit-identically.
fn shard_panic(soak: &mut Soak<'_>) -> io::Result<()> {
    let armed = Arc::new(AtomicBool::new(true));
    let hook_armed = Arc::clone(&armed);
    let harness = Harness::start(ServerConfig {
        shards: 2,
        fault_hook: Some(Arc::new(move |phase: &str| {
            if phase == "shard.victim" && hook_armed.swap(false, Ordering::SeqCst) {
                panic!("chaos: injected shard-worker death at {phase}");
            }
        })),
        ..ServerConfig::default()
    })?;
    let spec = JobSpec::default();
    let mut victim = harness.client("victim", soak.plan.seed ^ 0x5a)?;

    // The poison job: the worker dies holding it; the supervisor must
    // still answer with a typed Resource quarantine.
    soak.report.faults_injected += 1;
    match victim.submit_trace(&spec, &soak_trace(0)) {
        Ok(Submission::Done { report, .. }) if report.exit == ExitClass::Resource => {}
        Ok(Submission::Done { .. }) => soak.report.mismatched_reports += 1,
        _ => soak.report.lost_jobs += 1,
    }
    if !soak.await_counter(&harness, "srv.shard_respawns", 1) {
        soak.report.lost_jobs += 1;
    }

    // Same tenant, same shard, fresh worker: jobs complete and match.
    for i in 1..=soak.plan.jobs_per_scenario.max(2) {
        soak.submit_and_check(&mut victim, &spec, i);
    }
    soak.report.client_retries += victim.stats().retries;
    drop(victim);
    harness.stop(soak);
    Ok(())
}

/// Builds a WAL-backed server, runs `jobs` acknowledged submissions, and
/// shuts down *without* compacting — leaving exactly the on-disk state a
/// `kill -9` after the last acknowledgement would: snapshotless, every
/// acked record in the log.
fn populate_wal(
    soak: &mut Soak<'_>,
    cache: &Path,
    spec: &JobSpec,
    jobs: usize,
) -> io::Result<()> {
    let harness = Harness::start(ServerConfig {
        cache_path: Some(cache.to_owned()),
        skip_final_compaction: true,
        ..ServerConfig::default()
    })?;
    let mut client = harness.client("durable", soak.plan.seed ^ 0xd0)?;
    for i in 0..jobs {
        soak.submit_and_check(&mut client, spec, i);
    }
    soak.report.client_retries += client.stats().retries;
    drop(client);
    harness.stop(soak);
    Ok(())
}

/// Restarts on the same cache and verifies recovery: every previously
/// acknowledged job must be answered from the recovered cache, except keys
/// in `recompute_ok` (corruption-skipped), which must recompute to the
/// bit-identical report.
fn verify_recovery(
    soak: &mut Soak<'_>,
    cache: &Path,
    spec: &JobSpec,
    jobs: usize,
    recompute_ok: Option<usize>,
    expect_counter: (&str, u64),
) -> io::Result<()> {
    let harness = Harness::start(ServerConfig {
        cache_path: Some(cache.to_owned()),
        skip_final_compaction: true,
        ..ServerConfig::default()
    })?;
    let mut client = harness.client("durable", soak.plan.seed ^ 0xd1)?;
    for i in 0..jobs {
        let text = soak_trace(i);
        match client.submit_trace(spec, &text) {
            Ok(Submission::Done { cache_hit, report }) => {
                soak.report.jobs_completed += 1;
                if report != reference(spec, &text) {
                    soak.report.mismatched_reports += 1;
                }
                if !cache_hit && recompute_ok != Some(i) {
                    // A durably-acked entry should have been recovered.
                    soak.report.unrecovered_entries += 1;
                }
            }
            _ => soak.report.lost_jobs += 1,
        }
    }
    let (key, at_least) = expect_counter;
    if !soak.await_counter(&harness, key, at_least) {
        soak.report.unrecovered_entries += 1;
    }
    soak.report.client_retries += client.stats().retries;
    drop(client);
    harness.stop(soak);
    Ok(())
}

/// `kill -9` mid-append: the WAL gains a torn tail (a partial record at a
/// seeded byte offset). Restart must truncate the tail and recover every
/// previously acknowledged entry.
fn torn_wal_tail(soak: &mut Soak<'_>, dir: &Path) -> io::Result<()> {
    let cache = dir.join("cache.txt");
    let spec = JobSpec::default();
    let jobs = soak.plan.jobs_per_scenario.max(2);
    populate_wal(soak, &cache, &spec, jobs)?;

    // Tear: append a prefix of a record that was "in flight" at the kill.
    // Real crashes can only tear the unsynced tail — every acked record
    // was fsynced whole — so the tear goes after the last whole record.
    let wal = WalStore::wal_path(&cache);
    let mut bytes = std::fs::read(&wal)?;
    let torn = wal_torn_tail_bytes(0xfeed_face, b"in-flight record the kill interrupted");
    let cut = soak.rng.nonzero_below(torn.len());
    bytes.extend_from_slice(&torn[..cut]);
    std::fs::write(&wal, &bytes)?;
    soak.report.faults_injected += 1;

    verify_recovery(soak, &cache, &spec, jobs, None, ("srv.wal_torn_truncated", 1))
}

/// Disk corruption: a byte flips inside a non-final WAL record. Restart
/// must skip exactly that record (recovering its neighbors, including
/// later ones) and recompute it bit-identically on resubmission.
fn corrupt_wal_record(soak: &mut Soak<'_>, dir: &Path) -> io::Result<()> {
    let cache = dir.join("cache.txt");
    let spec = JobSpec::default();
    let jobs = soak.plan.jobs_per_scenario.max(3);
    populate_wal(soak, &cache, &spec, jobs)?;

    let wal = WalStore::wal_path(&cache);
    let mut bytes = std::fs::read(&wal)?;
    let ranges = wal_record_ranges(&bytes);
    if ranges.len() < jobs {
        // Fewer durable records than acked jobs: durability already broke.
        soak.report.unrecovered_entries += (jobs - ranges.len()) as u64;
        return Ok(());
    }
    // Flip one byte mid-body of a record that is NOT the last, proving
    // replay resyncs past the corruption instead of truncating at it.
    // Records land in ack order, so record k holds soak trace k.
    let victim = (soak.rng.next() as usize) % (ranges.len() - 1);
    let span = &ranges[victim];
    let offset = span.start + soak.rng.nonzero_below(span.end - span.start);
    bytes[offset] ^= 0x20;
    std::fs::write(&wal, &bytes)?;
    soak.report.faults_injected += 1;

    verify_recovery(soak, &cache, &spec, jobs, Some(victim), ("srv.wal_skipped", 1))
}
