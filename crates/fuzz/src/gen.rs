//! The seeded, coverage-biased random program generator.
//!
//! The generator produces [`ProgramSpec`]s — a plain-data mirror of
//! [`droidracer_sim::Program`] that the shrinker can edit — and lowers them
//! through [`droidracer_sim::ProgramBuilder`], so every generated program
//! passes the simulator's static checks by construction. Generation draws
//! every random bit from one [`SmallRng`], making a whole fuzzing session a
//! pure function of its seed.
//!
//! Coverage feedback enters through [`GenBias`]: the fuzz driver raises the
//! weight of features (delayed/front posts, cancels, idle handlers, locks,
//! fork/join, enable gating) that recent traces rarely exercised, steering
//! generation toward the engine rules the static corpus leaves cold.

use droidracer_sim::{
    Action, Injection, Program, ProgramBuilder, ProgramError, ThreadSpec,
};
use droidracer_trace::{PostKind, ThreadKind};
use rand::rngs::SmallRng;
use rand::RngExt;

/// Size bounds for generated programs.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum looper (queue) threads, ≥ 1 (the first is always `main`).
    pub max_loopers: usize,
    /// Maximum plain initial threads.
    pub max_initial_threads: usize,
    /// Maximum forkable (non-initial) thread definitions.
    pub max_forkable_threads: usize,
    /// Maximum task definitions, ≥ 1.
    pub max_tasks: usize,
    /// Maximum locks.
    pub max_locks: usize,
    /// Maximum memory locations, ≥ 1.
    pub max_locs: usize,
    /// Maximum actions per thread or task body.
    pub max_body_len: usize,
    /// Maximum environment-event injections.
    pub max_injections: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_loopers: 2,
            max_initial_threads: 2,
            max_forkable_threads: 2,
            max_tasks: 5,
            max_locks: 2,
            max_locs: 3,
            max_body_len: 6,
            max_injections: 2,
        }
    }
}

/// The component automaton a canned generator substructure models. Tags
/// are recorded on the emitted [`ProgramSpec`] and surface as
/// `gen.component.*` coverage features, so the driver can boost whichever
/// component path recent iterations left cold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentTag {
    /// A started Service: binder posts onCreate + re-delivered
    /// onStartCommands to the main queue, with a forked loader worker.
    Service,
    /// A Fragment splice: host launch forks background work that the host
    /// teardown races (detach-during-background-work).
    Fragment,
    /// An IntentService serial executor: its own FIFO queue thread,
    /// deliveries ordered among themselves but racing other threads.
    SerialExecutor,
    /// A broadcast boundary: onReceive cross-posted with no happens-before
    /// edge back to the sender's later writes.
    Broadcast,
}

impl ComponentTag {
    /// All tags, in generation-roll order.
    pub fn all() -> [ComponentTag; 4] {
        [
            ComponentTag::Service,
            ComponentTag::Fragment,
            ComponentTag::SerialExecutor,
            ComponentTag::Broadcast,
        ]
    }

    /// The `gen.component.{label}` feature suffix.
    pub fn label(self) -> &'static str {
        match self {
            ComponentTag::Service => "service",
            ComponentTag::Fragment => "fragment",
            ComponentTag::SerialExecutor => "serial_executor",
            ComponentTag::Broadcast => "broadcast",
        }
    }
}

/// Per-feature generation weights (relative, in arbitrary units). The fuzz
/// driver raises a weight when coverage shows the feature rarely fires.
#[derive(Debug, Clone, Copy)]
pub struct GenBias {
    /// Weight of plain reads/writes.
    pub access: u32,
    /// Weight of a `post` action (kind drawn separately).
    pub post: u32,
    /// Among posts: weight of `Delayed` posts.
    pub delayed_post: u32,
    /// Among posts: weight of `Front` posts.
    pub front_post: u32,
    /// Weight of an acquire…release bracket.
    pub lock: u32,
    /// Weight of a `cancel`.
    pub cancel: u32,
    /// Weight of an `addIdle` registration.
    pub idle: u32,
    /// Weight of a fork (with a possible later join).
    pub fork: u32,
    /// Probability (percent) that a task requires `enable` before posting.
    pub enable_gate_pct: u32,
    /// Probability (percent) that a task is an environment-event handler.
    pub event_task_pct: u32,
    /// Probability (percent) of appending the Service substructure.
    pub service_pct: u32,
    /// Probability (percent) of appending the Fragment substructure.
    pub fragment_pct: u32,
    /// Probability (percent) of appending the IntentService serial-executor
    /// substructure.
    pub serial_executor_pct: u32,
    /// Probability (percent) of appending the broadcast-boundary
    /// substructure.
    pub broadcast_pct: u32,
}

impl GenBias {
    /// The probability (percent) of appending `tag`'s substructure.
    pub fn component_pct(&self, tag: ComponentTag) -> u32 {
        match tag {
            ComponentTag::Service => self.service_pct,
            ComponentTag::Fragment => self.fragment_pct,
            ComponentTag::SerialExecutor => self.serial_executor_pct,
            ComponentTag::Broadcast => self.broadcast_pct,
        }
    }

    /// Sets the probability (percent) of appending `tag`'s substructure.
    pub fn set_component_pct(&mut self, tag: ComponentTag, pct: u32) {
        match tag {
            ComponentTag::Service => self.service_pct = pct,
            ComponentTag::Fragment => self.fragment_pct = pct,
            ComponentTag::SerialExecutor => self.serial_executor_pct = pct,
            ComponentTag::Broadcast => self.broadcast_pct = pct,
        }
    }
}

impl Default for GenBias {
    fn default() -> Self {
        GenBias {
            access: 10,
            post: 8,
            delayed_post: 3,
            front_post: 2,
            lock: 3,
            cancel: 2,
            idle: 2,
            fork: 3,
            enable_gate_pct: 30,
            event_task_pct: 35,
            service_pct: 12,
            fragment_pct: 12,
            serial_executor_pct: 12,
            broadcast_pct: 12,
        }
    }
}

/// One action in a [`ProgramSpec`] body, with plain-index references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecAction {
    /// Read location `loc`.
    Read(usize),
    /// Write location `loc`.
    Write(usize),
    /// Acquire lock `lock`.
    Acquire(usize),
    /// Release lock `lock`.
    Release(usize),
    /// Post `task` to looper `target` with `kind`.
    Post {
        /// Task definition index.
        task: usize,
        /// Target thread definition index (must be a looper).
        target: usize,
        /// FIFO / delayed / front.
        kind: PostKind,
    },
    /// Enable a future posting of `task`.
    Enable(usize),
    /// Cancel the oldest pending instance of `task`.
    Cancel(usize),
    /// Register `task` as a one-shot idle handler on looper `target`.
    AddIdle {
        /// Task definition index.
        task: usize,
        /// Target looper thread definition index.
        target: usize,
    },
    /// Fork thread definition `thread` (must be non-initial).
    Fork(usize),
    /// Join the latest instance of thread definition `thread`.
    Join(usize),
}

/// A thread definition in a [`ProgramSpec`].
#[derive(Debug, Clone)]
pub struct SpecThread {
    /// Display name.
    pub name: String,
    /// Whether the thread exists at startup.
    pub initial: bool,
    /// Whether the thread loops on a task queue.
    pub queue: bool,
    /// Runtime role.
    pub kind: ThreadKind,
    /// Body actions.
    pub body: Vec<SpecAction>,
}

/// A task definition in a [`ProgramSpec`].
#[derive(Debug, Clone)]
pub struct SpecTask {
    /// Display name.
    pub name: String,
    /// Environment event handled, if any.
    pub event: Option<String>,
    /// Whether posting requires a prior `enable`.
    pub needs_enable: bool,
    /// Body actions.
    pub body: Vec<SpecAction>,
}

/// An environment-event injection in a [`ProgramSpec`].
#[derive(Debug, Clone, Copy)]
pub struct SpecInjection {
    /// Idle looper performing the post (thread definition index).
    pub poster: usize,
    /// Task definition index.
    pub task: usize,
    /// Receiving looper (thread definition index).
    pub target: usize,
    /// Post kind.
    pub kind: PostKind,
}

/// A plain-data program description the generator emits and the shrinker
/// edits. Lower it with [`ProgramSpec::lower`] to run it.
#[derive(Debug, Clone, Default)]
pub struct ProgramSpec {
    /// Thread definitions in declaration order.
    pub threads: Vec<SpecThread>,
    /// Task definitions in declaration order.
    pub tasks: Vec<SpecTask>,
    /// Number of locks.
    pub locks: usize,
    /// Number of memory locations.
    pub locs: usize,
    /// Environment-event injections in order.
    pub injections: Vec<SpecInjection>,
    /// Component substructures appended to this spec (coverage metadata —
    /// shrinking may delete the structure while the tag remains).
    pub components: Vec<ComponentTag>,
}

impl ProgramSpec {
    /// Total number of body actions across threads, tasks and injections —
    /// the size metric the shrinker minimizes.
    pub fn action_count(&self) -> usize {
        self.threads.iter().map(|t| t.body.len()).sum::<usize>()
            + self.tasks.iter().map(|t| t.body.len()).sum::<usize>()
            + self.injections.len()
    }

    /// Lowers the spec into a checked [`Program`].
    ///
    /// # Errors
    ///
    /// Returns the [`ProgramError`] if the spec violates a structural rule
    /// (the generator never produces such specs; the shrinker uses the
    /// error to discard invalid deletions).
    pub fn lower(&self) -> Result<Program, ProgramError> {
        let mut b = ProgramBuilder::new();
        let thread_refs: Vec<_> = self
            .threads
            .iter()
            .map(|t| {
                let mut spec = ThreadSpec::app(t.name.clone()).kind(t.kind);
                if t.initial {
                    spec = spec.initial();
                }
                if t.queue {
                    spec = spec.with_queue();
                }
                b.thread(spec)
            })
            .collect();
        let task_refs: Vec<_> = self
            .tasks
            .iter()
            .map(|t| match &t.event {
                Some(e) => b.event_task(t.name.clone(), e.clone(), Vec::new()),
                None => b.task(t.name.clone(), Vec::new()),
            })
            .collect();
        for (i, t) in self.tasks.iter().enumerate() {
            if t.needs_enable {
                b.require_enable(task_refs[i]);
            }
        }
        let lock_refs: Vec<_> = (0..self.locks).map(|i| b.lock(format!("m{i}"))).collect();
        let loc_refs: Vec<_> = (0..self.locs)
            .map(|i| b.loc(format!("obj{i}"), format!("C.f{i}")))
            .collect();

        let lower_body = |body: &[SpecAction]| -> Vec<Action> {
            body.iter()
                .map(|a| match *a {
                    SpecAction::Read(l) => Action::Read(loc_refs[l]),
                    SpecAction::Write(l) => Action::Write(loc_refs[l]),
                    SpecAction::Acquire(m) => Action::Acquire(lock_refs[m]),
                    SpecAction::Release(m) => Action::Release(lock_refs[m]),
                    SpecAction::Post { task, target, kind } => Action::Post {
                        task: task_refs[task],
                        target: thread_refs[target],
                        kind,
                    },
                    SpecAction::Enable(t) => Action::Enable(task_refs[t]),
                    SpecAction::Cancel(t) => Action::Cancel(task_refs[t]),
                    SpecAction::AddIdle { task, target } => Action::AddIdle {
                        task: task_refs[task],
                        target: thread_refs[target],
                    },
                    SpecAction::Fork(t) => Action::Fork(thread_refs[t]),
                    SpecAction::Join(t) => Action::Join(thread_refs[t]),
                })
                .collect()
        };
        for (i, t) in self.threads.iter().enumerate() {
            b.set_thread_body(thread_refs[i], lower_body(&t.body));
        }
        for (i, t) in self.tasks.iter().enumerate() {
            b.set_task_body(task_refs[i], lower_body(&t.body));
        }
        for inj in &self.injections {
            b.inject(Injection {
                poster: thread_refs[inj.poster],
                task: task_refs[inj.task],
                target: thread_refs[inj.target],
                kind: inj.kind,
            });
        }
        b.finish()
    }
}

/// Generates one random [`ProgramSpec`] within `config` bounds, biased by
/// `bias`, drawing all randomness from `rng`.
pub fn generate(rng: &mut SmallRng, config: &GenConfig, bias: &GenBias) -> ProgramSpec {
    let mut spec = ProgramSpec {
        locks: rng.random_range(0..config.max_locks + 1),
        locs: 1 + rng.random_range(0..config.max_locs),
        ..ProgramSpec::default()
    };

    // Threads: 1..=max loopers (all initial; the first is Main), then plain
    // initial threads (posters/workers), then forkable definitions.
    let loopers = 1 + rng.random_range(0..config.max_loopers);
    for i in 0..loopers {
        spec.threads.push(SpecThread {
            name: if i == 0 { "main".into() } else { format!("looper{i}") },
            initial: true,
            queue: true,
            kind: if i == 0 { ThreadKind::Main } else { ThreadKind::App },
            body: Vec::new(),
        });
    }
    let initials = rng.random_range(0..config.max_initial_threads + 1);
    for i in 0..initials {
        spec.threads.push(SpecThread {
            name: format!("bg{i}"),
            initial: true,
            queue: false,
            kind: if i == 0 { ThreadKind::Binder } else { ThreadKind::App },
            body: Vec::new(),
        });
    }
    let forkables = rng.random_range(0..config.max_forkable_threads + 1);
    let forkable_base = spec.threads.len();
    for i in 0..forkables {
        spec.threads.push(SpecThread {
            name: format!("worker{i}"),
            initial: false,
            queue: false,
            kind: ThreadKind::App,
            body: Vec::new(),
        });
    }

    // Tasks. Some handle environment events, some are enable-gated.
    let tasks = 1 + rng.random_range(0..config.max_tasks);
    for i in 0..tasks {
        let event = (rng.random_range(0..100) < bias.event_task_pct as usize)
            .then(|| format!("ev{}", rng.random_range(0..3)));
        spec.tasks.push(SpecTask {
            name: format!("task{i}"),
            event,
            needs_enable: rng.random_range(0..100) < bias.enable_gate_pct as usize,
            body: Vec::new(),
        });
    }

    // Bodies. Tasks may only post strictly-higher-indexed tasks so posting
    // chains are acyclic and every run terminates without the step cap.
    let n_threads = spec.threads.len();
    for i in 0..n_threads {
        if spec.threads[i].initial {
            let body = gen_body(rng, config, bias, &spec, BodyContext::Thread, forkable_base, forkables);
            spec.threads[i].body = body;
        }
    }
    for i in (0..spec.tasks.len()).rev() {
        let body = gen_body(
            rng,
            config,
            bias,
            &spec,
            BodyContext::Task { def: i },
            forkable_base,
            forkables,
        );
        spec.tasks[i].body = body;
    }

    // Environment-event injections from idle loopers.
    let injections = rng.random_range(0..config.max_injections + 1);
    for _ in 0..injections {
        let poster = rng.random_range(0..loopers);
        let task = rng.random_range(0..spec.tasks.len());
        ensure_enabled_post(&mut spec, task, poster);
        spec.injections.push(SpecInjection {
            poster,
            task,
            target: rng.random_range(0..loopers),
            kind: pick_post_kind(rng, bias),
        });
    }

    // Component substructures, appended strictly after every draw above so
    // older seeds reproduce their pre-component RNG prefix unchanged. Each
    // substructure only appends new threads/tasks/locations (no index in
    // the generated part shifts) and posts only from thread bodies, so the
    // acyclic task-posting discipline is preserved.
    for tag in ComponentTag::all() {
        if rng.random_range(0..100) < bias.component_pct(tag) as usize {
            append_component(&mut spec, tag);
        }
    }

    spec
}

/// Appends the canned substructure modeling `tag` to `spec`.
///
/// The shapes mirror the framework's component automata at the simulator
/// level, exercising the engine paths the plain generator reaches rarely:
///
/// * [`ComponentTag::Service`] — a binder-like system thread posts
///   `onCreate` and two re-delivered `onStartCommand`s to the main queue
///   (FIFO-ordered among themselves), while a forked loader worker races
///   the command handlers.
/// * [`ComponentTag::Fragment`] — a host launch task forks background view
///   work that the host teardown task reads: the
///   detach-during-background-work window.
/// * [`ComponentTag::SerialExecutor`] — a dedicated FIFO queue thread
///   receives two deliveries from one dispatcher (ordered by the FIFO
///   rule: the serial-executor ordering constraint), while their shared
///   status field races the main thread.
/// * [`ComponentTag::Broadcast`] — a sender posts `onReceive` cross-thread
///   and keeps writing afterwards with no happens-before edge back.
fn append_component(spec: &mut ProgramSpec, tag: ComponentTag) {
    let n = spec.components.iter().filter(|t| **t == tag).count();
    let fresh_loc = |spec: &mut ProgramSpec| {
        spec.locs += 1;
        spec.locs - 1
    };
    let thread = |spec: &mut ProgramSpec, name: String, initial: bool, queue: bool, kind, body| {
        spec.threads.push(SpecThread { name, initial, queue, kind, body });
        spec.threads.len() - 1
    };
    let task = |spec: &mut ProgramSpec, name: String, body| {
        spec.tasks.push(SpecTask { name, event: None, needs_enable: false, body });
        spec.tasks.len() - 1
    };
    let post = |t: usize, target: usize| SpecAction::Post { task: t, target, kind: PostKind::Plain };
    const MAIN: usize = 0;

    match tag {
        ComponentTag::Service => {
            let loc = fresh_loc(spec);
            let worker = thread(
                spec,
                format!("svcWorker{n}"),
                false,
                false,
                ThreadKind::App,
                vec![SpecAction::Write(loc)],
            );
            let create = task(
                spec,
                format!("svcCreate{n}"),
                vec![SpecAction::Fork(worker), SpecAction::Write(loc)],
            );
            let start = task(spec, format!("svcStart{n}"), vec![SpecAction::Read(loc)]);
            let destroy = task(spec, format!("svcDestroy{n}"), vec![SpecAction::Read(loc)]);
            thread(
                spec,
                format!("sysServer{n}"),
                true,
                false,
                ThreadKind::Binder,
                vec![post(create, MAIN), post(start, MAIN), post(start, MAIN), post(destroy, MAIN)],
            );
        }
        ComponentTag::Fragment => {
            let loc = fresh_loc(spec);
            let worker = thread(
                spec,
                format!("fragWorker{n}"),
                false,
                false,
                ThreadKind::App,
                vec![SpecAction::Write(loc)],
            );
            let attach = task(
                spec,
                format!("hostAttach{n}"),
                vec![SpecAction::Write(loc), SpecAction::Fork(worker)],
            );
            let detach = task(spec, format!("hostDetach{n}"), vec![SpecAction::Read(loc)]);
            thread(
                spec,
                format!("hostBinder{n}"),
                true,
                false,
                ThreadKind::App,
                vec![post(attach, MAIN), post(detach, MAIN)],
            );
        }
        ComponentTag::SerialExecutor => {
            let handoff = fresh_loc(spec);
            let status = fresh_loc(spec);
            let queue = thread(
                spec,
                format!("serialq{n}"),
                true,
                true,
                ThreadKind::App,
                Vec::new(),
            );
            let first = task(
                spec,
                format!("handleIntentA{n}"),
                vec![SpecAction::Write(handoff), SpecAction::Write(status)],
            );
            let second = task(
                spec,
                format!("handleIntentB{n}"),
                vec![SpecAction::Write(handoff), SpecAction::Read(status)],
            );
            thread(
                spec,
                format!("dispatcher{n}"),
                true,
                false,
                ThreadKind::App,
                vec![post(first, queue), post(second, queue)],
            );
            // The status field also races the main thread's own body.
            spec.threads[MAIN].body.push(SpecAction::Read(status));
        }
        ComponentTag::Broadcast => {
            let loc = fresh_loc(spec);
            let receive = task(spec, format!("onReceive{n}"), vec![SpecAction::Write(loc)]);
            thread(
                spec,
                format!("sender{n}"),
                true,
                false,
                ThreadKind::App,
                vec![post(receive, MAIN), SpecAction::Write(loc)],
            );
        }
    }
    spec.components.push(tag);
}

#[derive(Clone, Copy)]
enum BodyContext {
    Thread,
    Task { def: usize },
}

fn pick_post_kind(rng: &mut SmallRng, bias: &GenBias) -> PostKind {
    let plain = 10u32;
    let total = plain + bias.delayed_post + bias.front_post;
    let roll = rng.random_range(0..total as usize) as u32;
    if roll < plain {
        PostKind::Plain
    } else if roll < plain + bias.delayed_post {
        PostKind::Delayed(*[10u64, 100, 1000].get(rng.random_range(0..3)).unwrap())
    } else {
        PostKind::Front
    }
}

/// If `task` is enable-gated, prepend an `Enable` to an initial thread body
/// so a post of it can eventually fire (runs may still interleave the
/// enable arbitrarily late — that exercises the ENABLE rules).
fn ensure_enabled_post(spec: &mut ProgramSpec, task: usize, fallback_thread: usize) {
    if spec.tasks[task].needs_enable {
        spec.threads[fallback_thread]
            .body
            .insert(0, SpecAction::Enable(task));
    }
}

fn gen_body(
    rng: &mut SmallRng,
    config: &GenConfig,
    bias: &GenBias,
    spec: &ProgramSpec,
    ctx: BodyContext,
    forkable_base: usize,
    forkables: usize,
) -> Vec<SpecAction> {
    let len = rng.random_range(0..config.max_body_len + 1);
    let mut body = Vec::with_capacity(len + 4);
    let loopers: Vec<usize> = spec
        .threads
        .iter()
        .enumerate()
        .filter(|(_, t)| t.queue)
        .map(|(i, _)| i)
        .collect();
    // Tasks this body may post: any task from a thread, only
    // higher-indexed ones from a task (acyclic posting).
    let postable: Vec<usize> = match ctx {
        BodyContext::Thread => (0..spec.tasks.len()).collect(),
        BodyContext::Task { def } => (def + 1..spec.tasks.len()).collect(),
    };
    let mut forked: Vec<usize> = Vec::new();
    while body.len() < len {
        let w_post = if postable.is_empty() || loopers.is_empty() { 0 } else { bias.post };
        let w_lock = if spec.locks == 0 { 0 } else { bias.lock };
        let w_cancel = if postable.is_empty() { 0 } else { bias.cancel };
        let w_idle = if postable.is_empty() || loopers.is_empty() { 0 } else { bias.idle };
        let w_fork = if forkables == 0 { 0 } else { bias.fork };
        let total = bias.access + w_post + w_lock + w_cancel + w_idle + w_fork;
        let mut roll = rng.random_range(0..total as usize) as u32;
        if roll < bias.access {
            let loc = rng.random_range(0..spec.locs);
            body.push(if rng.random_range(0..2) == 0 {
                SpecAction::Read(loc)
            } else {
                SpecAction::Write(loc)
            });
            continue;
        }
        roll -= bias.access;
        if roll < w_post {
            let task = postable[rng.random_range(0..postable.len())];
            let target = loopers[rng.random_range(0..loopers.len())];
            if spec.tasks[task].needs_enable {
                body.push(SpecAction::Enable(task));
            }
            body.push(SpecAction::Post {
                task,
                target,
                kind: pick_post_kind(rng, bias),
            });
            continue;
        }
        roll -= w_post;
        if roll < w_lock {
            // A balanced acquire…release bracket around one access keeps
            // every run free of lock misuse and cross-body deadlocks: locks
            // are always acquired one at a time and released in the same
            // body.
            let m = rng.random_range(0..spec.locks);
            let loc = rng.random_range(0..spec.locs);
            body.push(SpecAction::Acquire(m));
            body.push(if rng.random_range(0..2) == 0 {
                SpecAction::Read(loc)
            } else {
                SpecAction::Write(loc)
            });
            body.push(SpecAction::Release(m));
            continue;
        }
        roll -= w_lock;
        if roll < w_cancel {
            body.push(SpecAction::Cancel(postable[rng.random_range(0..postable.len())]));
            continue;
        }
        roll -= w_cancel;
        if roll < w_idle {
            body.push(SpecAction::AddIdle {
                task: postable[rng.random_range(0..postable.len())],
                target: loopers[rng.random_range(0..loopers.len())],
            });
            continue;
        }
        // Fork (and sometimes join) a forkable definition.
        let t = forkable_base + rng.random_range(0..forkables);
        body.push(SpecAction::Fork(t));
        forked.push(t);
        if rng.random_range(0..2) == 0 {
            body.push(SpecAction::Join(t));
        }
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generated_specs_lower_to_valid_programs() {
        let mut rng = SmallRng::seed_from_u64(0xD201D);
        let config = GenConfig::default();
        let bias = GenBias::default();
        for i in 0..200 {
            let spec = generate(&mut rng, &config, &bias);
            assert!(spec.lower().is_ok(), "iteration {i}: {spec:?}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen_all = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..20)
                .map(|_| format!("{:?}", generate(&mut rng, &GenConfig::default(), &GenBias::default())))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen_all(7), gen_all(7));
        assert_ne!(gen_all(7), gen_all(8));
    }

    #[test]
    fn bias_zeroing_features_suppresses_them() {
        let mut rng = SmallRng::seed_from_u64(3);
        let bias = GenBias {
            cancel: 0,
            idle: 0,
            front_post: 0,
            ..GenBias::default()
        };
        for _ in 0..50 {
            let spec = generate(&mut rng, &GenConfig::default(), &bias);
            let all_actions: Vec<SpecAction> = spec
                .threads
                .iter()
                .flat_map(|t| t.body.iter().copied())
                .chain(spec.tasks.iter().flat_map(|t| t.body.iter().copied()))
                .collect();
            assert!(!all_actions.iter().any(|a| matches!(a, SpecAction::Cancel(_))));
            assert!(!all_actions.iter().any(|a| matches!(a, SpecAction::AddIdle { .. })));
            assert!(!all_actions
                .iter()
                .any(|a| matches!(a, SpecAction::Post { kind: PostKind::Front, .. })));
        }
    }

    #[test]
    fn component_substructures_lower_and_every_tag_appears() {
        let mut rng = SmallRng::seed_from_u64(0xC0DE);
        let mut bias = GenBias::default();
        for tag in ComponentTag::all() {
            bias.set_component_pct(tag, 60);
        }
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..200 {
            let spec = generate(&mut rng, &GenConfig::default(), &bias);
            assert!(spec.lower().is_ok(), "iteration {i}: {spec:?}");
            for tag in &spec.components {
                seen.insert(tag.label());
            }
        }
        for tag in ComponentTag::all() {
            assert!(seen.contains(tag.label()), "{} never generated", tag.label());
        }
    }

    #[test]
    fn zero_component_pct_suppresses_substructures() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut bias = GenBias::default();
        for tag in ComponentTag::all() {
            bias.set_component_pct(tag, 0);
        }
        for _ in 0..50 {
            let spec = generate(&mut rng, &GenConfig::default(), &bias);
            assert!(spec.components.is_empty());
        }
    }

    #[test]
    fn component_programs_complete_under_simulation() {
        use droidracer_sim::{run, RandomScheduler, SimConfig};
        let mut rng = SmallRng::seed_from_u64(0xFEED);
        let mut bias = GenBias::default();
        for tag in ComponentTag::all() {
            bias.set_component_pct(tag, 100);
        }
        for i in 0..50 {
            let spec = generate(&mut rng, &GenConfig::default(), &bias);
            assert_eq!(spec.components.len(), 4, "iteration {i}");
            let program = spec.lower().expect("lowers");
            let result = run(
                &program,
                &mut RandomScheduler::new(i),
                &SimConfig { max_steps: 20_000 },
            )
            .expect("runs");
            assert!(result.completed, "iteration {i} hit the step cap");
        }
    }
}
