//! The 15 applications of the paper's evaluation, rebuilt synthetically.
//!
//! Each entry composes the motifs of [`crate::motifs`] so that its
//! representative test approximates the corresponding row of Table 2 (trace
//! length, fields, threads, async tasks) and plants exactly the races of
//! Table 3, split into true and false positives per the paper's `X(Y)`
//! reports. For the proprietary applications the paper could not verify
//! true positives; we plant a plausible true/false mixture and leave
//! `PaperRow::verified` as `None`.

use droidracer_core::CategoryCounts;
use droidracer_framework::UiEvent;

use crate::corpus::{CorpusEntry, PaperRow};
use crate::motifs::MotifBuilder;

fn counts(mt: usize, cross: usize, co: usize, delayed: usize, unknown: usize) -> CategoryCounts {
    CategoryCounts {
        multithreaded: mt,
        cross_posted: cross,
        co_enabled: co,
        delayed,
        unknown,
    }
}

fn finishing(
    name: &'static str,
    open_source: bool,
    seed: u64,
    paper: PaperRow,
    m: MotifBuilder,
) -> CorpusEntry {
    let (app, events, truth) = m.finish();
    CorpusEntry {
        name,
        open_source,
        app,
        events,
        seed,
        paper,
        truth,
    }
}

/// Aard Dictionary: a dictionary lookup app whose `Service` loads
/// dictionaries on a background thread — the paper's verified
/// multi-threaded race.
pub fn aard_dictionary() -> CorpusEntry {
    let mut m = MotifBuilder::new("Aard Dictionary", "ArticleViewActivity");
    m.mt_races(1, 0);
    m.handler_burst(54);
    m.safe_sync(6, 8);
    m.filler(175, 5);
    m.filler(6, 22);
    finishing(
        "Aard Dictionary",
        true,
        11,
        PaperRow {
            loc: Some(4044),
            trace_length: 1355,
            fields: 189,
            threads_without_queues: 2,
            threads_with_queues: 1,
            async_tasks: 58,
            reported: counts(1, 0, 0, 0, 0),
            verified: Some(counts(1, 0, 0, 0, 0)),
        },
        m,
    )
}

/// The §2 music player: downloads in an AsyncTask, updates progress, and
/// mixes delayed refreshes, cross-posted cursor swaps and co-enabled
/// buttons.
pub fn music_player() -> CorpusEntry {
    let mut m = MotifBuilder::new("Music Player", "DwFileAct");
    m.cross_posted_races(4, 13);
    m.co_enabled_races(10, 1);
    m.delayed_races(0, 4);
    m.unknown_races(3);
    m.handler_threads(1);
    m.async_burst(2, 4);
    m.safe_sync(6, 4);
    m.handler_burst(36);
    m.filler(464, 9);
    m.filler(13, 70);
    finishing(
        "Music Player",
        true,
        22,
        PaperRow {
            loc: Some(11012),
            trace_length: 5532,
            fields: 521,
            threads_without_queues: 3,
            threads_with_queues: 2,
            async_tasks: 62,
            reported: counts(0, 17, 11, 4, 3),
            verified: Some(counts(0, 4, 10, 0, 2)),
        },
        m,
    )
}

/// My Tracks: GPS tracking with many background loopers.
pub fn my_tracks() -> CorpusEntry {
    let mut m = MotifBuilder::new("My Tracks", "TrackListActivity");
    m.mt_races(0, 1);
    m.cross_posted_races(1, 1);
    m.co_enabled_races(0, 1);
    m.handler_threads(6);
    m.bg_filler(5, 8, 6);
    m.safe_sync(8, 6);
    m.handler_burst(148);
    m.filler(514, 11);
    m.filler(1, 490);
    finishing(
        "My Tracks",
        true,
        33,
        PaperRow {
            loc: Some(26146),
            trace_length: 7305,
            fields: 573,
            threads_without_queues: 11,
            threads_with_queues: 7,
            async_tasks: 164,
            reported: counts(1, 2, 1, 0, 0),
            verified: Some(counts(0, 1, 0, 0, 0)),
        },
        m,
    )
}

/// Messenger: database cursors swapped between asynchronous tasks — the
/// paper's verified cross-posted "index out of bounds" bug.
pub fn messenger() -> CorpusEntry {
    let mut m = MotifBuilder::new("Messenger", "ConversationListActivity");
    m.mt_races(1, 0);
    m.cross_posted_races(5, 10);
    m.co_enabled_races(3, 1);
    m.delayed_races(2, 0);
    m.handler_threads(3);
    m.bg_filler(5, 8, 8);
    m.safe_sync(8, 8);
    m.handler_burst(82);
    m.filler(770, 11);
    m.filler(1, 685);
    finishing(
        "Messenger",
        true,
        44,
        PaperRow {
            loc: Some(27593),
            trace_length: 10106,
            fields: 845,
            threads_without_queues: 11,
            threads_with_queues: 4,
            async_tasks: 99,
            reported: counts(1, 15, 4, 2, 0),
            verified: Some(counts(1, 5, 3, 2, 0)),
        },
        m,
    )
}

/// Tomdroid Notes: note syncing with a storm of small posts.
pub fn tomdroid_notes() -> CorpusEntry {
    let mut m = MotifBuilder::new("Tomdroid Notes", "Tomdroid");
    m.cross_posted_races(2, 3);
    m.co_enabled_races(0, 1);
    m.safe_sync(8, 8);
    m.handler_burst(339);
    m.filler(380, 20);
    m.filler(18, 39);
    finishing(
        "Tomdroid Notes",
        true,
        55,
        PaperRow {
            loc: Some(3215),
            trace_length: 10120,
            fields: 413,
            threads_without_queues: 3,
            threads_with_queues: 1,
            async_tasks: 348,
            reported: counts(0, 5, 1, 0, 0),
            verified: Some(counts(0, 2, 0, 0, 0)),
        },
        m,
    )
}

/// FBReader: an e-book reader with a custom task queue (list of Runnables) —
/// the paper's all-true cross-posted cluster plus co-enabled UI races.
pub fn fbreader() -> CorpusEntry {
    let mut m = MotifBuilder::new("FBReader", "FBReaderActivity");
    m.mt_races(0, 1);
    m.cross_posted_races(22, 0);
    m.co_enabled_races(4, 10);
    m.bg_filler(10, 5, 7);
    m.safe_sync(5, 7);
    m.handler_burst(109);
    m.filler(229, 42);
    finishing(
        "FBReader",
        true,
        66,
        PaperRow {
            loc: Some(50042),
            trace_length: 10723,
            fields: 322,
            threads_without_queues: 14,
            threads_with_queues: 1,
            async_tasks: 119,
            reported: counts(1, 22, 14, 0, 0),
            verified: Some(counts(0, 22, 4, 0, 0)),
        },
        m,
    )
}

/// Browser: heavy native code; most of its cross-posted reports stem from
/// posts by untracked natively-created threads (the paper's main
/// false-positive source).
pub fn browser() -> CorpusEntry {
    let mut m = MotifBuilder::new("Browser", "BrowserActivity");
    m.mt_races(1, 1);
    m.cross_posted_races(2, 62);
    m.handler_threads(3);
    m.bg_filler(6, 8, 8);
    m.safe_sync(8, 8);
    m.handler_burst(91);
    m.filler(837, 22);
    finishing(
        "Browser",
        true,
        77,
        PaperRow {
            loc: Some(30874),
            trace_length: 19062,
            fields: 963,
            threads_without_queues: 13,
            threads_with_queues: 4,
            async_tasks: 103,
            reported: counts(2, 64, 0, 0, 0),
            verified: Some(counts(1, 2, 0, 0, 0)),
        },
        m,
    )
}

/// OpenSudoku: a puzzle game with long single-threaded compute.
pub fn open_sudoku() -> CorpusEntry {
    let mut m = MotifBuilder::new("OpenSudoku", "SudokuPlayActivity");
    m.mt_races(0, 1);
    m.cross_posted_races(0, 1);
    m.bg_filler(1, 10, 10);
    m.safe_sync(10, 10);
    m.handler_burst(39);
    m.filler(300, 78);
    m.filler(11, 96);
    finishing(
        "OpenSudoku",
        true,
        88,
        PaperRow {
            loc: Some(6151),
            trace_length: 24901,
            fields: 334,
            threads_without_queues: 5,
            threads_with_queues: 1,
            async_tasks: 45,
            reported: counts(1, 1, 0, 0, 0),
            verified: Some(counts(0, 0, 0, 0, 0)),
        },
        m,
    )
}

/// K-9 Mail: a mail client firing hundreds of asynchronous tasks per sync.
pub fn k9_mail() -> CorpusEntry {
    let mut m = MotifBuilder::new("K-9 Mail", "MessageListActivity");
    m.mt_races(2, 7);
    m.co_enabled_races(0, 1);
    m.handler_threads(1);
    m.bg_filler(4, 10, 8);
    m.safe_sync(10, 8);
    m.handler_burst(681);
    m.filler(1230, 20);
    m.filler(4, 295);
    finishing(
        "K-9 Mail",
        true,
        99,
        PaperRow {
            loc: Some(54119),
            trace_length: 29662,
            fields: 1296,
            threads_without_queues: 7,
            threads_with_queues: 2,
            async_tasks: 689,
            reported: counts(9, 0, 1, 0, 0),
            verified: Some(counts(2, 0, 0, 0, 0)),
        },
        m,
    )
}

/// SGTPuzzles: a native puzzle collection with many verified multi-threaded
/// races on the game state.
pub fn sgtpuzzles() -> CorpusEntry {
    let mut m = MotifBuilder::new("SGTPuzzles", "SGTPuzzles");
    m.mt_races(10, 1);
    m.cross_posted_races(8, 13);
    m.safe_sync(8, 6);
    m.handler_burst(71);
    m.filler(500, 73);
    m.filler(25, 75);
    finishing(
        "SGTPuzzles",
        true,
        110,
        PaperRow {
            loc: Some(2368),
            trace_length: 38864,
            fields: 566,
            threads_without_queues: 4,
            threads_with_queues: 1,
            async_tasks: 80,
            reported: counts(11, 21, 0, 0, 0),
            verified: Some(counts(10, 8, 0, 0, 0)),
        },
        m,
    )
}

/// Remind Me: a reminder app (proprietary) dominated by co-enabled UI races.
pub fn remind_me() -> CorpusEntry {
    let mut m = MotifBuilder::new("Remind Me", "RemindersActivity");
    m.cross_posted_races(11, 10);
    m.co_enabled_races(17, 16);
    m.safe_sync(6, 8);
    m.handler_burst(165);
    m.filler(280, 30);
    m.filler(7, 129);
    finishing(
        "Remind Me",
        false,
        121,
        PaperRow {
            loc: None,
            trace_length: 10348,
            fields: 348,
            threads_without_queues: 3,
            threads_with_queues: 1,
            async_tasks: 176,
            reported: counts(0, 21, 33, 0, 0),
            verified: None,
        },
        m,
    )
}

/// Twitter (proprietary): many threads, few races.
pub fn twitter() -> CorpusEntry {
    let mut m = MotifBuilder::new("Twitter", "TimelineActivity");
    m.cross_posted_races(10, 10);
    m.co_enabled_races(4, 3);
    m.delayed_races(2, 2);
    m.handler_threads(4);
    m.bg_filler(15, 8, 5);
    m.safe_sync(8, 5);
    m.handler_burst(78);
    m.filler(1198, 13);
    finishing(
        "Twitter",
        false,
        132,
        PaperRow {
            loc: None,
            trace_length: 16975,
            fields: 1362,
            threads_without_queues: 21,
            threads_with_queues: 5,
            async_tasks: 97,
            reported: counts(0, 20, 7, 4, 0),
            verified: None,
        },
        m,
    )
}

/// Adobe Reader (proprietary): heavy multi-threading over the render state.
pub fn adobe_reader() -> CorpusEntry {
    let mut m = MotifBuilder::new("Adobe Reader", "AdobeReader");
    m.mt_races(17, 17);
    m.cross_posted_races(36, 37);
    m.delayed_races(5, 4);
    m.unknown_races(9);
    m.handler_threads(3);
    m.bg_filler(9, 8, 8);
    m.safe_sync(8, 8);
    m.handler_burst(208);
    m.filler(1058, 30);
    finishing(
        "Adobe Reader",
        false,
        143,
        PaperRow {
            loc: None,
            trace_length: 33866,
            fields: 1267,
            threads_without_queues: 17,
            threads_with_queues: 4,
            async_tasks: 226,
            reported: counts(34, 73, 0, 9, 9),
            verified: None,
        },
        m,
    )
}

/// Facebook (proprietary): few asynchronous tasks, many threads.
pub fn facebook() -> CorpusEntry {
    let mut m = MotifBuilder::new("Facebook", "FacebookActivity");
    m.mt_races(6, 6);
    m.cross_posted_races(5, 5);
    m.handler_threads(2);
    m.bg_filler(9, 8, 10);
    m.safe_sync(8, 10);
    m.handler_burst(5);
    m.filler(696, 74);
    finishing(
        "Facebook",
        false,
        154,
        PaperRow {
            loc: None,
            trace_length: 52146,
            fields: 801,
            threads_without_queues: 16,
            threads_with_queues: 3,
            async_tasks: 16,
            reported: counts(12, 10, 0, 0, 0),
            verified: None,
        },
        m,
    )
}

/// Flipkart (proprietary): the largest trace of the evaluation, with races
/// in every category.
pub fn flipkart() -> CorpusEntry {
    let mut m = MotifBuilder::new("Flipkart", "HomeActivity");
    m.mt_races(6, 6);
    m.cross_posted_races(76, 76);
    m.co_enabled_races(42, 42);
    m.delayed_races(15, 15);
    m.unknown_races(36);
    m.handler_threads(2);
    m.bg_filler(28, 8, 8);
    m.safe_sync(8, 8);
    m.handler_burst(84);
    m.filler(1516, 102);
    finishing(
        "Flipkart",
        false,
        165,
        PaperRow {
            loc: None,
            trace_length: 157_539,
            fields: 2065,
            threads_without_queues: 36,
            threads_with_queues: 3,
            async_tasks: 105,
            reported: counts(12, 152, 84, 30, 36),
            verified: None,
        },
        m,
    )
}

// --- Component corpus ---------------------------------------------------
//
// Seven additional apps exercising the DSL-driven component automata
// (Service, Fragment, IntentService, broadcast boundary, rotation). They
// are not part of the paper's Table 2/3 evaluation — their `PaperRow` is
// synthesized so that `reported` matches the planted truth exactly and
// `verified` counts the planted true positives — and they live in
// [`component_corpus`], separate from [`corpus`], so the Table 3 pins and
// the word-ops budget of the original 15 stay untouched.

/// Synthesizes the paper row for a component-corpus app: `reported` and
/// `verified` come from the planted truth (reported = planted per category,
/// verified = planted true positives), the Table 2-style trace statistics
/// are the measured values of the entry's deterministic trace, pinned here
/// so drift is caught by the catalog tests.
fn component_row(
    m: &MotifBuilder,
    trace_length: usize,
    fields: usize,
    threads_without_queues: usize,
    threads_with_queues: usize,
    async_tasks: usize,
) -> PaperRow {
    let mut reported = CategoryCounts::default();
    let mut verified = CategoryCounts::default();
    for t in m.truth().values() {
        reported.add(t.category, 1);
        if t.is_true {
            verified.add(t.category, 1);
        }
    }
    PaperRow {
        loc: None,
        trace_length,
        fields,
        threads_without_queues,
        threads_with_queues,
        async_tasks,
        reported,
        verified: Some(verified),
    }
}

/// Sync Service: a started service loads dictionaries on a forked thread
/// (`onCreate` → loader vs `onStartCommand`) and a STOP button races the
/// teardown against a background publish.
pub fn sync_service() -> CorpusEntry {
    let mut m = MotifBuilder::new("Sync Service", "SyncActivity");
    m.service_loader_races(2, 1);
    m.service_teardown_races(1, 1);
    m.handler_burst(10);
    m.filler(40, 4);
    let paper = component_row(&m, 295, 46, 4, 1, 25);
    finishing("Sync Service", true, 201, paper, m)
}

/// Download Manager: service teardown races around `stopService` plus a
/// completed-download broadcast racing the refresh button.
pub fn download_manager() -> CorpusEntry {
    let mut m = MotifBuilder::new("Download Manager", "DownloadActivity");
    m.service_teardown_races(2, 0);
    m.service_loader_races(0, 1);
    m.broadcast_ui_races(1, 0);
    m.bg_filler(2, 4, 4);
    m.filler(30, 5);
    let paper = component_row(&m, 250, 42, 5, 1, 10);
    finishing("Download Manager", true, 202, paper, m)
}

/// Gallery Fragment: detach-during-background-work — the fragment's view
/// loader races `onDestroyView` when BACK tears the host down.
pub fn gallery_fragment() -> CorpusEntry {
    let mut m = MotifBuilder::new("Gallery Fragment", "GalleryActivity");
    m.fragment_detach_races(2, 1);
    m.safe_sync(4, 4);
    m.filler(35, 4);
    m.push_event(UiEvent::Back);
    let paper = component_row(&m, 203, 42, 3, 1, 6);
    finishing("Gallery Fragment", true, 203, paper, m)
}

/// Feed Fragment: the fragment teardown races co-enabled UI events, plus a
/// detach race with its view loader.
pub fn feed_fragment() -> CorpusEntry {
    let mut m = MotifBuilder::new("Feed Fragment", "FeedActivity");
    m.fragment_ui_races(2, 1);
    m.fragment_detach_races(1, 0);
    m.filler(25, 6);
    m.push_event(UiEvent::Back);
    let paper = component_row(&m, 192, 29, 1, 1, 6);
    finishing("Feed Fragment", true, 204, paper, m)
}

/// Upload Queue: an IntentService's serial executor writes upload state
/// read from main, while two queued intents hand off safely through the
/// per-component FIFO (planted as a must-not-report negative).
pub fn upload_queue() -> CorpusEntry {
    let mut m = MotifBuilder::new("Upload Queue", "UploadActivity");
    m.serial_executor_races(2, 1);
    m.serial_executor_handoff(3);
    m.handler_burst(8);
    m.filler(30, 4);
    let paper = component_row(&m, 216, 37, 1, 4, 15);
    finishing("Upload Queue", true, 205, paper, m)
}

/// Net Monitor: broadcast/binder boundary — `onReceive` has no
/// happens-after edge to the sender's later writes, and a status broadcast
/// races the refresh button.
pub fn net_monitor() -> CorpusEntry {
    let mut m = MotifBuilder::new("Net Monitor", "MonitorActivity");
    m.broadcast_sender_races(2, 1);
    m.broadcast_ui_races(1, 1);
    m.filler(40, 3);
    let paper = component_row(&m, 178, 45, 5, 1, 7);
    finishing("Net Monitor", true, 206, paper, m)
}

/// Rotating Gallery: leak-on-rotation — the old instance's thumbnail task
/// races the relaunched instance through the retained cache and view
/// fields.
pub fn rotating_gallery() -> CorpusEntry {
    let mut m = MotifBuilder::new("Rotating Gallery", "ViewerActivity");
    m.rotation_saved_state_fp(1);
    m.rotation_leak_races();
    m.filler(20, 5);
    let paper = component_row(&m, 263, 23, 4, 1, 9);
    finishing("Rotating Gallery", true, 207, paper, m)
}

/// The component-automaton corpus: apps exercising the DSL-driven Service,
/// Fragment, IntentService, broadcast-boundary and rotation motifs, each
/// with exact planted ground truth.
pub fn component_corpus() -> Vec<CorpusEntry> {
    vec![
        sync_service(),
        download_manager(),
        gallery_fragment(),
        feed_fragment(),
        upload_queue(),
        net_monitor(),
        rotating_gallery(),
    ]
}

/// The full corpus in Table 2 order (open source first, ascending trace
/// length, then proprietary).
pub fn corpus() -> Vec<CorpusEntry> {
    vec![
        aard_dictionary(),
        music_player(),
        my_tracks(),
        messenger(),
        tomdroid_notes(),
        fbreader(),
        browser(),
        open_sudoku(),
        k9_mail(),
        sgtpuzzles(),
        remind_me(),
        twitter(),
        adobe_reader(),
        facebook(),
        flipkart(),
    ]
}

/// The ten open-source entries.
pub fn open_source_corpus() -> Vec<CorpusEntry> {
    corpus().into_iter().filter(|e| e.open_source).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_fifteen_entries_ten_open_source() {
        let c = corpus();
        assert_eq!(c.len(), 15);
        assert_eq!(c.iter().filter(|e| e.open_source).count(), 10);
        assert_eq!(open_source_corpus().len(), 10);
    }

    #[test]
    fn planted_race_totals_match_paper_reported() {
        // The corpus plants exactly as many races as the paper reports;
        // the measured numbers are compared by the table3 bench.
        for entry in corpus() {
            let planted = entry.truth.len();
            let expected = entry.paper.reported.total();
            assert_eq!(
                planted, expected,
                "{}: planted {planted} != paper {expected}",
                entry.name
            );
        }
    }

    #[test]
    fn open_source_true_positive_totals_match_paper() {
        for entry in open_source_corpus() {
            let verified = entry.paper.verified.expect("open source has Y counts");
            let planted_true = entry.truth.values().filter(|t| t.is_true).count();
            // Our unknown-category races are all annotated false (see the
            // motif docs), so compare against the paper's Y minus its
            // unknown-category true positives.
            let expected = verified.total() - verified.unknown;
            assert_eq!(
                planted_true, expected,
                "{}: planted {planted_true} true != paper {expected}",
                entry.name
            );
        }
    }

    #[test]
    fn component_corpus_has_seven_exact_entries() {
        let c = component_corpus();
        assert_eq!(c.len(), 7);
        for entry in &c {
            assert!(entry.open_source, "{}: component apps are ours", entry.name);
            // The synthesized row is exact by construction: reported equals
            // the planted truth and verified equals the planted trues.
            assert_eq!(
                entry.paper.reported.total(),
                entry.truth.len(),
                "{}: reported != planted",
                entry.name
            );
            let verified = entry.paper.verified.expect("component rows carry Y");
            assert_eq!(
                verified.total(),
                entry.truth.values().filter(|t| t.is_true).count(),
                "{}: verified != planted trues",
                entry.name
            );
        }
    }

    #[test]
    fn component_corpus_names_and_seeds_are_distinct() {
        let c = component_corpus();
        let mut names: Vec<_> = c.iter().map(|e| e.name).collect();
        let mut seeds: Vec<_> = c.iter().map(|e| e.seed).collect();
        names.sort_unstable();
        names.dedup();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(names.len(), 7);
        assert_eq!(seeds.len(), 7);
        // Seeds do not collide with the Table 2 corpus either.
        for entry in corpus() {
            assert!(!seeds.contains(&entry.seed), "{} seed reused", entry.name);
        }
    }

    #[test]
    fn component_rows_pin_measured_trace_stats() {
        for entry in component_corpus() {
            let report = entry.analyze().expect("component app analyzes");
            assert_eq!(
                report.stats.trace_length, entry.paper.trace_length,
                "{}: trace length drifted",
                entry.name
            );
            assert_eq!(report.stats.fields, entry.paper.fields, "{}", entry.name);
            assert_eq!(
                (
                    report.stats.threads_without_queues,
                    report.stats.threads_with_queues,
                    report.stats.async_tasks
                ),
                (
                    entry.paper.threads_without_queues,
                    entry.paper.threads_with_queues,
                    entry.paper.async_tasks
                ),
                "{}: thread/task stats drifted",
                entry.name
            );
        }
    }

    #[test]
    fn paper_totals_match_table_3() {
        let open: CategoryCounts = open_source_corpus()
            .iter()
            .fold(CategoryCounts::default(), |acc, e| {
                acc.merged(&e.paper.reported)
            });
        assert_eq!(open.multithreaded, 27);
        assert_eq!(open.cross_posted, 147);
        assert_eq!(open.co_enabled, 32);
        assert_eq!(open.delayed, 6);
        let prop: CategoryCounts = corpus()
            .iter()
            .filter(|e| !e.open_source)
            .fold(CategoryCounts::default(), |acc, e| {
                acc.merged(&e.paper.reported)
            });
        assert_eq!(prop.multithreaded, 58);
        assert_eq!(prop.cross_posted, 276);
        assert_eq!(prop.co_enabled, 124);
        assert_eq!(prop.delayed, 43);
    }
}
