//! A line-based text format for traces, with a lenient, recovering parser.
//!
//! The real DroidRacer logs traces from the instrumented VM and analyses them
//! offline; this module plays the same role, letting traces be written to
//! disk by the simulator and read back by the detector or the replay
//! database. The format is deliberately simple: one declaration or operation
//! per line.
//!
//! ```text
//! droidracer-trace v1
//! thread t0 main initial "main"
//! task p0 "LAUNCH_ACTIVITY"
//! op post t0 p0 t0 delay=100 event=e0
//! ```
//!
//! Offline trace files are routinely truncated or corrupted, so ingestion
//! comes in two strictness levels:
//!
//! * [`from_text`] — strict: the first malformed line is a hard
//!   [`ParseTraceError`]. Used for committed regression corpora, where a
//!   corrupt file should fail loudly.
//! * [`from_text_lenient`] — recovering: malformed lines, truncated tails
//!   and repairable semantic inconsistencies (dangling joins, unbalanced
//!   locks at EOF, infeasible task bodies) become structured
//!   [`Diagnostic`]s carrying byte/line spans and the [`Repair`] applied,
//!   and parsing continues. Only inputs with no consistent prefix at all —
//!   a missing header — are hard errors. The returned trace always passes
//!   [`validate`](crate::validate).

use std::error::Error;
use std::fmt;

use crate::ids::{EventId, FieldId, LockId, MemLoc, ObjectId, TaskId, ThreadId, ThreadKind};
use crate::names::Names;
use crate::op::{Op, OpKind, PostKind};
use crate::recover::repair;
use crate::trace::Trace;

pub(crate) const HEADER: &str = "droidracer-trace v1";

/// An error produced while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseTraceError {}

/// The recovery action the lenient parser applied for one [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Repair {
    /// The offending line or operation was dropped.
    SkipOp,
    /// A missing closing operation (`threadexit`, `end`, `release`) was
    /// synthesized to restore consistency.
    SynthesizeClose,
    /// An infeasible task execution was dropped wholesale: its `begin`, its
    /// body and its matching `end`.
    TruncateTask,
}

impl fmt::Display for Repair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Repair::SkipOp => write!(f, "skip-op"),
            Repair::SynthesizeClose => write!(f, "synthesize-close"),
            Repair::TruncateTask => write!(f, "truncate-task"),
        }
    }
}

/// One problem the lenient parser diagnosed and repaired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// 1-based line number (one past the last line for EOF repairs).
    pub line: usize,
    /// Byte span `[start, end)` of the offending text; empty at EOF.
    pub span: (usize, usize),
    /// What was wrong.
    pub message: String,
    /// The repair applied.
    pub repair: Repair,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {} [{}]", self.line, self.message, self.repair)
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn unquote(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Serializes `trace` to the text format.
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    let names = trace.names();
    for (id, decl) in names.threads() {
        out.push_str(&format!(
            "thread {id} {}{} {}\n",
            decl.kind,
            if decl.initial { " initial" } else { "" },
            quote(&decl.name)
        ));
    }
    for i in 0..names.task_count() {
        let id = TaskId(i as u32);
        out.push_str(&format!("task {id} {}\n", quote(&names.task_name(id))));
    }
    for i in 0..names.event_count() {
        let id = EventId(i as u32);
        out.push_str(&format!("event {id} {}\n", quote(&names.event_name(id))));
    }
    // Locks, objects and fields have no dedicated count accessors beyond
    // fields; emit the ones actually used plus named declarations via probing
    // is fragile, so we emit every id below the max referenced by an op.
    let (mut max_lock, mut max_obj, mut max_field) = (0usize, 0usize, 0usize);
    for op in trace.ops() {
        match op.kind {
            OpKind::Acquire { lock } | OpKind::Release { lock } => {
                max_lock = max_lock.max(lock.index() + 1)
            }
            OpKind::Read { loc } | OpKind::Write { loc } => {
                max_obj = max_obj.max(loc.object.index() + 1);
                max_field = max_field.max(loc.field.index() + 1);
            }
            _ => {}
        }
    }
    max_field = max_field.max(names.field_count());
    for i in 0..max_lock {
        let id = LockId(i as u32);
        out.push_str(&format!("lock {id} {}\n", quote(&names.lock_name(id))));
    }
    for i in 0..max_obj {
        let id = ObjectId(i as u32);
        out.push_str(&format!("object {id} {}\n", quote(&names.object_name(id))));
    }
    for i in 0..max_field {
        let id = FieldId(i as u32);
        out.push_str(&format!("field {id} {}\n", quote(&names.field_name(id))));
    }
    for op in trace.ops() {
        out.push_str("op ");
        out.push_str(&op_line(op));
        out.push('\n');
    }
    out
}

fn op_line(op: &Op) -> String {
    let t = op.thread;
    match op.kind {
        OpKind::ThreadInit => format!("threadinit {t}"),
        OpKind::ThreadExit => format!("threadexit {t}"),
        OpKind::Fork { child } => format!("fork {t} {child}"),
        OpKind::Join { child } => format!("join {t} {child}"),
        OpKind::AttachQ => format!("attachQ {t}"),
        OpKind::LoopOnQ => format!("loopOnQ {t}"),
        OpKind::Post {
            task,
            target,
            kind,
            event,
        } => {
            let mut s = format!("post {t} {task} {target}");
            match kind {
                PostKind::Plain => {}
                PostKind::Delayed(d) => s.push_str(&format!(" delay={d}")),
                PostKind::Front => s.push_str(" front"),
            }
            if let Some(e) = event {
                s.push_str(&format!(" event={e}"));
            }
            s
        }
        OpKind::Begin { task } => format!("begin {t} {task}"),
        OpKind::End { task } => format!("end {t} {task}"),
        OpKind::Cancel { task } => format!("cancel {t} {task}"),
        OpKind::Acquire { lock } => format!("acquire {t} {lock}"),
        OpKind::Release { lock } => format!("release {t} {lock}"),
        OpKind::Read { loc } => format!("read {t} {}.{}", loc.object, loc.field),
        OpKind::Write { loc } => format!("write {t} {}.{}", loc.object, loc.field),
        OpKind::Enable { task } => format!("enable {t} {task}"),
    }
}

fn parse_id(tok: &str, prefix: char) -> Result<u32, String> {
    tok.strip_prefix(prefix)
        .and_then(|rest| rest.parse().ok())
        .ok_or_else(|| format!("expected `{prefix}<n>` id, got `{tok}`"))
}

/// An operation with its source position, before semantic repair.
pub(crate) struct PendingOp {
    pub(crate) op: Op,
    pub(crate) line: usize,
    pub(crate) span: (usize, usize),
}

/// The result of the syntax-lenient pass: every well-formed line applied,
/// every malformed one recorded as a skip diagnostic.
pub(crate) struct SyntaxParse {
    pub(crate) names: Names,
    pub(crate) ops: Vec<PendingOp>,
    pub(crate) diags: Vec<Diagnostic>,
    /// Line number one past the last line, for EOF diagnostics.
    pub(crate) eof_line: usize,
    /// Empty span at the end of the input, for EOF diagnostics.
    pub(crate) eof_span: (usize, usize),
}

/// Parses one non-header line, mutating `names` for declarations and
/// returning the operation for `op` lines. Errors carry only the message;
/// the caller attaches the position.
pub(crate) fn parse_line(l: &str, names: &mut Names) -> Result<Option<Op>, String> {
    // Quoted names may contain arbitrary whitespace: split the line at
    // the opening quote and tokenize only the head.
    let (head, quoted) = match l.find('"') {
        Some(q) => (&l[..q], &l[q..]),
        None => (l, ""),
    };
    let mut toks = head.split_whitespace();
    let keyword = toks.next().unwrap_or("");
    match keyword {
        "thread" => {
            let _id = toks.next().ok_or("missing thread id")?;
            let kind_tok = toks.next().ok_or("missing thread kind")?;
            let kind = match kind_tok {
                "main" => ThreadKind::Main,
                "binder" => ThreadKind::Binder,
                "app" => ThreadKind::App,
                "system" => ThreadKind::System,
                other => return Err(format!("unknown thread kind `{other}`")),
            };
            let initial = match toks.next() {
                Some("initial") => true,
                Some(other) => return Err(format!("unexpected token `{other}`")),
                None => false,
            };
            let name = unquote(quoted.trim_end()).ok_or("malformed thread name")?;
            names.fresh_thread(name, kind, initial);
            Ok(None)
        }
        "task" | "event" | "lock" | "object" | "field" => {
            let _id = toks.next().ok_or("missing id")?;
            let name = unquote(quoted.trim_end()).ok_or("malformed name")?;
            match keyword {
                "task" => {
                    names.fresh_task(name);
                }
                "event" => {
                    names.fresh_event(name);
                }
                "lock" => {
                    names.fresh_lock(name);
                }
                "object" => {
                    names.fresh_object(name);
                }
                "field" => {
                    names.field(name);
                }
                _ => unreachable!(),
            }
            Ok(None)
        }
        "op" => {
            let mnemonic = toks.next().ok_or("missing op mnemonic")?;
            let t = ThreadId(parse_id(toks.next().ok_or("missing thread")?, 't')?);
            let kind = match mnemonic {
                "threadinit" => OpKind::ThreadInit,
                "threadexit" => OpKind::ThreadExit,
                "attachQ" => OpKind::AttachQ,
                "loopOnQ" => OpKind::LoopOnQ,
                "fork" | "join" => {
                    let child =
                        ThreadId(parse_id(toks.next().ok_or("missing child thread")?, 't')?);
                    if mnemonic == "fork" {
                        OpKind::Fork { child }
                    } else {
                        OpKind::Join { child }
                    }
                }
                "begin" | "end" | "cancel" | "enable" => {
                    let task = TaskId(parse_id(toks.next().ok_or("missing task")?, 'p')?);
                    match mnemonic {
                        "begin" => OpKind::Begin { task },
                        "end" => OpKind::End { task },
                        "cancel" => OpKind::Cancel { task },
                        _ => OpKind::Enable { task },
                    }
                }
                "acquire" | "release" => {
                    let lock = LockId(parse_id(toks.next().ok_or("missing lock")?, 'l')?);
                    if mnemonic == "acquire" {
                        OpKind::Acquire { lock }
                    } else {
                        OpKind::Release { lock }
                    }
                }
                "read" | "write" => {
                    let loc_tok = toks.next().ok_or("missing location")?;
                    let (obj, field) = loc_tok
                        .split_once('.')
                        .ok_or_else(|| format!("malformed location `{loc_tok}`"))?;
                    let loc = MemLoc::new(
                        ObjectId(parse_id(obj, 'o')?),
                        FieldId(parse_id(field, 'f')?),
                    );
                    if mnemonic == "read" {
                        OpKind::Read { loc }
                    } else {
                        OpKind::Write { loc }
                    }
                }
                "post" => {
                    let task = TaskId(parse_id(toks.next().ok_or("missing task")?, 'p')?);
                    let target = ThreadId(parse_id(toks.next().ok_or("missing target")?, 't')?);
                    let mut kind = PostKind::Plain;
                    let mut event = None;
                    for extra in toks.by_ref() {
                        if extra == "front" {
                            kind = PostKind::Front;
                        } else if let Some(d) = extra.strip_prefix("delay=") {
                            let d = d.parse().map_err(|_| format!("bad delay `{extra}`"))?;
                            kind = PostKind::Delayed(d);
                        } else if let Some(e) = extra.strip_prefix("event=") {
                            event = Some(EventId(parse_id(e, 'e')?));
                        } else {
                            return Err(format!("unknown post attribute `{extra}`"));
                        }
                    }
                    OpKind::Post {
                        task,
                        target,
                        kind,
                        event,
                    }
                }
                other => return Err(format!("unknown op `{other}`")),
            };
            Ok(Some(Op::new(t, kind)))
        }
        other => Err(format!("unknown keyword `{other}`")),
    }
}

/// The syntax-lenient pass shared by the strict and recovering entry points.
///
/// A missing header is the one hard error — without it there is no
/// consistent prefix to recover. Every other malformed line becomes a
/// [`Repair::SkipOp`] diagnostic and parsing continues.
pub(crate) fn parse_syntax(text: &str) -> Result<SyntaxParse, ParseTraceError> {
    // Line records with byte offsets: (start, end, content), content without
    // the line terminator.
    let mut recs: Vec<(usize, usize, &str)> = Vec::new();
    let mut pos = 0usize;
    for seg in text.split_inclusive('\n') {
        let content = seg.strip_suffix('\n').unwrap_or(seg);
        let content = content.strip_suffix('\r').unwrap_or(content);
        recs.push((pos, pos + content.len(), content));
        pos += seg.len();
    }
    match recs.first() {
        Some(&(_, _, l)) if l.trim() == HEADER => {}
        other => {
            return Err(ParseTraceError {
                line: 1,
                message: format!(
                    "missing header `{HEADER}`, got {:?}",
                    other.map(|&(_, _, l)| l)
                ),
            })
        }
    }
    let mut names = Names::new();
    let mut ops = Vec::new();
    let mut diags = Vec::new();
    for (idx, &(start, end, raw)) in recs.iter().enumerate().skip(1) {
        let line = idx + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        match parse_line(l, &mut names) {
            Ok(Some(op)) => ops.push(PendingOp {
                op,
                line,
                span: (start, end),
            }),
            Ok(None) => {}
            Err(message) => diags.push(Diagnostic {
                line,
                span: (start, end),
                message,
                repair: Repair::SkipOp,
            }),
        }
    }
    Ok(SyntaxParse {
        names,
        ops,
        diags,
        eof_line: recs.len() + 1,
        eof_span: (text.len(), text.len()),
    })
}

/// Parses the text format back into a [`Trace`], strictly.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed input; the error carries the
/// offending line number. Use [`from_text_lenient`] to recover instead.
pub fn from_text(text: &str) -> Result<Trace, ParseTraceError> {
    let parsed = parse_syntax(text)?;
    if let Some(d) = parsed.diags.into_iter().next() {
        return Err(ParseTraceError {
            line: d.line,
            message: d.message,
        });
    }
    Ok(Trace::from_parts(
        parsed.names,
        parsed.ops.into_iter().map(|p| p.op).collect(),
    ))
}

/// Parses the text format leniently, recovering from malformed lines and
/// repairable semantic inconsistencies.
///
/// Returns the recovered trace — guaranteed to satisfy the Figure 5
/// semantics checker ([`validate`](crate::validate)) — together with one
/// [`Diagnostic`] per problem found, in source order. A clean input yields
/// an empty diagnostic list and the same trace as [`from_text`].
///
/// # Errors
///
/// Returns [`ParseTraceError`] only when no consistent prefix exists (the
/// header line is missing or mangled).
pub fn from_text_lenient(text: &str) -> Result<(Trace, Vec<Diagnostic>), ParseTraceError> {
    let mut parsed = parse_syntax(text)?;
    let trace = repair(
        parsed.names,
        parsed.ops,
        &mut parsed.diags,
        parsed.eof_line,
        parsed.eof_span,
    );
    parsed.diags.sort_by_key(|d| (d.line, d.span.0));
    Ok((trace, parsed.diags))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::ids::ThreadKind;
    use crate::validate::validate;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let binder = b.thread("binder thread", ThreadKind::Binder, true);
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let launch = b.task("LAUNCH_ACTIVITY");
        let update = b.task("onProgressUpdate");
        let click = b.event("click:playBtn");
        let l = b.lock("mLock");
        let loc = b.loc("DwFileAct-obj", "DwFileAct.isActivityDestroyed");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.thread_init(binder);
        b.post(binder, launch, main);
        b.begin(main, launch);
        b.write(main, loc);
        b.fork(main, bg);
        b.end(main, launch);
        b.thread_init(bg);
        b.read(bg, loc);
        b.acquire(bg, l);
        b.release(bg, l);
        b.post_with(bg, update, main, PostKind::Delayed(50), Some(click));
        b.thread_exit(bg);
        b.join(main, bg);
        b.begin(main, update);
        b.end(main, update);
        b.finish()
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = sample_trace();
        let text = to_text(&trace);
        let back = from_text(&text).expect("parse back");
        assert_eq!(back.ops(), trace.ops());
        assert_eq!(back.names().thread_name(ThreadId(0)), "binder thread");
        assert_eq!(back.names().task_name(TaskId(1)), "onProgressUpdate");
        assert_eq!(back.names().event_name(EventId(0)), "click:playBtn");
    }

    #[test]
    fn quoting_roundtrips_special_characters() {
        for s in ["plain", "with \"quotes\"", "back\\slash", "new\nline", ""] {
            assert_eq!(unquote(&quote(s)).as_deref(), Some(s));
        }
    }

    #[test]
    fn missing_header_is_rejected() {
        let err = from_text("garbage\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn unknown_op_is_rejected_with_line_number() {
        let text = format!("{HEADER}\nop frobnicate t0\n");
        let err = from_text(&text).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("{HEADER}\n\n# a comment\nthread t0 main initial \"main\"\nop threadinit t0\n");
        let trace = from_text(&text).expect("parse");
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn bad_post_attribute_is_rejected() {
        let text = format!("{HEADER}\nthread t0 main initial \"m\"\ntask p0 \"a\"\nop post t0 p0 t0 bogus=1\n");
        assert!(from_text(&text).is_err());
    }

    #[test]
    fn lenient_parse_of_clean_text_matches_strict() {
        let trace = sample_trace();
        let text = to_text(&trace);
        let (back, diags) = from_text_lenient(&text).expect("header intact");
        assert_eq!(diags, Vec::new());
        assert_eq!(back.ops(), trace.ops());
        assert_eq!(back.names(), trace.names());
    }

    #[test]
    fn lenient_parse_missing_header_is_still_fatal() {
        assert!(from_text_lenient("garbage\n").is_err());
        assert!(from_text_lenient("").is_err());
    }

    #[test]
    fn lenient_parse_skips_unknown_ops_with_spans() {
        let text = format!(
            "{HEADER}\nthread t0 main initial \"main\"\nop threadinit t0\nop frobnicate t0\nop attachQ t0\n"
        );
        let (trace, diags) = from_text_lenient(&text).expect("recovers");
        assert_eq!(trace.len(), 2, "good ops kept around the bad line");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
        assert_eq!(diags[0].repair, Repair::SkipOp);
        assert_eq!(&text[diags[0].span.0..diags[0].span.1], "op frobnicate t0");
        assert!(diags[0].message.contains("frobnicate"));
    }

    #[test]
    fn lenient_parse_repairs_dangling_join() {
        // bg never logs its exit (truncated writer), but main joins it.
        let text = format!(
            "{HEADER}\nthread t0 main initial \"main\"\nthread t1 app \"bg\"\n\
             op threadinit t0\nop fork t0 t1\nop threadinit t1\nop join t0 t1\n"
        );
        let (trace, diags) = from_text_lenient(&text).expect("recovers");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].repair, Repair::SynthesizeClose);
        assert_eq!(validate(&trace), Ok(()));
        // threadexit t1 synthesized before the join.
        assert!(matches!(trace.ops()[3].kind, OpKind::ThreadExit));
        assert_eq!(trace.ops()[3].thread, ThreadId(1));
        assert_eq!(trace.len(), 5);
    }

    #[test]
    fn lenient_parse_closes_unbalanced_locks_at_eof() {
        let text = format!(
            "{HEADER}\nthread t0 main initial \"main\"\nlock l0 \"m\"\n\
             op threadinit t0\nop acquire t0 l0\nop acquire t0 l0\n"
        );
        let (trace, diags) = from_text_lenient(&text).expect("recovers");
        // Two releases synthesized (re-entrant count 2).
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.repair == Repair::SynthesizeClose));
        assert!(diags.iter().all(|d| d.line == 7 && d.span == (text.len(), text.len())));
        assert_eq!(trace.len(), 5);
        assert_eq!(validate(&trace), Ok(()));
    }

    #[test]
    fn lenient_parse_truncates_infeasible_task_bodies() {
        // Task p0 is begun without ever being posted: drop begin..end.
        let text = format!(
            "{HEADER}\nthread t0 main initial \"main\"\ntask p0 \"A\"\nobject o0 \"o\"\nfield f0 \"C.f\"\n\
             op threadinit t0\nop attachQ t0\nop loopOnQ t0\n\
             op begin t0 p0\nop write t0 o0.f0\nop end t0 p0\nop write t0 o0.f0\n"
        );
        let (trace, diags) = from_text_lenient(&text).expect("recovers");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].repair, Repair::TruncateTask);
        assert_eq!(diags[0].line, 9);
        // init, attachQ, loopOnQ, and the trailing write survive.
        assert_eq!(trace.len(), 4);
        assert_eq!(validate(&trace), Ok(()));
    }

    #[test]
    fn lenient_parse_ends_executing_tasks_at_eof() {
        // Truncated tail: the begin's end was never written.
        let text = format!(
            "{HEADER}\nthread t0 main initial \"main\"\ntask p0 \"A\"\n\
             op threadinit t0\nop attachQ t0\nop loopOnQ t0\nop post t0 p0 t0\nop begin t0 p0\n"
        );
        let (trace, diags) = from_text_lenient(&text).expect("recovers");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].repair, Repair::SynthesizeClose);
        assert!(matches!(trace.ops().last().map(|o| o.kind), Some(OpKind::End { .. })));
        assert_eq!(validate(&trace), Ok(()));
    }

    #[test]
    fn lenient_parse_drops_ops_on_undeclared_threads() {
        let text = format!(
            "{HEADER}\nthread t0 main initial \"main\"\nop threadinit t0\nop threadinit t9\nop read t9 o0.f0\n"
        );
        let (trace, diags) = from_text_lenient(&text).expect("recovers");
        assert_eq!(trace.len(), 1);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.repair == Repair::SkipOp));
        assert_eq!(validate(&trace), Ok(()));
    }

    #[test]
    fn diagnostics_render_position_and_repair() {
        let text = format!("{HEADER}\nop frobnicate t0\n");
        let (_, diags) = from_text_lenient(&text).expect("recovers");
        let rendered = diags[0].to_string();
        assert!(rendered.contains("line 2"), "{rendered}");
        assert!(rendered.contains("skip-op"), "{rendered}");
    }
}
