//! Lowering an [`App`] plus a UI event sequence to a simulator [`Program`].
//!
//! The compiler plays the role of the Android runtime: it decides which
//! system posts (lifecycle transitions, service callbacks, broadcast
//! deliveries) the binder thread performs, where `enable` operations are
//! planted (§4.2 "we have extensively studied … to identify instrumentation
//! sites to emit enable operations"), and how framework constructs lower to
//! the core language:
//!
//! * `AsyncTask.execute()` → inline `onPreExecute`, fork the background
//!   thread; `publishProgress` → post `onProgressUpdate` to main; background
//!   completion → post `onPostExecute` to main (cf. Figure 2, steps 6.4–9);
//! * activity lifecycle → one task per transition (`LAUNCH_ACTIVITY` runs
//!   `onCreate`+`onStart`+`onResume` synchronously, per Figure 2 step 6),
//!   posted by the binder thread on behalf of `ActivityManagerService`,
//!   gated by `enable` operations planted per Figure 8;
//! * UI events → handler tasks posted by the idle main looper itself
//!   (Figure 3, op 19), gated by per-occurrence widget enables.
//!
//! Because every system post is gated on its `enable`, imprecision in the
//! compiler's static schedule can only delay a post, never produce a trace
//! that violates the lifecycle automaton.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use droidracer_sim::{
    Action, Injection, LocRef, LockRef, Program, ProgramBuilder, ProgramError, TaskRef, ThreadRef,
    ThreadSpec,
};
use droidracer_trace::{PostKind, ThreadKind};

use crate::app::{ActivityId, App, AsyncTaskId, CallbackBodies, Stmt, UiEventKind, WidgetId};
use crate::dsl;
use crate::lifecycle::Callback;
use crate::ui::UiEvent;

/// A lifecycle transition task of an activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LifecycleTask {
    /// `LAUNCH_ACTIVITY`: onCreate + onStart + onResume.
    Launch,
    /// onPause.
    Pause,
    /// onStop.
    Stop,
    /// onDestroy.
    Destroy,
    /// onResume after a pause (without stop).
    Resume,
    /// onRestart + onStart + onResume after a stop.
    Relaunch,
}

impl LifecycleTask {
    fn label(self) -> &'static str {
        match self {
            LifecycleTask::Launch => "LAUNCH_ACTIVITY",
            LifecycleTask::Pause => "onPause",
            LifecycleTask::Stop => "onStop",
            LifecycleTask::Destroy => "onDestroy",
            LifecycleTask::Resume => "onResume",
            LifecycleTask::Relaunch => "RELAUNCH_ACTIVITY",
        }
    }

    fn all() -> [LifecycleTask; 6] {
        [
            LifecycleTask::Launch,
            LifecycleTask::Pause,
            LifecycleTask::Stop,
            LifecycleTask::Destroy,
            LifecycleTask::Resume,
            LifecycleTask::Relaunch,
        ]
    }

    /// The transition named `label` in the [`dsl::ACTIVITY`] task table.
    fn from_label(label: &str) -> Option<LifecycleTask> {
        LifecycleTask::all().into_iter().find(|t| t.label() == label)
    }
}

/// One transition task of the activity lowering plan: which callback bodies
/// it runs, which transitions it enables, and whether it is the entry
/// transition (the one that plants widget enables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanTask {
    /// The transition this plan entry lowers.
    pub task: LifecycleTask,
    /// Lifecycle callback bodies the task runs, in order.
    pub runs: Vec<Callback>,
    /// Transitions enabled when the task completes.
    pub enables: Vec<LifecycleTask>,
    /// Whether this is the entry transition.
    pub initial: bool,
}

/// The complete per-activity lowering plan, normally derived from
/// [`dsl::ACTIVITY`]. [`compile_with_activity_plan`] accepts a hand-built
/// plan instead — the hook the DSL-faithfulness differential test uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityPlan {
    /// Plan entries in [`dsl::ACTIVITY`] task-table order.
    pub tasks: Vec<PlanTask>,
}

impl ActivityPlan {
    /// Derives the plan from the declarative [`dsl::ACTIVITY`] automaton.
    ///
    /// # Panics
    ///
    /// Panics if the automaton spec is internally inconsistent or names a
    /// callback/transition the compiler does not know — a defect in the
    /// constant tables, caught by every compile in the test suite.
    pub fn from_dsl() -> Self {
        dsl::ACTIVITY.validate().expect("ACTIVITY automaton is consistent");
        let callback = |name: &str| {
            Callback::all()
                .into_iter()
                .find(|c| c.method_name() == name)
                .unwrap_or_else(|| panic!("unknown activity callback {name}"))
        };
        let tasks = dsl::ACTIVITY
            .tasks
            .iter()
            .map(|t| PlanTask {
                task: LifecycleTask::from_label(t.label)
                    .unwrap_or_else(|| panic!("unknown activity transition {}", t.label)),
                runs: t.runs.iter().map(|r| callback(r)).collect(),
                enables: t
                    .enables
                    .iter()
                    .map(|e| {
                        LifecycleTask::from_label(e)
                            .unwrap_or_else(|| panic!("unknown enable target {e}"))
                    })
                    .collect(),
                initial: t.initial,
            })
            .collect();
        ActivityPlan { tasks }
    }
}

/// The fragment callback bodies spliced into the host transition `task`,
/// per the [`dsl::FRAGMENT`] `nested_in` table, in automaton order.
fn nested_fragment_bodies(
    app: &App,
    f: crate::app::FragmentId,
    task: LifecycleTask,
) -> Vec<&[Stmt]> {
    let def = &app.fragments[f.0];
    let body = |name: &str| -> &[Stmt] {
        match name {
            "onAttach" => &def.attach,
            "onCreateView" => &def.create_view,
            "onDestroyView" => &def.destroy_view,
            "onDetach" => &def.detach,
            other => panic!("unknown fragment callback {other}"),
        }
    };
    dsl::FRAGMENT
        .tasks
        .iter()
        .filter(|t| t.nested_in.and_then(LifecycleTask::from_label) == Some(task))
        .flat_map(|t| t.runs.iter().map(|r| body(r)))
        .collect()
}

/// The callback body of `cb` for `c`.
fn callback_body(cb: &CallbackBodies, c: Callback) -> &[Stmt] {
    match c {
        Callback::Create => &cb.create,
        Callback::Start => &cb.start,
        Callback::Resume => &cb.resume,
        Callback::Pause => &cb.pause,
        Callback::Stop => &cb.stop,
        Callback::Restart => &cb.restart,
        Callback::Destroy => &cb.destroy,
    }
}

/// A compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The app declares no activities.
    NoMainActivity,
    /// A widget event fired while its activity was not in the foreground.
    EventNotAvailable {
        /// Description of the offending event.
        event: String,
    },
    /// A widget id does not exist in this app (e.g. an event sequence
    /// loaded from a stale replay database).
    UnknownWidget {
        /// The out-of-range widget-table index.
        index: usize,
    },
    /// BACK or rotate fired after the last activity was destroyed.
    EventAfterExit,
    /// `publishProgress` used outside a `doInBackground` body.
    PublishProgressOutsideBackground,
    /// Activity-start recursion exceeded the depth limit.
    RecursionLimit,
    /// The lowered program failed the simulator's checks (a compiler bug).
    Lowering(ProgramError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NoMainActivity => write!(f, "app has no activities"),
            CompileError::EventNotAvailable { event } => {
                write!(f, "event {event} is not available on the current screen")
            }
            CompileError::UnknownWidget { index } => {
                write!(f, "widget #{index} does not exist in this app")
            }
            CompileError::EventAfterExit => write!(f, "event fired after the app exited"),
            CompileError::PublishProgressOutsideBackground => {
                write!(f, "publishProgress outside a doInBackground body")
            }
            CompileError::RecursionLimit => write!(f, "activity-start recursion limit exceeded"),
            CompileError::Lowering(e) => write!(f, "lowering produced an invalid program: {e}"),
        }
    }
}

impl Error for CompileError {}

impl From<ProgramError> for CompileError {
    fn from(e: ProgramError) -> Self {
        CompileError::Lowering(e)
    }
}

/// The result of compiling an [`App`] with a concrete event sequence.
#[derive(Debug, Clone)]
pub struct CompiledApp {
    /// The runnable simulator program.
    pub program: Program,
    /// The main (UI) thread.
    pub main: ThreadRef,
    /// The binder thread relaying `ActivityManagerService` decisions.
    pub binder: ThreadRef,
    /// Lifecycle task definitions per activity (for tests and debugging).
    pub lifecycle_tasks: HashMap<(ActivityId, LifecycleTask), TaskRef>,
    /// Handler task per widget event.
    pub widget_tasks: HashMap<(WidgetId, UiEventKind), TaskRef>,
}

struct Refs {
    main: ThreadRef,
    binder: ThreadRef,
    workers: Vec<ThreadRef>,
    handler_threads: Vec<ThreadRef>,
    at_threads: Vec<ThreadRef>,
    /// One timer thread per distinct `ScheduleTimer` statement shape.
    timers: HashMap<(usize, u64, u64, u32), ThreadRef>,
    vars: Vec<LocRef>,
    mutexes: Vec<LockRef>,
    lifecycle: HashMap<(ActivityId, LifecycleTask), TaskRef>,
    widget_handlers: HashMap<(WidgetId, UiEventKind), TaskRef>,
    service_create: Vec<TaskRef>,
    service_start: Vec<TaskRef>,
    service_destroy: Vec<TaskRef>,
    /// One serial-executor queue thread per IntentService.
    intent_queues: Vec<ThreadRef>,
    /// The per-IntentService `onHandleIntent` task.
    intent_handle: Vec<TaskRef>,
    receive: Vec<TaskRef>,
    handlers: Vec<TaskRef>,
    at_progress: Vec<TaskRef>,
    at_post: Vec<TaskRef>,
}

/// Compiles `app` with the given UI event sequence into a runnable program.
///
/// # Errors
///
/// Returns a [`CompileError`] when the app has no launcher activity, the
/// event sequence is infeasible on the abstract UI, or statements are used
/// out of context.
pub fn compile(app: &App, events: &[UiEvent]) -> Result<CompiledApp, CompileError> {
    compile_with_activity_plan(app, events, &ActivityPlan::from_dsl())
}

/// Compiles `app` with an explicit activity lowering plan instead of the
/// one derived from [`dsl::ACTIVITY`] — the differential-testing hook that
/// proves the DSL-derived plan reproduces the legacy hand-coded lowering.
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_with_activity_plan(
    app: &App,
    events: &[UiEvent],
    plan: &ActivityPlan,
) -> Result<CompiledApp, CompileError> {
    let main_activity = app.main_activity().ok_or(CompileError::NoMainActivity)?;
    let mut p = ProgramBuilder::new();

    // Phase 0: allocate every thread, task, lock and location.
    let refs = allocate(app, &mut p);

    // Phase 1: walk the event sequence, producing the binder's post
    // schedule, the injection list and per-widget-event firing counts.
    let mut walk = Walk {
        app,
        refs: &refs,
        binder_posts: Vec::new(),
        injections: Vec::new(),
        stack: vec![main_activity],
        widget_counts: HashMap::new(),
        started_services: vec![false; app.services.len()],
    };
    walk.binder_posts.push((
        refs.lifecycle[&(main_activity, LifecycleTask::Launch)],
        refs.main,
    ));
    walk.process_activity_resume_path(main_activity, 0)?;
    for event in events {
        walk.process_event(*event)?;
    }
    let Walk {
        binder_posts,
        injections,
        widget_counts,
        ..
    } = walk;

    // Phase 2: compile all bodies. The per-activity transition tasks are
    // assembled from the lowering plan (derived from the DSL automaton).
    let mut cc = BodyCompiler { app, refs: &refs };
    for (a_idx, act) in app.activities.iter().enumerate() {
        let a = ActivityId(a_idx);
        let cb = &act.callbacks;
        // Per-occurrence enables for the initially enabled widgets of this
        // activity, planted at the entry transition (see module docs).
        let mut widget_enables = Vec::new();
        for &w in &act.widgets {
            if !app.widgets[w.0].initially_enabled {
                continue;
            }
            for (kind, _) in &app.widgets[w.0].handlers {
                let count = widget_counts.get(&(w, *kind)).copied().unwrap_or(0);
                for _ in 0..count {
                    widget_enables.push(Action::Enable(refs.widget_handlers[&(w, *kind)]));
                }
            }
        }
        for pt in &plan.tasks {
            let mut body = Vec::new();
            for &c in &pt.runs {
                cc.lower_into(callback_body(cb, c), None, &mut body)?;
            }
            // Fragment callbacks nested in this transition (per the
            // FRAGMENT automaton's `nested_in` table) run after the host
            // callbacks, before the transition's enables.
            for f in app.fragments_of(a) {
                for frag_body in nested_fragment_bodies(app, f, pt.task) {
                    cc.lower_into(frag_body, None, &mut body)?;
                }
            }
            for &en in &pt.enables {
                body.push(Action::Enable(refs.lifecycle[&(a, en)]));
            }
            if pt.initial {
                body.extend(widget_enables.iter().cloned());
            }
            p.set_task_body(refs.lifecycle[&(a, pt.task)], body);
        }
    }
    for (w_idx, widget) in app.widgets.iter().enumerate() {
        for (kind, body) in &widget.handlers {
            let task = refs.widget_handlers[&(WidgetId(w_idx), *kind)];
            p.set_task_body(task, cc.stmts(body, None)?);
        }
    }
    // Services lower one task per SERVICE-automaton transition (onCreate /
    // onStartCommand / onDestroy are separate posts, unlike the merged
    // legacy lowering).
    for (s_idx, service) in app.services.iter().enumerate() {
        p.set_task_body(refs.service_create[s_idx], cc.stmts(&service.create, None)?);
        p.set_task_body(refs.service_start[s_idx], cc.stmts(&service.start_command, None)?);
        p.set_task_body(refs.service_destroy[s_idx], cc.stmts(&service.destroy, None)?);
    }
    // IntentServices: `onHandleIntent` bodies run on the component's own
    // serial-executor queue thread.
    for (s_idx, svc) in app.intent_services.iter().enumerate() {
        p.set_task_body(refs.intent_handle[s_idx], cc.stmts(&svc.handle_intent, None)?);
    }
    for (r_idx, receiver) in app.receivers.iter().enumerate() {
        p.set_task_body(refs.receive[r_idx], cc.stmts(&receiver.receive, None)?);
    }
    for (h_idx, handler) in app.handlers.iter().enumerate() {
        p.set_task_body(refs.handlers[h_idx], cc.stmts(&handler.body, None)?);
    }
    for (t_idx, task) in app.async_tasks.iter().enumerate() {
        p.set_task_body(
            refs.at_progress[t_idx],
            cc.stmts(&task.progress_update, None)?,
        );
        p.set_task_body(refs.at_post[t_idx], cc.stmts(&task.post_execute, None)?);
        let mut bg = cc.stmts(&task.background, Some(AsyncTaskId(t_idx)))?;
        bg.push(Action::Post {
            task: refs.at_post[t_idx],
            target: refs.main,
            kind: PostKind::Plain,
        });
        p.set_thread_body(refs.at_threads[t_idx], bg);
    }
    for (w_idx, worker) in app.workers.iter().enumerate() {
        p.set_thread_body(refs.workers[w_idx], cc.stmts(&worker.body, None)?);
    }

    // Timer threads: each posts its runnable `repetitions` times with
    // increasing virtual-time delays.
    for (&(h, delay, period, reps), &thread) in &refs.timers {
        let mut body = Vec::new();
        for k in 0..reps {
            body.push(Action::Post {
                task: refs.handlers[h],
                target: refs.main,
                kind: PostKind::Delayed(delay + u64::from(k) * period),
            });
        }
        p.set_thread_body(thread, body);
    }

    // Phase 3: assemble the main body, binder body and injections.
    p.set_thread_body(
        refs.main,
        vec![Action::Enable(
            refs.lifecycle[&(main_activity, LifecycleTask::Launch)],
        )],
    );
    let binder_body = binder_posts
        .iter()
        .map(|&(task, target)| Action::Post {
            task,
            target,
            kind: PostKind::Plain,
        })
        .collect();
    p.set_thread_body(refs.binder, binder_body);
    for task in injections {
        p.inject(Injection {
            poster: refs.main,
            task,
            target: refs.main,
            kind: PostKind::Plain,
        });
    }

    let program = p.finish()?;
    Ok(CompiledApp {
        program,
        main: refs.main,
        binder: refs.binder,
        lifecycle_tasks: refs.lifecycle,
        widget_tasks: refs.widget_handlers,
    })
}

fn allocate(app: &App, p: &mut ProgramBuilder) -> Refs {
    let main = p.thread(
        ThreadSpec::app("main")
            .kind(ThreadKind::Main)
            .initial()
            .with_queue(),
    );
    let binder = p.thread(ThreadSpec::app("binder").kind(ThreadKind::Binder).initial());
    let workers = app
        .workers
        .iter()
        .map(|w| p.thread(ThreadSpec::app(w.name.clone())))
        .collect();
    let handler_threads = app
        .handler_threads
        .iter()
        .map(|name| p.thread(ThreadSpec::app(name.clone()).with_queue()))
        .collect();
    let at_threads = app
        .async_tasks
        .iter()
        .map(|t| p.thread(ThreadSpec::app(format!("{}-bg", t.name))))
        .collect();
    // One serial-executor looper per IntentService: the component's own
    // FIFO queue, distinct from the main Looper (dsl::INTENT_SERVICE).
    let intent_queues = app
        .intent_services
        .iter()
        .map(|s| p.thread(ThreadSpec::app(format!("{}-queue", s.name)).initial().with_queue()))
        .collect();
    let mut timers = HashMap::new();
    for (i, spec) in collect_timers(app).into_iter().enumerate() {
        timers
            .entry(spec)
            .or_insert_with(|| p.thread(ThreadSpec::app(format!("timer-{i}"))));
    }
    let vars = app
        .vars
        .iter()
        .map(|(o, f)| p.loc(o.clone(), f.clone()))
        .collect();
    let mutexes = app.mutexes.iter().map(|m| p.lock(m.clone())).collect();
    let mut lifecycle = HashMap::new();
    for (a_idx, act) in app.activities.iter().enumerate() {
        for kind in LifecycleTask::all() {
            let name = format!("{}.{}", act.name, kind.label());
            let event = format!("lifecycle:{name}");
            let task = p.event_task(name, event, Vec::new());
            p.require_enable(task);
            lifecycle.insert((ActivityId(a_idx), kind), task);
        }
    }
    let mut widget_handlers = HashMap::new();
    for (w_idx, widget) in app.widgets.iter().enumerate() {
        for (kind, _) in &widget.handlers {
            let act_name = &app.activities[widget.activity.0].name;
            let name = format!("{}.{}.on{:?}", act_name, widget.name, kind);
            let event = format!("{}:{}.{}", kind.label(), act_name, widget.name);
            let task = p.event_task(name, event, Vec::new());
            p.require_enable(task);
            widget_handlers.insert((WidgetId(w_idx), *kind), task);
        }
    }
    // Service transition tasks, one per SERVICE-automaton table entry, all
    // enable-gated so the system post can never precede the app's
    // startService/stopService call.
    let mut service_create = Vec::new();
    let mut service_start = Vec::new();
    let mut service_destroy = Vec::new();
    for s in &app.services {
        for spec in dsl::SERVICE.tasks {
            let task = p.task(format!("{}.{}", s.name, spec.label), Vec::new());
            p.require_enable(task);
            match spec.label {
                "onCreate" => service_create.push(task),
                "onStartCommand" => service_start.push(task),
                "onDestroy" => service_destroy.push(task),
                other => unreachable!("unknown service transition {other}"),
            }
        }
    }
    let intent_handle = app
        .intent_services
        .iter()
        .map(|s| {
            let label = dsl::INTENT_SERVICE.entry_task().expect("entry task").label;
            let t = p.task(format!("{}.{}", s.name, label), Vec::new());
            p.require_enable(t);
            t
        })
        .collect();
    let receive = app
        .receivers
        .iter()
        .map(|r| {
            let t = p.task(format!("{}.onReceive", r.name), Vec::new());
            p.require_enable(t);
            t
        })
        .collect();
    let handlers = app
        .handlers
        .iter()
        .map(|h| p.task(h.name.clone(), Vec::new()))
        .collect();
    let at_progress = app
        .async_tasks
        .iter()
        .map(|t| p.task(format!("{}.onProgressUpdate", t.name), Vec::new()))
        .collect();
    let at_post = app
        .async_tasks
        .iter()
        .map(|t| p.task(format!("{}.onPostExecute", t.name), Vec::new()))
        .collect();
    Refs {
        main,
        binder,
        workers,
        handler_threads,
        at_threads,
        timers,
        vars,
        mutexes,
        lifecycle,
        widget_handlers,
        service_create,
        service_start,
        service_destroy,
        intent_queues,
        intent_handle,
        receive,
        handlers,
        at_progress,
        at_post,
    }
}

/// Every `ScheduleTimer` statement shape in the app, in a stable traversal
/// order (duplicated shapes share one timer thread definition; each firing
/// site forks its own instance).
fn collect_timers(app: &App) -> Vec<(usize, u64, u64, u32)> {
    fn scan(stmts: &[Stmt], out: &mut Vec<(usize, u64, u64, u32)>) {
        for stmt in stmts {
            match stmt {
                Stmt::ScheduleTimer {
                    handler,
                    delay,
                    period,
                    repetitions,
                } => out.push((handler.0, *delay, *period, *repetitions)),
                Stmt::Synchronized(_, inner) => scan(inner, out),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    for a in &app.activities {
        let c = &a.callbacks;
        for body in [&c.create, &c.start, &c.resume, &c.pause, &c.stop, &c.restart, &c.destroy] {
            scan(body, &mut out);
        }
    }
    for w in &app.widgets {
        for (_, body) in &w.handlers {
            scan(body, &mut out);
        }
    }
    for t in &app.async_tasks {
        for body in [&t.pre_execute, &t.background, &t.progress_update, &t.post_execute] {
            scan(body, &mut out);
        }
    }
    for svc in &app.services {
        for body in [&svc.create, &svc.start_command, &svc.destroy] {
            scan(body, &mut out);
        }
    }
    for svc in &app.intent_services {
        scan(&svc.handle_intent, &mut out);
    }
    for f in &app.fragments {
        for body in [&f.attach, &f.create_view, &f.destroy_view, &f.detach] {
            scan(body, &mut out);
        }
    }
    for r in &app.receivers {
        scan(&r.receive, &mut out);
    }
    for w in &app.workers {
        scan(&w.body, &mut out);
    }
    for h in &app.handlers {
        scan(&h.body, &mut out);
    }
    out
}

const MAX_WALK_DEPTH: usize = 24;

/// Phase-1 walker: simulates the event sequence abstractly to schedule the
/// binder's system posts and the looper's event injections.
struct Walk<'a> {
    app: &'a App,
    refs: &'a Refs,
    /// System posts the binder performs, in order, with their target
    /// looper (main for activity/service/receiver transitions, the
    /// component's serial-executor queue for IntentService deliveries).
    binder_posts: Vec<(TaskRef, ThreadRef)>,
    injections: Vec<TaskRef>,
    stack: Vec<ActivityId>,
    widget_counts: HashMap<(WidgetId, UiEventKind), usize>,
    started_services: Vec<bool>,
}

impl Walk<'_> {
    fn process_event(&mut self, event: UiEvent) -> Result<(), CompileError> {
        match event {
            UiEvent::Widget(w, kind) => {
                if w.0 >= self.app.widgets.len() {
                    return Err(CompileError::UnknownWidget { index: w.0 });
                }
                let top = self.stack.last().copied().ok_or(CompileError::EventAfterExit)?;
                if self.app.widget_activity(w) != top
                    || !self.app.widget_events(w).contains(&kind)
                {
                    return Err(CompileError::EventNotAvailable {
                        event: UiEvent::Widget(w, kind).describe(self.app),
                    });
                }
                *self.widget_counts.entry((w, kind)).or_insert(0) += 1;
                // invariant: allocate() created a handler task for every
                // (widget, kind) pair with a handler, and the membership
                // check above guarantees this pair has one.
                self.injections.push(self.refs.widget_handlers[&(w, kind)]);
                let body = self.app.widgets[w.0]
                    .handlers
                    .iter()
                    .find(|(k, _)| *k == kind)
                    .map(|(_, b)| b.clone())
                    .unwrap_or_default();
                self.process_stmts(&body, 0)?;
            }
            UiEvent::Back => {
                let a = self.stack.pop().ok_or(CompileError::EventAfterExit)?;
                self.teardown(a, 0)?;
                if let Some(&below) = self.stack.last() {
                    self.post_lifecycle(below, LifecycleTask::Relaunch);
                    self.process_activity_resume_path(below, 0)?;
                }
            }
            UiEvent::Rotate => {
                let a = *self.stack.last().ok_or(CompileError::EventAfterExit)?;
                self.teardown(a, 0)?;
                self.post_lifecycle(a, LifecycleTask::Launch);
                self.process_activity_resume_path(a, 0)?;
            }
        }
        Ok(())
    }

    fn post_lifecycle(&mut self, a: ActivityId, task: LifecycleTask) {
        self.binder_posts
            .push((self.refs.lifecycle[&(a, task)], self.refs.main));
    }

    /// Posts PAUSE / STOP / DESTROY of `a` and walks the callback bodies
    /// (including the fragment teardown spliced into the destroy
    /// transition).
    fn teardown(&mut self, a: ActivityId, depth: usize) -> Result<(), CompileError> {
        let cb = self.app.activities[a.0].callbacks.clone();
        self.post_lifecycle(a, LifecycleTask::Pause);
        self.process_stmts(&cb.pause, depth)?;
        self.post_lifecycle(a, LifecycleTask::Stop);
        self.process_stmts(&cb.stop, depth)?;
        self.post_lifecycle(a, LifecycleTask::Destroy);
        self.process_stmts(&cb.destroy, depth)?;
        self.process_fragments(a, LifecycleTask::Destroy, depth)?;
        Ok(())
    }

    /// Walks onCreate+onStart+onResume (consequences of a launch/relaunch),
    /// then the fragment callbacks nested in the LAUNCH transition.
    fn process_activity_resume_path(&mut self, a: ActivityId, depth: usize) -> Result<(), CompileError> {
        let cb = self.app.activities[a.0].callbacks.clone();
        self.process_stmts(&cb.create, depth)?;
        self.process_stmts(&cb.start, depth)?;
        self.process_stmts(&cb.resume, depth)?;
        self.process_fragments(a, LifecycleTask::Launch, depth)?;
        Ok(())
    }

    /// Walks the fragment callback bodies nested in the given host
    /// transition.
    fn process_fragments(
        &mut self,
        a: ActivityId,
        task: LifecycleTask,
        depth: usize,
    ) -> Result<(), CompileError> {
        for f in self.app.fragments_of(a) {
            let bodies: Vec<Vec<Stmt>> = nested_fragment_bodies(self.app, f, task)
                .into_iter()
                .map(<[Stmt]>::to_vec)
                .collect();
            for body in bodies {
                self.process_stmts(&body, depth)?;
            }
        }
        Ok(())
    }

    fn process_stmts(&mut self, stmts: &[Stmt], depth: usize) -> Result<(), CompileError> {
        if depth > MAX_WALK_DEPTH {
            return Err(CompileError::RecursionLimit);
        }
        for stmt in stmts {
            match stmt {
                Stmt::Synchronized(_, inner) => self.process_stmts(inner, depth + 1)?,
                Stmt::StartActivity(b) => {
                    let cur = self.stack.last().copied();
                    if let Some(cur) = cur {
                        self.post_lifecycle(cur, LifecycleTask::Pause);
                        let pause = self.app.activities[cur.0].callbacks.pause.clone();
                        self.process_stmts(&pause, depth + 1)?;
                    }
                    self.post_lifecycle(*b, LifecycleTask::Launch);
                    self.stack.push(*b);
                    self.process_activity_resume_path(*b, depth + 1)?;
                    if let Some(cur) = cur {
                        self.post_lifecycle(cur, LifecycleTask::Stop);
                        let stop = self.app.activities[cur.0].callbacks.stop.clone();
                        self.process_stmts(&stop, depth + 1)?;
                    }
                }
                Stmt::FinishActivity => {
                    if let Some(a) = self.stack.pop() {
                        self.teardown(a, depth + 1)?;
                        if let Some(&below) = self.stack.last() {
                            self.post_lifecycle(below, LifecycleTask::Relaunch);
                            self.process_activity_resume_path(below, depth + 1)?;
                        }
                    }
                }
                Stmt::StartService(s) => {
                    // First start of a lifetime runs onCreate, then every
                    // start delivers one onStartCommand; re-deliveries are
                    // FIFO-ordered by the shared binder→main queue (the
                    // SERVICE automaton's re-delivery guarantee).
                    let def = self.app.services[s.0].clone();
                    if !self.started_services[s.0] {
                        self.started_services[s.0] = true;
                        self.binder_posts
                            .push((self.refs.service_create[s.0], self.refs.main));
                        self.process_stmts(&def.create, depth + 1)?;
                    }
                    self.binder_posts
                        .push((self.refs.service_start[s.0], self.refs.main));
                    self.process_stmts(&def.start_command, depth + 1)?;
                }
                Stmt::StopService(s) => {
                    self.binder_posts
                        .push((self.refs.service_destroy[s.0], self.refs.main));
                    self.started_services[s.0] = false;
                    let destroy = self.app.services[s.0].destroy.clone();
                    self.process_stmts(&destroy, depth + 1)?;
                }
                Stmt::StartIntentService(s) => {
                    // Delivery goes to the component's serial executor, not
                    // the main Looper.
                    self.binder_posts
                        .push((self.refs.intent_handle[s.0], self.refs.intent_queues[s.0]));
                    let body = self.app.intent_services[s.0].handle_intent.clone();
                    self.process_stmts(&body, depth + 1)?;
                }
                Stmt::SendBroadcast(r) => {
                    self.binder_posts
                        .push((self.refs.receive[r.0], self.refs.main));
                    let receive = self.app.receivers[r.0].receive.clone();
                    self.process_stmts(&receive, depth + 1)?;
                }
                Stmt::ExecuteAsyncTask(at) => {
                    let def = self.app.async_tasks[at.0].clone();
                    self.process_stmts(&def.pre_execute, depth + 1)?;
                    // publishProgress occurrences trigger onProgressUpdate
                    // on main; then onPostExecute runs on main.
                    for bg in &def.background {
                        if matches!(bg, Stmt::PublishProgress) {
                            self.process_stmts(&def.progress_update, depth + 1)?;
                        }
                    }
                    self.process_stmts(&def.post_execute, depth + 1)?;
                }
                Stmt::Post { handler, .. }
                | Stmt::PostToHandlerThread { handler, .. }
                | Stmt::AddIdleHandler(handler) => {
                    let body = self.app.handlers[handler.0].body.clone();
                    self.process_stmts(&body, depth + 1)?;
                }
                Stmt::ScheduleTimer {
                    handler,
                    repetitions,
                    ..
                } => {
                    let body = self.app.handlers[handler.0].body.clone();
                    for _ in 0..*repetitions {
                        self.process_stmts(&body, depth + 1)?;
                    }
                }
                Stmt::ForkWorker(w) => {
                    let body = self.app.workers[w.0].body.clone();
                    self.process_stmts(&body, depth + 1)?;
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Phase-2 statement lowering.
struct BodyCompiler<'a> {
    app: &'a App,
    refs: &'a Refs,
}

impl BodyCompiler<'_> {
    fn stmts(
        &mut self,
        stmts: &[Stmt],
        bg_ctx: Option<AsyncTaskId>,
    ) -> Result<Vec<Action>, CompileError> {
        let mut out = Vec::new();
        self.lower_into(stmts, bg_ctx, &mut out)?;
        Ok(out)
    }

    fn lower_into(
        &mut self,
        stmts: &[Stmt],
        bg_ctx: Option<AsyncTaskId>,
        out: &mut Vec<Action>,
    ) -> Result<(), CompileError> {
        for stmt in stmts {
            match stmt {
                Stmt::Read(v) => out.push(Action::Read(self.refs.vars[v.0])),
                Stmt::Write(v) => out.push(Action::Write(self.refs.vars[v.0])),
                Stmt::Synchronized(m, inner) => {
                    out.push(Action::Acquire(self.refs.mutexes[m.0]));
                    self.lower_into(inner, bg_ctx, out)?;
                    out.push(Action::Release(self.refs.mutexes[m.0]));
                }
                Stmt::ExecuteAsyncTask(at) => {
                    let pre = self.app.async_tasks[at.0].pre_execute.clone();
                    self.lower_into(&pre, bg_ctx, out)?;
                    out.push(Action::Fork(self.refs.at_threads[at.0]));
                }
                Stmt::PublishProgress => {
                    let Some(at) = bg_ctx else {
                        return Err(CompileError::PublishProgressOutsideBackground);
                    };
                    out.push(Action::Post {
                        task: self.refs.at_progress[at.0],
                        target: self.refs.main,
                        kind: PostKind::Plain,
                    });
                }
                Stmt::Post {
                    handler,
                    delay,
                    front,
                } => {
                    let kind = match (delay, front) {
                        (Some(d), _) => PostKind::Delayed(*d),
                        (None, true) => PostKind::Front,
                        (None, false) => PostKind::Plain,
                    };
                    out.push(Action::Post {
                        task: self.refs.handlers[handler.0],
                        target: self.refs.main,
                        kind,
                    });
                }
                Stmt::PostToHandlerThread { handler, thread } => {
                    out.push(Action::Post {
                        task: self.refs.handlers[handler.0],
                        target: self.refs.handler_threads[thread.0],
                        kind: PostKind::Plain,
                    });
                }
                Stmt::CancelPost(h) => out.push(Action::Cancel(self.refs.handlers[h.0])),
                Stmt::ForkWorker(w) => out.push(Action::Fork(self.refs.workers[w.0])),
                Stmt::JoinWorker(w) => out.push(Action::Join(self.refs.workers[w.0])),
                Stmt::StartHandlerThread(ht) => {
                    out.push(Action::Fork(self.refs.handler_threads[ht.0]))
                }
                Stmt::StartService(s) => {
                    // Enable both the (possible) onCreate delivery and the
                    // onStartCommand delivery. Surplus enables are inert: the
                    // walker only posts onCreate for the first start of a
                    // service lifetime, and an un-posted enable never blocks
                    // completion.
                    out.push(Action::Enable(self.refs.service_create[s.0]));
                    out.push(Action::Enable(self.refs.service_start[s.0]));
                }
                Stmt::StopService(s) => {
                    out.push(Action::Enable(self.refs.service_destroy[s.0]))
                }
                Stmt::StartIntentService(s) => {
                    out.push(Action::Enable(self.refs.intent_handle[s.0]))
                }
                Stmt::SendBroadcast(r) => {
                    // Manifest-declared receivers are implicitly registered:
                    // the broadcast itself enables the delivery. Dynamic
                    // receivers were enabled by RegisterReceiver.
                    if !self.app.receivers[r.0].dynamic {
                        out.push(Action::Enable(self.refs.receive[r.0]));
                    }
                }
                Stmt::StartActivity(b) => out.push(Action::Enable(
                    self.refs.lifecycle[&(*b, LifecycleTask::Launch)],
                )),
                Stmt::FinishActivity => {}
                Stmt::EnableWidget(w, kind) => {
                    out.push(Action::Enable(self.refs.widget_handlers[&(*w, *kind)]))
                }
                Stmt::AddIdleHandler(h) => out.push(Action::AddIdle {
                    task: self.refs.handlers[h.0],
                    target: self.refs.main,
                }),
                Stmt::ScheduleTimer {
                    handler,
                    delay,
                    period,
                    repetitions,
                } => {
                    let timer = self.refs.timers[&(handler.0, *delay, *period, *repetitions)];
                    out.push(Action::Fork(timer));
                }
                Stmt::RegisterReceiver(r) => {
                    out.push(Action::Enable(self.refs.receive[r.0]))
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;
    use droidracer_sim::{run, RandomScheduler, RoundRobinScheduler, SimConfig};
    use droidracer_trace::{validate, OpKind};

    /// The paper's §2 music player, slightly simplified.
    fn music_player() -> (App, WidgetId) {
        let mut b = AppBuilder::new("MusicPlayer");
        let act = b.activity("DwFileAct");
        let other = b.activity("MusicPlayActivity");
        let flag = b.var("DwFileAct-obj", "isActivityDestroyed");
        let dl = b.async_task(
            "FileDwTask",
            vec![],                              // onPreExecute: show dialog
            vec![Stmt::Read(flag), Stmt::PublishProgress],
            vec![],                              // onProgressUpdate
            vec![Stmt::Read(flag)],              // onPostExecute: enable PLAY
        );
        b.on_create(act, vec![Stmt::Write(flag)]);
        b.on_resume(act, vec![Stmt::ExecuteAsyncTask(dl)]);
        b.on_destroy(act, vec![Stmt::Write(flag)]);
        let play = b.button(act, "playBtn", vec![Stmt::StartActivity(other)]);
        (b.finish(), play)
    }

    #[test]
    fn music_player_compiles_and_runs() {
        let (app, play) = music_player();
        let compiled =
            compile(&app, &[UiEvent::Widget(play, UiEventKind::Click)]).expect("compiles");
        for seed in 0..25 {
            let result = run(
                &compiled.program,
                &mut RandomScheduler::new(seed),
                &SimConfig::default(),
            )
            .expect("runs");
            assert_eq!(validate(&result.trace), Ok(()), "seed {seed}:\n{}", result.trace);
            assert!(result.completed, "seed {seed}:\n{}", result.trace);
        }
    }

    #[test]
    fn back_button_posts_lifecycle_teardown() {
        let (app, _) = music_player();
        let compiled = compile(&app, &[UiEvent::Back]).expect("compiles");
        let result = run(
            &compiled.program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("runs");
        assert!(result.completed, "trace:\n{}", result.trace);
        let names = result.trace.names();
        let begun: Vec<String> = result
            .trace
            .ops()
            .iter()
            .filter_map(|op| match op.kind {
                OpKind::Begin { task } => Some(names.task_name(task)),
                _ => None,
            })
            .collect();
        assert!(begun.iter().any(|n| n.contains("LAUNCH_ACTIVITY")), "{begun:?}");
        assert!(begun.iter().any(|n| n.contains("onPause")), "{begun:?}");
        assert!(begun.iter().any(|n| n.contains("onStop")), "{begun:?}");
        assert!(begun.iter().any(|n| n.contains("onDestroy")), "{begun:?}");
    }

    #[test]
    fn lifecycle_tasks_run_in_automaton_order() {
        let (app, _) = music_player();
        let compiled = compile(&app, &[UiEvent::Back]).expect("compiles");
        for seed in 0..25 {
            let result = run(
                &compiled.program,
                &mut RandomScheduler::new(seed),
                &SimConfig::default(),
            )
            .expect("runs");
            let names = result.trace.names();
            let begun: Vec<String> = result
                .trace
                .ops()
                .iter()
                .filter_map(|op| match op.kind {
                    OpKind::Begin { task } => Some(names.task_name(task)),
                    _ => None,
                })
                .collect();
            let pos = |needle: &str| begun.iter().position(|n| n.contains(needle));
            let (l, p, s, d) = (
                pos("LAUNCH_ACTIVITY"),
                pos("DwFileAct.onPause"),
                pos("DwFileAct.onStop"),
                pos("DwFileAct.onDestroy"),
            );
            if let (Some(l), Some(p), Some(s), Some(d)) = (l, p, s, d) {
                assert!(l < p && p < s && s < d, "seed {seed}: {begun:?}");
            }
        }
    }

    #[test]
    fn rotation_relaunches_the_activity() {
        let (app, _) = music_player();
        let compiled = compile(&app, &[UiEvent::Rotate]).expect("compiles");
        let result = run(
            &compiled.program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("runs");
        assert!(result.completed, "trace:\n{}", result.trace);
        let names = result.trace.names();
        let launches = result
            .trace
            .ops()
            .iter()
            .filter(|op| match op.kind {
                OpKind::Begin { task } => names.task_name(task).contains("LAUNCH_ACTIVITY"),
                _ => false,
            })
            .count();
        assert_eq!(launches, 2, "destroy + relaunch");
    }

    #[test]
    fn async_task_posts_progress_and_completion_to_main() {
        let (app, _) = music_player();
        let compiled = compile(&app, &[]).expect("compiles");
        let result = run(
            &compiled.program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("runs");
        assert!(result.completed);
        let names = result.trace.names();
        let posted: Vec<String> = result
            .trace
            .ops()
            .iter()
            .filter_map(|op| match op.kind {
                OpKind::Post { task, .. } => Some(names.task_name(task)),
                _ => None,
            })
            .collect();
        assert!(posted.iter().any(|n| n.contains("onProgressUpdate")), "{posted:?}");
        assert!(posted.iter().any(|n| n.contains("onPostExecute")), "{posted:?}");
    }

    #[test]
    fn publish_progress_outside_background_is_rejected() {
        let mut b = AppBuilder::new("Bad");
        let a = b.activity("Main");
        let at = b.async_task("T", vec![], vec![], vec![], vec![]);
        let _ = at;
        b.on_create(a, vec![Stmt::PublishProgress]);
        let app = b.finish();
        assert!(matches!(
            compile(&app, &[]),
            Err(CompileError::PublishProgressOutsideBackground)
        ));
    }

    #[test]
    fn event_on_wrong_screen_is_rejected() {
        let (app, play) = music_player();
        // After BACK the app exited; the click is not available.
        let err = compile(
            &app,
            &[UiEvent::Back, UiEvent::Widget(play, UiEventKind::Click)],
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::EventAfterExit));
    }

    #[test]
    fn stale_widget_id_is_rejected_not_panicking() {
        let (app, _) = music_player();
        let stale = WidgetId::from_index(999);
        let err = compile(&app, &[UiEvent::Widget(stale, UiEventKind::Click)]).unwrap_err();
        assert!(matches!(err, CompileError::UnknownWidget { index: 999 }));
    }

    #[test]
    fn recursive_activity_start_hits_depth_limit() {
        let mut b = AppBuilder::new("Loop");
        let a = b.activity("A");
        b.on_create(a, vec![Stmt::StartActivity(a)]);
        let app = b.finish();
        assert!(matches!(compile(&app, &[]), Err(CompileError::RecursionLimit)));
    }

    #[test]
    fn services_and_broadcasts_run_on_main() {
        let mut b = AppBuilder::new("Svc");
        let a = b.activity("Main");
        let v = b.var("svc", "Svc.state");
        let svc = b.service("SyncService", vec![Stmt::Write(v)], vec![Stmt::Read(v)], vec![]);
        let rec = b.receiver("NetReceiver", vec![Stmt::Read(v)]);
        b.on_create(
            a,
            vec![Stmt::StartService(svc), Stmt::SendBroadcast(rec)],
        );
        let app = b.finish();
        let compiled = compile(&app, &[]).expect("compiles");
        let result = run(
            &compiled.program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("runs");
        assert!(result.completed, "trace:\n{}", result.trace);
        let names = result.trace.names();
        let begun: Vec<String> = result
            .trace
            .ops()
            .iter()
            .filter_map(|op| match op.kind {
                OpKind::Begin { task } => Some(names.task_name(task)),
                _ => None,
            })
            .collect();
        assert!(begun.iter().any(|n| n.contains("onStartCommand")), "{begun:?}");
        assert!(begun.iter().any(|n| n.contains("onReceive")), "{begun:?}");
    }

    fn begun_tasks(trace: &droidracer_trace::Trace) -> Vec<String> {
        let names = trace.names();
        trace
            .ops()
            .iter()
            .filter_map(|op| match op.kind {
                OpKind::Begin { task } => Some(names.task_name(task)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn service_oncreate_runs_once_per_lifetime() {
        let mut b = AppBuilder::new("SvcLife");
        let a = b.activity("Main");
        let v = b.var("svc", "Sync.state");
        let svc = b.service("Sync", vec![Stmt::Write(v)], vec![Stmt::Read(v)], vec![Stmt::Write(v)]);
        b.on_create(a, vec![Stmt::StartService(svc), Stmt::StartService(svc)]);
        let stop = b.button(a, "stop", vec![Stmt::StopService(svc)]);
        let again = b.button(a, "again", vec![Stmt::StartService(svc)]);
        let app = b.finish();
        let compiled = compile(
            &app,
            &[
                UiEvent::Widget(stop, UiEventKind::Click),
                UiEvent::Widget(again, UiEventKind::Click),
            ],
        )
        .expect("compiles");
        let result = run(
            &compiled.program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("runs");
        assert!(result.completed, "trace:\n{}", result.trace);
        assert_eq!(validate(&result.trace), Ok(()));
        let begun = begun_tasks(&result.trace);
        let creates = begun.iter().filter(|n| n.contains("Sync.onCreate")).count();
        let starts = begun.iter().filter(|n| n.contains("Sync.onStartCommand")).count();
        let destroys = begun.iter().filter(|n| n.contains("Sync.onDestroy")).count();
        // onCreate once per lifetime (two lifetimes), one onStartCommand per
        // StartService, one onDestroy for the explicit stop.
        assert_eq!((creates, starts, destroys), (2, 3, 1), "{begun:?}");
        let first_create = begun.iter().position(|n| n.contains("Sync.onCreate")).unwrap();
        let first_start = begun
            .iter()
            .position(|n| n.contains("Sync.onStartCommand"))
            .unwrap();
        assert!(first_create < first_start, "{begun:?}");
    }

    #[test]
    fn intent_service_delivers_on_its_own_serial_queue() {
        let mut b = AppBuilder::new("IS");
        let a = b.activity("Main");
        let v = b.var("up", "Uploader.pending");
        let isvc = b.intent_service("Uploader", vec![Stmt::Write(v)]);
        b.on_create(a, vec![Stmt::StartIntentService(isvc), Stmt::StartIntentService(isvc)]);
        let app = b.finish();
        let compiled = compile(&app, &[]).expect("compiles");
        let result = run(
            &compiled.program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("runs");
        assert!(result.completed, "trace:\n{}", result.trace);
        assert_eq!(validate(&result.trace), Ok(()));
        let names = result.trace.names();
        // Every delivery is posted to the component's serial executor, not
        // the main Looper.
        let targets: Vec<String> = result
            .trace
            .ops()
            .iter()
            .filter_map(|op| match op.kind {
                OpKind::Post { task, target, .. }
                    if names.task_name(task).contains("onHandleIntent") =>
                {
                    Some(names.thread_name(target))
                }
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec!["Uploader-queue", "Uploader-queue"]);
        let handled = begun_tasks(&result.trace)
            .iter()
            .filter(|n| n.contains("onHandleIntent"))
            .count();
        assert_eq!(handled, 2);
    }

    #[test]
    fn fragment_callbacks_splice_into_host_lifecycle() {
        let mut b = AppBuilder::new("Frag");
        let a = b.activity("Main");
        let v = b.var("frag", "Gallery.view");
        b.fragment(
            a,
            "Gallery",
            vec![Stmt::Write(v)],
            vec![],
            vec![Stmt::Read(v)],
            vec![],
        );
        let app = b.finish();
        let compiled = compile(&app, &[UiEvent::Back]).expect("compiles");
        let result = run(
            &compiled.program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("runs");
        assert!(result.completed, "trace:\n{}", result.trace);
        assert_eq!(validate(&result.trace), Ok(()));
        // Track the enclosing task for each access: the fragment's attach
        // write runs inside LAUNCH_ACTIVITY, its destroy-view read inside
        // the host's onDestroy transition.
        let names = result.trace.names();
        let mut current: std::collections::HashMap<_, String> = std::collections::HashMap::new();
        let mut write_in = None;
        let mut read_in = None;
        for op in result.trace.ops() {
            match op.kind {
                OpKind::Begin { task } => {
                    current.insert(op.thread, names.task_name(task));
                }
                OpKind::End { .. } => {
                    current.remove(&op.thread);
                }
                OpKind::Write { .. } => write_in = current.get(&op.thread).cloned(),
                OpKind::Read { .. } => read_in = current.get(&op.thread).cloned(),
                _ => {}
            }
        }
        assert!(
            write_in.as_deref().unwrap_or("").contains("LAUNCH_ACTIVITY"),
            "write ran in {write_in:?}"
        );
        assert!(
            read_in.as_deref().unwrap_or("").contains("onDestroy"),
            "read ran in {read_in:?}"
        );
    }

    #[test]
    fn handler_thread_receives_posts() {
        let mut b = AppBuilder::new("HT");
        let a = b.activity("Main");
        let v = b.var("o", "C.f");
        let ht = b.handler_thread("worker-looper");
        let r = b.handler("bgWork", vec![Stmt::Write(v)]);
        b.on_create(
            a,
            vec![
                Stmt::StartHandlerThread(ht),
                Stmt::PostToHandlerThread { handler: r, thread: ht },
            ],
        );
        let app = b.finish();
        let compiled = compile(&app, &[]).expect("compiles");
        let result = run(
            &compiled.program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("runs");
        assert!(result.completed, "trace:\n{}", result.trace);
        // The post targets the handler thread, not main.
        let names = result.trace.names();
        let post = result
            .trace
            .ops()
            .iter()
            .find_map(|op| match op.kind {
                OpKind::Post { task, target, .. }
                    if names.task_name(task) == "bgWork" =>
                {
                    Some(target)
                }
                _ => None,
            })
            .expect("bgWork posted");
        assert_eq!(names.thread_name(post), "worker-looper");
    }

    #[test]
    fn idle_handler_runs_when_main_drains() {
        let mut b = AppBuilder::new("Idle");
        let a = b.activity("Main");
        let v = b.var("o", "C.f");
        let idle = b.handler("trimCaches", vec![Stmt::Read(v)]);
        b.on_create(a, vec![Stmt::Write(v), Stmt::AddIdleHandler(idle)]);
        let app = b.finish();
        let compiled = compile(&app, &[]).expect("compiles");
        let result = run(
            &compiled.program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("runs");
        assert!(result.completed, "trace:\n{}", result.trace);
        assert_eq!(validate(&result.trace), Ok(()));
        let names = result.trace.names();
        let begun: Vec<String> = result
            .trace
            .ops()
            .iter()
            .filter_map(|op| match op.kind {
                OpKind::Begin { task } => Some(names.task_name(task)),
                _ => None,
            })
            .collect();
        assert!(begun.iter().any(|n| n.contains("trimCaches")), "{begun:?}");
    }

    #[test]
    fn timer_fires_repeatedly_with_increasing_delays() {
        let mut b = AppBuilder::new("Timer");
        let a = b.activity("Main");
        let v = b.var("o", "C.ticks");
        let tick = b.handler("tick", vec![Stmt::Write(v)]);
        b.on_create(
            a,
            vec![Stmt::ScheduleTimer {
                handler: tick,
                delay: 100,
                period: 50,
                repetitions: 3,
            }],
        );
        let app = b.finish();
        let compiled = compile(&app, &[]).expect("compiles");
        let result = run(
            &compiled.program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("runs");
        assert!(result.completed, "trace:\n{}", result.trace);
        assert_eq!(validate(&result.trace), Ok(()));
        let names = result.trace.names();
        let delays: Vec<u64> = result
            .trace
            .ops()
            .iter()
            .filter_map(|op| match op.kind {
                OpKind::Post { task, kind, .. } if names.task_name(task).contains("tick") => {
                    kind.delay()
                }
                _ => None,
            })
            .collect();
        assert_eq!(delays, vec![100, 150, 200]);
        // The timer runs on its own thread, as Java timers do.
        assert!(names.threads().any(|(_, d)| d.name.starts_with("timer-")));
        let ticks = result
            .trace
            .ops()
            .iter()
            .filter(|op| matches!(op.kind, OpKind::Begin { task } if names.task_name(task).contains("tick")))
            .count();
        assert_eq!(ticks, 3);
    }

    #[test]
    fn dynamic_receiver_requires_registration() {
        let mut b = AppBuilder::new("Dyn");
        let a = b.activity("Main");
        let v = b.var("o", "C.f");
        let rec = b.dynamic_receiver("NetReceiver", vec![Stmt::Read(v)]);
        // Registration happens in onCreate, the broadcast arrives from a
        // worker: the enable comes from the registration site.
        let sender = b.worker("net", vec![Stmt::SendBroadcast(rec)]);
        b.on_create(
            a,
            vec![Stmt::RegisterReceiver(rec), Stmt::ForkWorker(sender)],
        );
        let app = b.finish();
        let compiled = compile(&app, &[]).expect("compiles");
        let result = run(
            &compiled.program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("runs");
        assert!(result.completed, "trace:\n{}", result.trace);
        assert_eq!(validate(&result.trace), Ok(()));
        // Exactly one enable (from RegisterReceiver, on main), not from the
        // sending worker.
        let names = result.trace.names();
        let enables: Vec<_> = result
            .trace
            .ops()
            .iter()
            .filter(|op| matches!(op.kind, OpKind::Enable { task } if names.task_name(task).contains("onReceive")))
            .collect();
        assert_eq!(enables.len(), 1);
        assert_eq!(names.thread_name(enables[0].thread), "main");
    }

    #[test]
    fn widget_enable_counts_cover_repeated_clicks() {
        let mut b = AppBuilder::new("Clicks");
        let a = b.activity("Main");
        let v = b.var("o", "C.f");
        let btn = b.button(a, "inc", vec![Stmt::Write(v)]);
        let app = b.finish();
        let ev = UiEvent::Widget(btn, UiEventKind::Click);
        let compiled = compile(&app, &[ev, ev, ev]).expect("compiles");
        let result = run(
            &compiled.program,
            &mut RoundRobinScheduler::new(),
            &SimConfig::default(),
        )
        .expect("runs");
        assert!(result.completed, "trace:\n{}", result.trace);
        let handler_runs = result
            .trace
            .ops()
            .iter()
            .filter(|op| matches!(op.kind, OpKind::Begin { task } if result.trace.names().task_name(task).contains("inc")))
            .count();
        assert_eq!(handler_runs, 3);
    }
}
