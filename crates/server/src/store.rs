//! The content-addressed result cache: [`ResultStore`] and its crash-safe
//! durable form, [`WalStore`].
//!
//! [`ResultStore`] generalizes the text-persistence idiom of
//! `explorer::db::ReplayDb` — a one-line header, one entry per line,
//! corrupt lines *skipped with a diagnostic* instead of failing the load,
//! and self-healing on save (rewriting drops every corrupt line) — from
//! replay verdicts to analysis results. An entry maps a 64-bit content
//! digest (spec token + trace bytes, see [`job_key`]) to a `JobReport`
//! record; equal digests mean equal work, so a hit returns the stored
//! report with zero recomputation.
//!
//! [`WalStore`] layers crash safety on top: every insert is appended to a
//! checksummed write-ahead log and fsynced *before* the caller proceeds
//! (i.e. before the server acknowledges the job), so a `kill -9` at any
//! byte offset loses at most the record that was mid-append. Startup
//! replays the WAL over the last snapshot, truncating a torn tail and
//! skipping checksum-failed records; periodic compaction folds the log
//! into the snapshot (written atomically: temp file + rename) and resets
//! the WAL to its header.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use droidracer_core::JobReport;

/// Header line of the on-disk format; bump the version when the record
/// encoding changes incompatibly (old caches then reload as empty, which
/// is always safe — the cache is a pure memo).
const STORE_HEADER: &str = "droidracer-resultstore v1";

/// 64-bit FNV-1a over an arbitrary byte stream.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// The cache key of one job: a digest over the spec token, a separator,
/// and the raw trace bytes. The separator keeps `("ab", "c")` and
/// `("a", "bc")` from colliding trivially.
pub fn job_key(spec_token: &str, trace_bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(spec_token.as_bytes());
    h.update(&[0]);
    h.update(trace_bytes);
    h.finish()
}

/// One problem found while loading a persisted store. Loading never fails
/// for content reasons: every malformed line becomes a diagnostic and is
/// dropped, and the next [`ResultStore::save`] heals the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreDiagnostic {
    /// 1-based line number in the loaded file.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for StoreDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// An in-memory content-addressed map from job digest to [`JobReport`],
/// with optional text persistence. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct ResultStore {
    entries: BTreeMap<u64, JobReport>,
}

impl ResultStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached reports.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no reports.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a report by digest.
    pub fn get(&self, key: u64) -> Option<&JobReport> {
        self.entries.get(&key)
    }

    /// Stores `report` under `key`, replacing any previous entry.
    pub fn insert(&mut self, key: u64, report: JobReport) {
        self.entries.insert(key, report);
    }

    /// Serializes the store: header line, then one `<hex digest> <record>`
    /// line per entry in digest order (deterministic output).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(64 * (self.entries.len() + 1));
        out.push_str(STORE_HEADER);
        out.push('\n');
        for (key, report) in &self.entries {
            out.push_str(&format!("{key:016x} {}\n", report.to_record()));
        }
        out
    }

    /// Parses a serialized store. A wrong or missing header yields an empty
    /// store (plus a diagnostic); every malformed entry line is skipped
    /// with a diagnostic. Content problems are never an `Err` — the cache
    /// is a memo, and dropping entries only costs recomputation.
    pub fn from_text(text: &str) -> (Self, Vec<StoreDiagnostic>) {
        let mut store = ResultStore::new();
        let mut diags = Vec::new();
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header == STORE_HEADER => {}
            Some((_, header)) => {
                diags.push(StoreDiagnostic {
                    line: 1,
                    message: format!("unrecognized header `{header}`; ignoring file"),
                });
                return (store, diags);
            }
            None => return (store, diags),
        }
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let Some((key_hex, record)) = line.split_once(' ') else {
                diags.push(StoreDiagnostic {
                    line: lineno,
                    message: "missing digest/record separator".to_owned(),
                });
                continue;
            };
            let Ok(key) = u64::from_str_radix(key_hex, 16) else {
                diags.push(StoreDiagnostic {
                    line: lineno,
                    message: format!("bad digest `{key_hex}`"),
                });
                continue;
            };
            match JobReport::from_record(record) {
                Ok(report) => {
                    if store.entries.insert(key, report).is_some() {
                        diags.push(StoreDiagnostic {
                            line: lineno,
                            message: format!("duplicate digest {key:016x}; kept the later entry"),
                        });
                    }
                }
                Err(e) => diags.push(StoreDiagnostic {
                    line: lineno,
                    message: format!("corrupt record: {e}"),
                }),
            }
        }
        (store, diags)
    }

    /// Loads a store from `path`. A missing file is an empty store (first
    /// run); content corruption becomes diagnostics, not errors.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures (permissions, etc.).
    pub fn load(path: &Path) -> io::Result<(Self, Vec<StoreDiagnostic>)> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Self::from_text(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok((Self::new(), Vec::new())),
            Err(e) => Err(e),
        }
    }

    /// Writes the canonical serialization to `path`, healing any corrupt
    /// lines the load skipped. The write is atomic: the text goes to a
    /// sibling temp file which is fsynced and then renamed over `path`, so
    /// a crash mid-save can never leave a torn snapshot — readers see
    /// either the old file or the new one, whole.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = sibling_tmp(path);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(self.to_text().as_bytes())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)
    }
}

/// The temp-file path `save` stages its atomic rename through.
fn sibling_tmp(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

// ---------------------------------------------------------------------------
// Write-ahead log
// ---------------------------------------------------------------------------

/// Header line of the WAL file; replay of a file with any other first line
/// starts the log over (the WAL is a redo log over the snapshot — dropping
/// it only costs recomputation, never correctness).
const WAL_HEADER: &str = "droidracer-wal v1\n";

/// Fixed byte length of one WAL record's prefix:
/// `R <key:016x> <len:08x> <sum:016x> ` — marker, three hex fields, four
/// separators. The record body (`JobReport::to_record` bytes) follows,
/// then one `\n`.
const WAL_PREFIX: usize = 2 + 16 + 1 + 8 + 1 + 16 + 1;

/// Encodes one WAL record: fixed-width prefix (key, body length, FNV-1a
/// checksum of the body) + body + newline. The explicit length lets replay
/// skip a checksum-failed record precisely; the checksum catches bit rot
/// and torn writes inside the body.
fn wal_encode(key: u64, body: &[u8]) -> Vec<u8> {
    let mut sum = Fnv64::new();
    sum.update(body);
    let mut out = Vec::with_capacity(WAL_PREFIX + body.len() + 1);
    out.extend_from_slice(
        format!("R {key:016x} {:08x} {:016x} ", body.len(), sum.finish()).as_bytes(),
    );
    out.extend_from_slice(body);
    out.push(b'\n');
    out
}

/// How replay classified one span of the WAL file.
#[derive(Debug, Clone, PartialEq, Eq)]
enum WalSpan {
    /// A structurally complete record: `(key, body_range)`. The checksum
    /// may still fail — the caller verifies it.
    Record(u64, std::ops::Range<usize>),
    /// The bytes from here to EOF are a torn tail (an append that never
    /// finished, or a prefix too mangled to resync past).
    Torn,
}

/// Parses the next WAL span at `pos`. Returns the span and the position of
/// the following span (`None` after a torn tail).
fn wal_next(bytes: &[u8], pos: usize) -> Option<(WalSpan, Option<usize>)> {
    if pos >= bytes.len() {
        return None;
    }
    let prefix = match bytes.get(pos..pos + WAL_PREFIX) {
        Some(p) => p,
        None => return Some((WalSpan::Torn, None)),
    };
    let structural = prefix.starts_with(b"R ")
        && prefix[18] == b' '
        && prefix[27] == b' '
        && prefix[WAL_PREFIX - 1] == b' ';
    let fields = structural
        .then(|| std::str::from_utf8(&prefix[2..WAL_PREFIX - 1]).ok())
        .flatten()
        .and_then(|s| {
            let mut it = s.split(' ');
            let key = u64::from_str_radix(it.next()?, 16).ok()?;
            let len = usize::from_str_radix(it.next()?, 16).ok()?;
            let sum = u64::from_str_radix(it.next()?, 16).ok()?;
            Some((key, len, sum))
        });
    let Some((key, len, _)) = fields else {
        // The prefix itself is mangled: without a trustworthy length there
        // is no safe way to resync, so everything from here is torn.
        return Some((WalSpan::Torn, None));
    };
    let body_start = pos + WAL_PREFIX;
    let end = body_start.checked_add(len).and_then(|e| e.checked_add(1));
    match end {
        Some(end) if end <= bytes.len() && bytes[end - 1] == b'\n' => {
            Some((WalSpan::Record(key, body_start..end - 1), Some(end)))
        }
        // The record ran past EOF (or the terminator is missing): the
        // append was torn mid-write.
        _ => Some((WalSpan::Torn, None)),
    }
}

/// Verifies a structurally complete record's checksum.
fn wal_checksum_ok(bytes: &[u8], span: &std::ops::Range<usize>, declared: &[u8]) -> bool {
    let mut sum = Fnv64::new();
    sum.update(&bytes[span.clone()]);
    format!("{:016x}", sum.finish()).as_bytes() == declared
}

/// Byte ranges of every structurally complete record body in a WAL image,
/// in file order. Exposed for the chaos harness and tests, which use it to
/// aim disk faults at precise record boundaries.
pub fn wal_record_ranges(bytes: &[u8]) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::new();
    let mut pos = WAL_HEADER.len();
    if !bytes.starts_with(WAL_HEADER.as_bytes()) {
        return ranges;
    }
    while let Some((span, next)) = wal_next(bytes, pos) {
        if let WalSpan::Record(_, body) = span {
            ranges.push(body);
        }
        match next {
            Some(n) => pos = n,
            None => break,
        }
    }
    ranges
}

/// A fully encoded WAL record for `key`/`body`, exposed so fault
/// harnesses can append *prefixes* of it to a log, simulating a crash
/// mid-append (the torn tail replay must truncate).
pub fn wal_torn_tail_bytes(key: u64, body: &[u8]) -> Vec<u8> {
    wal_encode(key, body)
}

/// Replay statistics of one [`WalStore::open`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records replayed from the WAL into the in-memory store.
    pub replayed: u64,
    /// Structurally complete records dropped for a checksum or record-parse
    /// failure (disk corruption inside one record; its neighbors survive).
    pub skipped: u64,
    /// 1 if a torn tail was truncated during replay (a crash mid-append).
    pub torn_truncated: u64,
    /// Records appended since the last compaction.
    pub appended: u64,
    /// Snapshot compactions performed.
    pub compactions: u64,
}

/// A crash-safe [`ResultStore`]: snapshot + append-only write-ahead log.
/// See the [module docs](self) for the durability contract.
#[derive(Debug)]
pub struct WalStore {
    mem: ResultStore,
    snapshot: PathBuf,
    wal_path: PathBuf,
    wal: File,
    /// Records in the WAL file right now (replayed + appended since open).
    wal_records: usize,
    /// Appends between automatic compactions.
    compact_every: usize,
    stats: WalStats,
}

impl WalStore {
    /// Default append count between automatic compactions.
    pub const DEFAULT_COMPACT_EVERY: usize = 1024;

    /// The WAL file that rides alongside a snapshot at `snapshot`.
    pub fn wal_path(snapshot: &Path) -> PathBuf {
        let mut name = snapshot.file_name().unwrap_or_default().to_os_string();
        name.push(".wal");
        snapshot.with_file_name(name)
    }

    /// Opens (or creates) the durable store rooted at `snapshot`: loads the
    /// snapshot (self-healing, as [`ResultStore::load`]), replays the WAL
    /// over it, truncates any torn tail so appends resume at a clean
    /// boundary, and leaves the log open for appending.
    ///
    /// # Errors
    ///
    /// Genuine I/O failures only; every *content* problem (corrupt
    /// snapshot lines, checksum-failed or torn WAL records) becomes a
    /// diagnostic and is healed by the next compaction.
    pub fn open(snapshot: &Path) -> io::Result<(Self, Vec<StoreDiagnostic>)> {
        let (mem, mut diags) = ResultStore::load(snapshot)?;
        let wal_path = Self::wal_path(snapshot);
        let mut store = WalStore {
            mem,
            snapshot: snapshot.to_owned(),
            wal_path: wal_path.clone(),
            wal: OpenOptions::new()
                .read(true)
                .create(true)
                .append(true)
                .open(&wal_path)?,
            wal_records: 0,
            compact_every: Self::DEFAULT_COMPACT_EVERY,
            stats: WalStats::default(),
        };
        store.replay(&mut diags)?;
        Ok((store, diags))
    }

    /// Sets the automatic-compaction threshold (appends since the last
    /// compaction; clamped to ≥ 1).
    pub fn with_compact_every(mut self, every: usize) -> Self {
        self.compact_every = every.max(1);
        self
    }

    /// Replays the WAL into memory. Truncates the file at the first torn
    /// byte so subsequent appends land on a clean record boundary.
    fn replay(&mut self, diags: &mut Vec<StoreDiagnostic>) -> io::Result<()> {
        let mut bytes = Vec::new();
        self.wal.seek(SeekFrom::Start(0))?;
        self.wal.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            self.wal.write_all(WAL_HEADER.as_bytes())?;
            self.wal.sync_data()?;
            return Ok(());
        }
        if !bytes.starts_with(WAL_HEADER.as_bytes()) {
            diags.push(StoreDiagnostic {
                line: 1,
                message: "unrecognized WAL header; restarting the log".to_owned(),
            });
            self.truncate_to(0)?;
            self.wal.write_all(WAL_HEADER.as_bytes())?;
            self.wal.sync_data()?;
            return Ok(());
        }
        let mut pos = WAL_HEADER.len();
        let mut record_no = 0usize;
        while let Some((span, next)) = wal_next(&bytes, pos) {
            record_no += 1;
            match span {
                WalSpan::Record(key, body) => {
                    let declared = &bytes[pos + 28..pos + 44];
                    let applied = wal_checksum_ok(&bytes, &body, declared)
                        .then(|| std::str::from_utf8(&bytes[body.clone()]).ok())
                        .flatten()
                        .and_then(|text| JobReport::from_record(text).ok());
                    match applied {
                        Some(report) => {
                            self.mem.insert(key, report);
                            self.stats.replayed += 1;
                        }
                        None => {
                            self.stats.skipped += 1;
                            diags.push(StoreDiagnostic {
                                line: record_no,
                                message: format!(
                                    "WAL record {record_no} (digest {key:016x}) failed its \
                                     checksum or parse; skipped"
                                ),
                            });
                        }
                    }
                }
                WalSpan::Torn => {
                    self.stats.torn_truncated += 1;
                    diags.push(StoreDiagnostic {
                        line: record_no,
                        message: format!(
                            "torn WAL tail at byte {pos} ({} bytes dropped)",
                            bytes.len() - pos
                        ),
                    });
                    self.truncate_to(pos as u64)?;
                    break;
                }
            }
            match next {
                Some(n) => pos = n,
                None => break,
            }
        }
        self.wal_records = record_no - usize::from(self.stats.torn_truncated > 0);
        Ok(())
    }

    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        self.wal.set_len(len)?;
        self.wal.seek(SeekFrom::End(0))?;
        self.wal.sync_data()
    }

    /// Cached reports currently in memory.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// Whether the store holds no reports.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// Looks up a report by digest (memory only — never touches disk).
    pub fn get(&self, key: u64) -> Option<&JobReport> {
        self.mem.get(key)
    }

    /// Replay/append statistics since open.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Stores `report` under `key` durably: the record is appended to the
    /// WAL and fsynced before this returns, so once the caller acknowledges
    /// the result, a crash at any byte offset cannot lose it. Triggers an
    /// automatic compaction once `compact_every` appends accumulate.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the in-memory insert has already happened
    /// (a failed disk is degraded durability, not a lost result for this
    /// process's lifetime).
    pub fn insert(&mut self, key: u64, report: JobReport) -> io::Result<()> {
        let body = report.to_record();
        self.mem.insert(key, report);
        self.wal.write_all(&wal_encode(key, body.as_bytes()))?;
        self.wal.sync_data()?;
        self.wal_records += 1;
        self.stats.appended += 1;
        if self.wal_records >= self.compact_every {
            self.compact()?;
        }
        Ok(())
    }

    /// Folds the log into the snapshot: writes the full store atomically
    /// to the snapshot path ([`ResultStore::save`]: temp + rename), then
    /// resets the WAL to its header. A crash between the two steps only
    /// replays records that are already in the snapshot — replay is
    /// idempotent (last writer wins on equal keys).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn compact(&mut self) -> io::Result<()> {
        self.mem.save(&self.snapshot)?;
        self.truncate_to(0)?;
        self.wal.write_all(WAL_HEADER.as_bytes())?;
        self.wal.sync_data()?;
        self.wal_records = 0;
        self.stats.compactions += 1;
        Ok(())
    }

    /// The snapshot path this store compacts to.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot
    }

    /// The live WAL path.
    pub fn log_path(&self) -> &Path {
        &self.wal_path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidracer_core::{ExitClass, JobReport};

    fn sample_report(diag: &str) -> JobReport {
        JobReport::aborted(ExitClass::Invalid, diag)
    }

    #[test]
    fn digest_separates_spec_and_trace() {
        assert_ne!(job_key("ab", b"c"), job_key("a", b"bc"));
        assert_ne!(job_key("s", b"x"), job_key("s", b"y"));
        assert_eq!(job_key("s", b"x"), job_key("s", b"x"));
    }

    #[test]
    fn round_trips_through_text() {
        let mut store = ResultStore::new();
        store.insert(job_key("spec", b"one"), sample_report("first, with | specials"));
        store.insert(job_key("spec", b"two"), sample_report("second"));
        let text = store.to_text();
        let (back, diags) = ResultStore::from_text(&text);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(back.len(), 2);
        for (key, report) in &store.entries {
            assert_eq!(back.get(*key), Some(report));
        }
        // Deterministic serialization: re-serializing is a fixed point.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn corrupt_lines_are_skipped_and_healed() {
        let mut store = ResultStore::new();
        store.insert(1, sample_report("keep me"));
        store.insert(2, sample_report("and me"));
        let mut text = store.to_text();
        text.push_str("zzzz not-a-digest\n");
        text.push_str("00000000000000ff exit=clean counts=bogus\n");
        text.push_str("missingseparator\n");
        let (loaded, diags) = ResultStore::from_text(&text);
        assert_eq!(loaded.len(), 2, "good entries survive");
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.line > 1));
        // Healing: the rewrite contains only the good entries.
        let healed = loaded.to_text();
        assert_eq!(ResultStore::from_text(&healed).1, Vec::new());
        assert_eq!(healed.lines().count(), 3, "header + 2 entries");
    }

    #[test]
    fn wrong_header_loads_empty_with_diagnostic() {
        let (store, diags) = ResultStore::from_text("replaydb v9\nwhatever\n");
        assert!(store.is_empty());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unrecognized header"));
        let (store, diags) = ResultStore::from_text("");
        assert!(store.is_empty() && diags.is_empty());
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("walstore-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn wal_survives_reopen_without_compaction() {
        let dir = temp_dir("reopen");
        let snap = dir.join("cache.txt");
        {
            let (mut store, diags) = WalStore::open(&snap).unwrap();
            assert!(diags.is_empty());
            store.insert(7, sample_report("seven")).unwrap();
            store.insert(9, sample_report("nine")).unwrap();
            // No compact(), no snapshot save: dropping here models a crash
            // after the acks.
        }
        assert!(!snap.exists(), "nothing compacted to the snapshot yet");
        let (store, diags) = WalStore::open(&snap).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(store.stats().replayed, 2);
        assert_eq!(store.get(7), Some(&sample_report("seven")));
        assert_eq!(store.get(9), Some(&sample_report("nine")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let dir = temp_dir("torn");
        let snap = dir.join("cache.txt");
        {
            let (mut store, _) = WalStore::open(&snap).unwrap();
            store.insert(1, sample_report("whole")).unwrap();
        }
        let wal = WalStore::wal_path(&snap);
        let mut bytes = std::fs::read(&wal).unwrap();
        let whole_len = bytes.len();
        // Simulate a crash mid-append: half of a second record.
        let torn = wal_encode(2, sample_report("torn").to_record().as_bytes());
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(&wal, &bytes).unwrap();
        let (mut store, diags) = WalStore::open(&snap).unwrap();
        assert_eq!(store.stats().torn_truncated, 1);
        assert_eq!(store.stats().replayed, 1);
        assert!(diags.iter().any(|d| d.message.contains("torn WAL tail")), "{diags:?}");
        assert_eq!(store.get(1), Some(&sample_report("whole")));
        assert_eq!(store.get(2), None, "the in-flight record is lost, nothing else");
        assert_eq!(
            std::fs::metadata(&wal).unwrap().len(),
            whole_len as u64,
            "tail truncated back to the last whole record"
        );
        // Appends resume on the clean boundary and replay afterwards.
        store.insert(3, sample_report("after")).unwrap();
        drop(store);
        let (store, diags) = WalStore::open(&snap).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(store.stats().replayed, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_record_is_skipped_but_neighbors_survive() {
        let dir = temp_dir("corrupt");
        let snap = dir.join("cache.txt");
        {
            let (mut store, _) = WalStore::open(&snap).unwrap();
            store.insert(1, sample_report("first")).unwrap();
            store.insert(2, sample_report("second")).unwrap();
            store.insert(3, sample_report("third")).unwrap();
        }
        let wal = WalStore::wal_path(&snap);
        let mut bytes = std::fs::read(&wal).unwrap();
        let ranges = wal_record_ranges(&bytes);
        assert_eq!(ranges.len(), 3);
        // Flip a byte inside the second record's body.
        let mid = (ranges[1].start + ranges[1].end) / 2;
        bytes[mid] ^= 0x41;
        std::fs::write(&wal, &bytes).unwrap();
        let (store, diags) = WalStore::open(&snap).unwrap();
        assert_eq!(store.stats().skipped, 1, "{diags:?}");
        assert_eq!(store.stats().replayed, 2);
        assert_eq!(store.get(1), Some(&sample_report("first")));
        assert_eq!(store.get(2), None);
        assert_eq!(store.get(3), Some(&sample_report("third")), "records after the flip survive");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_folds_wal_into_snapshot() {
        let dir = temp_dir("compact");
        let snap = dir.join("cache.txt");
        {
            let (store, _) = WalStore::open(&snap).unwrap();
            let mut store = store.with_compact_every(2);
            store.insert(1, sample_report("a")).unwrap();
            assert_eq!(store.stats().compactions, 0);
            store.insert(2, sample_report("b")).unwrap();
            assert_eq!(store.stats().compactions, 1, "threshold reached");
            store.insert(3, sample_report("c")).unwrap();
        }
        // Snapshot holds the compacted entries; the WAL holds only the one
        // appended after compaction.
        let (snap_only, _) = ResultStore::load(&snap).unwrap();
        assert_eq!(snap_only.len(), 2);
        let wal_bytes = std::fs::read(WalStore::wal_path(&snap)).unwrap();
        assert_eq!(wal_record_ranges(&wal_bytes).len(), 1);
        let (store, diags) = WalStore::open(&snap).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(store.len(), 3, "snapshot + replayed record");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_atomic_via_temp_and_rename() {
        let dir = temp_dir("atomic");
        let path = dir.join("cache.txt");
        let mut store = ResultStore::new();
        store.insert(5, sample_report("x"));
        store.save(&path).unwrap();
        assert!(!sibling_tmp(&path).exists(), "temp staging file renamed away");
        let (back, diags) = ResultStore::load(&path).unwrap();
        assert!(diags.is_empty());
        assert_eq!(back.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_and_save_heal_on_disk() {
        let dir = std::env::temp_dir().join(format!("resultstore-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.txt");
        // Missing file: empty store, no diagnostics.
        let (empty, diags) = ResultStore::load(&path).unwrap();
        assert!(empty.is_empty() && diags.is_empty());
        // Save entries plus inject corruption; reload skips, save heals.
        let mut store = ResultStore::new();
        store.insert(42, sample_report("persisted"));
        store.save(&path).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("garbage line\n");
        std::fs::write(&path, &text).unwrap();
        let (loaded, diags) = ResultStore::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(diags.len(), 1);
        loaded.save(&path).unwrap();
        let (healed, diags) = ResultStore::load(&path).unwrap();
        assert_eq!(healed.len(), 1);
        assert!(diags.is_empty(), "save healed the file: {diags:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
