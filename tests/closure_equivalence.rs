//! Differential suite for the incremental worklist closure engine.
//!
//! The engine rewrite (sparse row-bounded bit-matrices + dirty-node
//! worklist) is a pure performance change: for every trace and every rule
//! configuration the closed `st`/`mt` matrices must be *bit-identical* to
//! the retained naive reference saturation
//! ([`HappensBefore::compute_reference`]), and the semantic counters (base
//! edges, FIFO/NOPRE firings, TRANS-ST/TRANS-MT deltas, rounds) must
//! match exactly. These tests pin that contract on the 15-app corpus, on
//! every `HbMode`, and on proptest-generated random applications.

use proptest::prelude::*;

use droidracer::apps::corpus;
use droidracer::core::{HappensBefore, HbConfig, HbMode};
use droidracer::framework::{compile, App, AppBuilder, Stmt, UiEvent, UiEventKind};
use droidracer::sim::{run, RandomScheduler, SimConfig};
use droidracer::trace::Trace;

/// Asserts the incremental engine reproduces the reference saturation on
/// `trace` under `config`, bit for bit.
fn assert_closure_equivalent(trace: &Trace, config: HbConfig, context: &str) {
    let trace = trace.without_cancelled();
    let incremental = HappensBefore::compute(&trace, config);
    let reference = HappensBefore::compute_reference(&trace, config);
    let (inc_primary, inc_mt) = incremental.relation_matrices();
    let (ref_primary, ref_mt) = reference.relation_matrices();
    assert_eq!(
        inc_primary, ref_primary,
        "{context}: st/plain matrix differs from reference"
    );
    assert_eq!(inc_mt, ref_mt, "{context}: mt matrix differs from reference");
    let (i, r) = (incremental.stats(), reference.stats());
    assert_eq!(i.base_edges, r.base_edges, "{context}: base edges");
    assert_eq!(i.fifo_fired, r.fifo_fired, "{context}: FIFO firings");
    assert_eq!(i.nopre_fired, r.nopre_fired, "{context}: NOPRE firings");
    assert_eq!(i.trans_st_edges, r.trans_st_edges, "{context}: TRANS-ST");
    assert_eq!(i.trans_mt_edges, r.trans_mt_edges, "{context}: TRANS-MT");
    assert_eq!(i.rounds, r.rounds, "{context}: fixpoint rounds");
    assert_eq!(
        incremental.ordered_pairs(),
        reference.ordered_pairs(),
        "{context}: relation size"
    );
}

/// Every corpus app, analyzed under the production configuration, closes to
/// the same relation as the reference engine.
#[test]
fn corpus_matches_reference_in_full_mode() {
    for entry in corpus() {
        let trace = entry.generate_trace().expect("corpus entries generate");
        assert_closure_equivalent(&trace, HbConfig::new(), entry.name);
    }
}

/// All five rule presets agree with the reference. The whole-matrix
/// reference saturation scales with n² per round, so the all-modes sweep
/// runs on the corpus apps whose graphs stay small enough for five
/// reference closures in a debug build; the full-size apps are covered in
/// `corpus_matches_reference_in_full_mode` and by the CI word-ops budget.
#[test]
fn corpus_matches_reference_in_every_mode() {
    let mut checked = 0usize;
    for entry in corpus() {
        let trace = entry.generate_trace().expect("corpus entries generate");
        if trace.len() > 25_000 {
            continue;
        }
        for mode in HbMode::all() {
            let config = HbConfig {
                rules: mode.rule_set(),
                merge_accesses: true,
            };
            assert_closure_equivalent(&trace, config, &format!("{} / {mode:?}", entry.name));
        }
        checked += 1;
    }
    assert!(checked >= 5, "mode sweep must cover several corpus apps");
}

/// The unmerged graph (every op its own node) exercises much larger
/// matrices per op; one corpus app suffices to cover merge_accesses=false.
#[test]
fn unmerged_graph_matches_reference() {
    let entry = &corpus()[0];
    let trace = entry.generate_trace().expect("corpus entries generate");
    let config = HbConfig::new().without_merging();
    assert_closure_equivalent(&trace, config, &format!("{} unmerged", entry.name));
}

/// The service front door delegates to `AnalysisBuilder`: submitting a
/// corpus trace's text through `LocalService` yields exactly the report the
/// builder's `Analysis` maps to — races, category counts, engine counters.
#[test]
fn local_service_matches_builder() {
    use droidracer::core::{AnalysisBuilder, AnalysisService, JobReport, JobSpec, LocalService};
    use droidracer::trace::to_text;
    let mut service = LocalService::new();
    for entry in corpus() {
        let trace = entry.generate_trace().expect("corpus entries generate");
        let report = service
            .submit(&JobSpec::default(), &to_text(&trace))
            .expect("local service is infallible");
        let built = AnalysisBuilder::new()
            .analyze(&trace)
            .expect("infallible without validation");
        assert_eq!(
            report,
            JobReport::from_analysis(&built, Vec::new()),
            "{}",
            entry.name
        );
        assert_eq!(
            report.stats.word_ops,
            built.hb().stats().word_ops,
            "{}",
            entry.name
        );
        assert_eq!(report.counts, built.counts(), "{}", entry.name);
    }
}

/// Derives a small valid app from fuzz bytes: handlers posting forward
/// (plain, delayed and front posts), a worker thread, locks, and shared
/// variables — enough surface to exercise FIFO, NOPRE, LOCK and both
/// transitivity rules.
fn build_app(bytes: &[u8]) -> (App, Vec<UiEvent>) {
    let mut pos = 0usize;
    let mut next = |n: usize| -> usize {
        let b = bytes.get(pos).copied().unwrap_or(0) as usize;
        pos += 1;
        if n == 0 {
            0
        } else {
            b % n
        }
    };
    let mut b = AppBuilder::new("ClosureFuzz");
    let act = b.activity("Main");
    let vars: Vec<_> = (0..1 + next(3))
        .map(|i| b.var("obj", format!("f{i}")))
        .collect();
    let leaf = |next: &mut dyn FnMut(usize) -> usize| -> Stmt {
        let v = vars[next(vars.len())];
        if next(2) == 0 {
            Stmt::Read(v)
        } else {
            Stmt::Write(v)
        }
    };
    let late = b.handler("late", vec![leaf(&mut next), leaf(&mut next)]);
    let mut mid_body = vec![leaf(&mut next)];
    if next(2) == 0 {
        mid_body.push(Stmt::Post {
            handler: late,
            delay: if next(3) == 0 { Some(20) } else { None },
            front: next(5) == 0,
        });
    }
    let mid = b.handler("mid", mid_body);
    let w = b.worker(
        "bg",
        vec![
            leaf(&mut next),
            Stmt::Post {
                handler: mid,
                delay: None,
                front: false,
            },
        ],
    );
    let mut on_create = vec![Stmt::ForkWorker(w), leaf(&mut next)];
    for _ in 0..next(3) {
        on_create.push(Stmt::Post {
            handler: mid,
            delay: if next(4) == 0 { Some(10) } else { None },
            front: false,
        });
    }
    b.on_create(act, on_create);
    let btn = b.button(act, "go", vec![leaf(&mut next)]);
    let mut events = Vec::new();
    for _ in 0..next(3) {
        events.push(UiEvent::Widget(btn, UiEventKind::Click));
    }
    (b.finish(), events)
}

fn simulate(bytes: &[u8], seed: u64) -> Trace {
    let (app, events) = build_app(bytes);
    let compiled = compile(&app, &events).expect("fuzzed apps compile");
    let result = run(
        &compiled.program,
        &mut RandomScheduler::new(seed),
        &SimConfig::default(),
    )
    .expect("fuzzed apps run");
    result.trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random traces close identically under every rule preset, merged and
    /// unmerged.
    #[test]
    fn random_traces_match_reference(
        bytes in proptest::collection::vec(any::<u8>(), 0..48),
        seed in 0u64..1000,
    ) {
        let trace = simulate(&bytes, seed);
        for mode in HbMode::all() {
            for merge in [true, false] {
                let config = HbConfig {
                    rules: mode.rule_set(),
                    merge_accesses: merge,
                };
                assert_closure_equivalent(
                    &trace,
                    config,
                    &format!("fuzz seed {seed} / {mode:?} / merge={merge}"),
                );
            }
        }
    }
}
