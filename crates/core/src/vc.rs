//! A vector-clock race detector for the classic multi-threaded model
//! (DJIT⁺-style, in the spirit of FastTrack [PLDI'09], which the paper cites
//! as the state of the art for multi-threaded programs).
//!
//! This detector deliberately understands only threads, fork/join and locks —
//! asynchronous tasks are invisible to it. It serves two purposes:
//!
//! * an independent implementation cross-checking the graph-based
//!   [`HbMode::MultithreadedOnly`](crate::HbMode) baseline: both must flag
//!   exactly the same set of racy memory locations;
//! * a concrete demonstration of the paper's §7 claim that multi-threaded
//!   detectors *miss single-threaded races* entirely.

use std::collections::HashMap;

use droidracer_trace::{LockId, MemLoc, OpKind, ThreadId, Trace};

/// A vector clock mapping thread ids to logical times.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VectorClock {
    times: Vec<u32>,
}

impl VectorClock {
    /// Creates a clock of zeros for `n` threads.
    pub fn new(n: usize) -> Self {
        VectorClock { times: vec![0; n] }
    }

    /// The component for `thread`.
    pub fn get(&self, thread: ThreadId) -> u32 {
        self.times.get(thread.index()).copied().unwrap_or(0)
    }

    /// Sets the component for `thread`.
    pub fn set(&mut self, thread: ThreadId, time: u32) {
        if thread.index() >= self.times.len() {
            self.times.resize(thread.index() + 1, 0);
        }
        self.times[thread.index()] = time;
    }

    /// Increments the component for `thread`.
    pub fn tick(&mut self, thread: ThreadId) {
        let t = self.get(thread) + 1;
        self.set(thread, t);
    }

    /// Pointwise maximum with `other` (the join operation).
    pub fn join(&mut self, other: &VectorClock) {
        if other.times.len() > self.times.len() {
            self.times.resize(other.times.len(), 0);
        }
        for (a, b) in self.times.iter_mut().zip(other.times.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Whether `self ⊑ other` pointwise.
    pub fn le(&self, other: &VectorClock) -> bool {
        self.times
            .iter()
            .enumerate()
            .all(|(i, &t)| t <= other.times.get(i).copied().unwrap_or(0))
    }
}

/// A race found by the vector-clock detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcRace {
    /// Trace index of the earlier access.
    pub first: usize,
    /// Trace index of the later access (where the race was flagged).
    pub second: usize,
    /// The racy location.
    pub loc: MemLoc,
}

#[derive(Debug, Default, Clone)]
struct LocState {
    /// Per-thread clock of the last write, plus its op index.
    writes: HashMap<ThreadId, (u32, usize)>,
    /// Per-thread clock of the last read, plus its op index.
    reads: HashMap<ThreadId, (u32, usize)>,
}

/// Runs the multi-threaded vector-clock analysis over `trace`, reporting at
/// most one race per location (the first one flagged).
pub fn detect_multithreaded(trace: &Trace) -> Vec<VcRace> {
    // invariant: an unlimited budget never exhausts.
    detect_multithreaded_budgeted(trace, &crate::Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// Like [`detect_multithreaded`] but under a resource [`crate::Budget`]:
/// the pass polls the deadline every 1024 trace ops and the op cap on every
/// op.
///
/// # Errors
///
/// Returns [`crate::BudgetExhausted`] with `ops_processed` = trace ops
/// consumed when a limit trips.
pub fn detect_multithreaded_budgeted(
    trace: &Trace,
    budget: &crate::Budget,
) -> Result<Vec<VcRace>, crate::BudgetExhausted> {
    let limited = budget.is_limited();
    let n = trace.names().thread_count();
    let mut clocks: HashMap<ThreadId, VectorClock> = HashMap::new();
    let mut lock_clocks: HashMap<LockId, VectorClock> = HashMap::new();
    let mut locs: HashMap<MemLoc, LocState> = HashMap::new();
    let mut flagged: HashMap<MemLoc, VcRace> = HashMap::new();

    let clock_of = |clocks: &mut HashMap<ThreadId, VectorClock>, t: ThreadId| {
        clocks
            .entry(t)
            .or_insert_with(|| {
                let mut c = VectorClock::new(n);
                c.tick(t);
                c
            })
            .clone()
    };

    for (i, op) in trace.iter() {
        if limited {
            if let Some(err) = crate::fasttrack::poll_trace_budget(budget, i) {
                return Err(err);
            }
        }
        let t = op.thread;
        match op.kind {
            OpKind::Fork { child } => {
                let parent = clock_of(&mut clocks, t);
                let child_clock = clocks.entry(child).or_insert_with(|| {
                    let mut c = VectorClock::new(n);
                    c.tick(child);
                    c
                });
                child_clock.join(&parent);
                clocks.get_mut(&t).expect("parent exists").tick(t);
            }
            OpKind::Join { child } => {
                let child_clock = clock_of(&mut clocks, child);
                clock_of(&mut clocks, t);
                clocks.get_mut(&t).expect("self exists").join(&child_clock);
            }
            OpKind::Acquire { lock } => {
                clock_of(&mut clocks, t);
                if let Some(lc) = lock_clocks.get(&lock) {
                    clocks.get_mut(&t).expect("self exists").join(lc);
                }
            }
            OpKind::Release { lock } => {
                let c = clock_of(&mut clocks, t);
                lock_clocks
                    .entry(lock)
                    .or_insert_with(|| VectorClock::new(n))
                    .join(&c);
                clocks.get_mut(&t).expect("self exists").tick(t);
            }
            OpKind::Read { loc } => {
                let c = clock_of(&mut clocks, t);
                let state = locs.entry(loc).or_default();
                for (&u, &(wc, wi)) in &state.writes {
                    if u != t && wc > c.get(u) {
                        flagged.entry(loc).or_insert(VcRace {
                            first: wi,
                            second: i,
                            loc,
                        });
                    }
                }
                state.reads.insert(t, (c.get(t), i));
            }
            OpKind::Write { loc } => {
                let c = clock_of(&mut clocks, t);
                let state = locs.entry(loc).or_default();
                for (&u, &(wc, wi)) in &state.writes {
                    if u != t && wc > c.get(u) {
                        flagged.entry(loc).or_insert(VcRace {
                            first: wi,
                            second: i,
                            loc,
                        });
                    }
                }
                for (&u, &(rc, ri)) in &state.reads {
                    if u != t && rc > c.get(u) {
                        flagged.entry(loc).or_insert(VcRace {
                            first: ri,
                            second: i,
                            loc,
                        });
                    }
                }
                state.writes.insert(t, (c.get(t), i));
            }
            _ => {}
        }
    }
    let mut races: Vec<VcRace> = flagged.into_values().collect();
    races.sort_by_key(|r| (r.loc, r.first, r.second));
    Ok(races)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AnalysisBuilder;
    use crate::rules::HbMode;
    use droidracer_trace::{ThreadKind, TraceBuilder};

    #[test]
    fn clock_join_and_compare() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.set(ThreadId(0), 5);
        b.set(ThreadId(1), 2);
        assert!(!a.le(&b) && !b.le(&a));
        a.join(&b);
        assert!(b.le(&a));
        assert_eq!(a.get(ThreadId(0)), 5);
        assert_eq!(a.get(ThreadId(1)), 2);
        a.tick(ThreadId(2));
        assert_eq!(a.get(ThreadId(2)), 1);
    }

    #[test]
    fn flags_unsynchronized_write_read() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.fork(main, bg);
        b.thread_init(bg);
        b.write(bg, loc); // 3
        b.read(main, loc); // 4
        let races = detect_multithreaded(&b.finish());
        assert_eq!(races.len(), 1);
        assert_eq!((races[0].first, races[0].second), (3, 4));
    }

    #[test]
    fn lock_synchronization_suppresses_race() {
        let mut b = TraceBuilder::new();
        let a = b.thread("a", ThreadKind::App, true);
        let c = b.thread("c", ThreadKind::App, true);
        let l = b.lock("m");
        let loc = b.loc("o", "C.f");
        b.thread_init(a);
        b.thread_init(c);
        b.acquire(a, l);
        b.write(a, loc);
        b.release(a, l);
        b.acquire(c, l);
        b.write(c, loc);
        b.release(c, l);
        assert!(detect_multithreaded(&b.finish()).is_empty());
    }

    #[test]
    fn fork_and_join_synchronize() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg = b.thread("bg", ThreadKind::App, false);
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.write(main, loc);
        b.fork(main, bg);
        b.thread_init(bg);
        b.write(bg, loc);
        b.thread_exit(bg);
        b.join(main, bg);
        b.read(main, loc);
        assert!(detect_multithreaded(&b.finish()).is_empty());
    }

    #[test]
    fn misses_single_threaded_task_races() {
        // The §7 claim: a single-threaded race between two asynchronous
        // tasks is invisible to a multi-threaded detector.
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg1 = b.thread("bg1", ThreadKind::App, true);
        let bg2 = b.thread("bg2", ThreadKind::App, true);
        let t1 = b.task("A");
        let t2 = b.task("B");
        let loc = b.loc("o", "C.f");
        b.thread_init(main);
        b.attach_q(main);
        b.loop_on_q(main);
        b.thread_init(bg1);
        b.thread_init(bg2);
        b.post(bg1, t1, main);
        b.post(bg2, t2, main);
        b.begin(main, t1);
        b.write(main, loc);
        b.end(main, t1);
        b.begin(main, t2);
        b.write(main, loc);
        b.end(main, t2);
        let trace = b.finish();
        assert!(detect_multithreaded(&trace).is_empty());
        // …while the paper's relation reports it:
        assert_eq!(AnalysisBuilder::new().analyze(&trace).unwrap().races().len(), 1);
    }

    #[test]
    fn agrees_with_graph_based_mt_baseline_on_locations() {
        // Build a mixed trace and compare racy-location sets between the
        // vector-clock detector and the graph-based mt-only mode.
        let mut b = TraceBuilder::new();
        let main = b.thread("main", ThreadKind::Main, true);
        let bg1 = b.thread("bg1", ThreadKind::App, false);
        let bg2 = b.thread("bg2", ThreadKind::App, false);
        let l = b.lock("m");
        let safe = b.loc("o1", "C.safe");
        let racy = b.loc("o2", "C.racy");
        b.thread_init(main);
        b.write(main, safe);
        b.write(main, racy);
        b.fork(main, bg1);
        b.fork(main, bg2);
        b.thread_init(bg1);
        b.thread_init(bg2);
        b.acquire(bg1, l);
        b.write(bg1, safe);
        b.release(bg1, l);
        b.write(bg1, racy);
        b.acquire(bg2, l);
        b.write(bg2, safe);
        b.release(bg2, l);
        b.write(bg2, racy);
        let trace = b.finish();
        let vc_locs: std::collections::BTreeSet<MemLoc> =
            detect_multithreaded(&trace).iter().map(|r| r.loc).collect();
        let graph_locs: std::collections::BTreeSet<MemLoc> =
            AnalysisBuilder::new().mode(HbMode::MultithreadedOnly).analyze(&trace).unwrap()
                .races()
                .iter()
                .map(|cr| cr.race.loc)
                .collect();
        assert_eq!(vc_locs, graph_locs);
        assert!(vc_locs.contains(&racy));
        assert!(!vc_locs.contains(&safe));
    }
}
