//! A dense square bit matrix used for happens-before reachability, with
//! per-row nonzero word bounds.
//!
//! Happens-before edges always point forward in the trace, so row `i` of a
//! relation matrix is empty below (roughly) word `i/64` and — early in the
//! fixpoint — often empty above some frontier too. Every row carries a
//! conservative `[lo, hi)` word range containing all of its nonzero words;
//! row operations skip the all-zero prefix and suffix entirely. The engine
//! counts `word_ops` as words *actually touched* under these bounds and
//! `skipped_words` as the words the bounds let it skip.
//!
//! The bounds are an over-approximation (words inside the range may be
//! zero, words outside never are) and depend on the operation order, so
//! they are deliberately excluded from equality: two matrices compare equal
//! iff their dimensions and bit contents match.

use std::fmt;

use crate::simd;

/// A square boolean matrix backed by `u64` words, storing one row per graph
/// node. Row `i` holds the set of nodes `j` with an edge (or derived
/// ordering) `i → j`.
#[derive(Clone)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
    /// Per-row first possibly-nonzero word index.
    lo: Vec<u32>,
    /// Per-row one-past-last possibly-nonzero word index (`lo == hi` ⇔ the
    /// row is known empty).
    hi: Vec<u32>,
}

impl PartialEq for BitMatrix {
    /// Bounds are an order-dependent over-approximation; equality is over
    /// the logical contents only.
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.bits == other.bits
    }
}

impl Eq for BitMatrix {}

impl BitMatrix {
    /// Creates an `n × n` matrix of zeros.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
            lo: vec![0; n],
            hi: vec![0; n],
        }
    }

    /// Side length of the matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix has zero rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of 64-bit words backing one row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    #[inline]
    fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = i * self.words_per_row;
        start..start + self.words_per_row
    }

    /// The conservative `[lo, hi)` word range of row `i`'s nonzero words.
    /// `lo == hi` means the row is empty.
    #[inline]
    pub fn row_bounds(&self, i: usize) -> (usize, usize) {
        (self.lo[i] as usize, self.hi[i] as usize)
    }

    /// Grows row `i`'s bounds to cover word range `[wlo, whi)`.
    #[inline]
    fn widen(&mut self, i: usize, wlo: usize, whi: usize) {
        if wlo >= whi {
            return;
        }
        if self.lo[i] == self.hi[i] {
            self.lo[i] = wlo as u32;
            self.hi[i] = whi as u32;
        } else {
            self.lo[i] = self.lo[i].min(wlo as u32);
            self.hi[i] = self.hi[i].max(whi as u32);
        }
    }

    /// Sets bit `(i, j)`. Returns `true` if the bit was newly set.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n);
        let w = j / 64;
        let word = &mut self.bits[i * self.words_per_row + w];
        let mask = 1u64 << (j % 64);
        let was = *word & mask != 0;
        *word |= mask;
        if !was {
            self.widen(i, w, w + 1);
        }
        !was
    }

    /// Tests bit `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n);
        self.bits[i * self.words_per_row + j / 64] & (1u64 << (j % 64)) != 0
    }

    /// Returns row `i` as a word slice.
    pub fn row(&self, i: usize) -> &[u64] {
        &self.bits[self.row_range(i)]
    }

    /// Word `w` of row `i` — the single-load column probe used by the
    /// FIFO/NOPRE watcher scans.
    #[inline]
    pub fn row_word(&self, i: usize, w: usize) -> u64 {
        self.bits[i * self.words_per_row + w]
    }

    /// Overwrites row `i`'s words and bounds wholesale — the write-back half
    /// of the parallel closure's pure row recomputation. `words` must span
    /// the full row; `[lo, hi)` must be a valid conservative bound of its
    /// nonzero words (the pure computation replicates the sequential
    /// engine's exact `widen` sequence, so the stored bounds are identical
    /// to what in-place recomputation would have produced).
    pub(crate) fn store_row(&mut self, i: usize, words: &[u64], lo: usize, hi: usize) {
        let range = self.row_range(i);
        self.bits[range].copy_from_slice(words);
        self.lo[i] = lo as u32;
        self.hi[i] = hi as u32;
    }

    /// Split-borrows rows `src` (shared) and `dst` (mutable).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`.
    #[inline]
    fn src_dst_rows(&mut self, src: usize, dst: usize) -> (&[u64], &mut [u64]) {
        assert_ne!(src, dst, "source and destination rows must differ");
        let w = self.words_per_row;
        let (s, d) = (src * w, dst * w);
        if s < d {
            let (head, tail) = self.bits.split_at_mut(d);
            (&head[s..s + w], &mut tail[..w])
        } else {
            let (head, tail) = self.bits.split_at_mut(s);
            (&tail[..w], &mut head[d..d + w])
        }
    }

    /// ORs row `src` into row `dst`, touching only `src`'s bounded word
    /// range. Returns `true` if `dst` changed. Self-merge is a no-op.
    pub fn or_row_into(&mut self, src: usize, dst: usize) -> bool {
        if src == dst {
            return false;
        }
        let (slo, shi) = self.row_bounds(src);
        if slo >= shi {
            return false;
        }
        let (src_row, dst_row) = self.src_dst_rows(src, dst);
        let changed = simd::or_into(&mut dst_row[slo..shi], &src_row[slo..shi]);
        if changed {
            self.widen(dst, slo, shi);
        }
        changed
    }

    /// ORs `(self.row(src) | with.row(src)) & !mask` into row `dst`,
    /// invoking `on_new` with the position of every bit this newly sets.
    /// Touches only the union of the two source rows' bounded ranges;
    /// returns the number of words touched.
    ///
    /// This is the TRANS-MT composition step: `self` is the cross-thread
    /// matrix (holding both `src` and `dst` rows), `with` the same-thread
    /// matrix, and `mask` the bit set of nodes on `dst`'s own thread, whose
    /// orderings must not be recorded cross-thread.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or the matrices differ in size.
    pub fn or_union_masked_into(
        &mut self,
        src: usize,
        with: &BitMatrix,
        mask: &[u64],
        dst: usize,
        mut on_new: impl FnMut(usize),
    ) -> usize {
        assert_eq!(self.words_per_row, with.words_per_row, "size mismatch");
        let (alo, ahi) = self.row_bounds(src);
        let (blo, bhi) = with.row_bounds(src);
        let (lo, hi) = match (alo < ahi, blo < bhi) {
            (false, false) => return 0,
            (true, false) => (alo, ahi),
            (false, true) => (blo, bhi),
            (true, true) => (alo.min(blo), ahi.max(bhi)),
        };
        let with_row = with.row(src);
        let (src_row, dst_row) = self.src_dst_rows(src, dst);
        let changed = simd::union_masked_collect(
            &src_row[lo..hi],
            &with_row[lo..hi],
            &mask[lo..hi],
            &mut dst_row[lo..hi],
            lo,
            &mut on_new,
        );
        if changed {
            self.widen(dst, lo, hi);
        }
        hi - lo
    }

    /// ORs an external word slice into row `dst`. Returns `true` on change.
    pub fn or_words_into(&mut self, words: &[u64], dst: usize) -> bool {
        let range = self.row_range(dst);
        if let Some((wlo, whi)) = simd::or_into_track(&mut self.bits[range], words) {
            self.widen(dst, wlo, whi);
            true
        } else {
            false
        }
    }

    /// ANDs the complement of `mask` into row `dst` (clears masked bits).
    /// The row's bounds stay valid: they over-approximate.
    pub fn clear_masked(&mut self, mask: &[u64], dst: usize) {
        let range = self.row_range(dst);
        simd::and_not(&mut self.bits[range], mask);
    }

    /// Iterates over the set bit positions of row `i`, scanning only its
    /// bounded word range.
    pub fn iter_row(&self, i: usize) -> BitIter<'_> {
        let (lo, hi) = self.row_bounds(i);
        BitIter::with_offset(&self.row(i)[lo..hi], lo)
    }

    /// Calls `f` with every set bit position of row `i` in ascending order,
    /// scanning only the bounded word range — the eager, chunked counterpart
    /// of [`BitMatrix::iter_row`] for the frontier-seeding hot path.
    pub fn for_each_set_in_row(&self, i: usize, f: impl FnMut(usize)) {
        let (lo, hi) = self.row_bounds(i);
        simd::for_each_set(&self.row(i)[lo..hi], lo, f);
    }

    /// Number of set bits in the whole matrix.
    pub fn count_ones(&self) -> usize {
        simd::count_ones(&self.bits)
    }

    /// Number of set bits in row `i`.
    pub fn row_count_ones(&self, i: usize) -> usize {
        simd::count_ones(self.row(i))
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix({}x{}, {} bits set)", self.n, self.n, self.count_ones())?;
        if self.n <= 32 {
            for i in 0..self.n {
                let row: String = (0..self.n).map(|j| if self.get(i, j) { '1' } else { '.' }).collect();
                writeln!(f, "  {i:>3} {row}")?;
            }
        }
        Ok(())
    }
}

/// Iterator over set bit positions of a word slice.
#[derive(Debug, Clone)]
pub struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    offset: usize,
    current: u64,
}

impl<'a> BitIter<'a> {
    /// Creates an iterator over the set bits of `words`.
    pub fn new(words: &'a [u64]) -> Self {
        Self::with_offset(words, 0)
    }

    /// Creates an iterator over the set bits of `words`, reporting
    /// positions as if the slice started at word `offset` of a larger row
    /// (used to iterate a row through its nonzero bounds).
    pub fn with_offset(words: &'a [u64], offset: usize) -> Self {
        BitIter {
            words,
            word_idx: 0,
            offset,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some((self.offset + self.word_idx) * 64 + bit)
    }
}

/// A standalone bit set sized for `n` node ids, used for thread masks and
/// the engine's dirty-node marks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates a set over ids `0..n`, initially empty.
    pub fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts `i`.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Tests membership of `i`.
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .map(|w| w & (1u64 << (i % 64)) != 0)
            .unwrap_or(false)
    }

    /// Removes every member (the backing storage is retained).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// The backing words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates over members.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter::new(&self.words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut m = BitMatrix::new(130);
        assert!(!m.get(3, 127));
        assert!(m.set(3, 127));
        assert!(!m.set(3, 127)); // already set
        assert!(m.get(3, 127));
        assert!(!m.get(127, 3));
        assert_eq!(m.count_ones(), 1);
    }

    #[test]
    fn or_row_into_merges_rows() {
        let mut m = BitMatrix::new(70);
        m.set(0, 5);
        m.set(0, 65);
        m.set(1, 7);
        assert!(m.or_row_into(0, 1));
        assert!(m.get(1, 5) && m.get(1, 65) && m.get(1, 7));
        assert!(!m.or_row_into(0, 1)); // second time: no change
        assert!(!m.or_row_into(0, 0)); // self-merge is a no-op
    }

    #[test]
    fn or_row_into_works_in_both_directions() {
        let mut m = BitMatrix::new(10);
        m.set(5, 1);
        assert!(m.or_row_into(5, 2)); // src after dst
        assert!(m.get(2, 1));
        m.set(0, 3);
        assert!(m.or_row_into(0, 7)); // src before dst
        assert!(m.get(7, 3));
    }

    #[test]
    fn row_bounds_track_nonzero_words() {
        let mut m = BitMatrix::new(64 * 5);
        assert_eq!(m.row_bounds(3), (0, 0)); // empty row
        m.set(3, 130); // word 2
        assert_eq!(m.row_bounds(3), (2, 3));
        m.set(3, 300); // word 4
        assert_eq!(m.row_bounds(3), (2, 5));
        m.set(3, 10); // word 0
        assert_eq!(m.row_bounds(3), (0, 5));
        // Bounds propagate through row merges.
        m.set(7, 70); // word 1
        m.or_row_into(3, 7);
        let (lo, hi) = m.row_bounds(7);
        assert!(lo == 0 && hi == 5);
    }

    #[test]
    fn bounds_are_conservative_and_excluded_from_eq() {
        let mut a = BitMatrix::new(200);
        let mut b = BitMatrix::new(200);
        // Same final contents, different op orders → possibly different
        // bounds, still equal.
        a.set(0, 150);
        a.set(0, 3);
        b.set(0, 3);
        b.set(0, 150);
        b.set(1, 9);
        b.or_row_into(1, 0); // widens row 0's bounds conservatively
        a.set(0, 9);
        a.set(1, 9);
        assert_eq!(a, b);
        // Every nonzero word is inside the bounds.
        for m in [&a, &b] {
            for i in 0..m.len() {
                let (lo, hi) = m.row_bounds(i);
                for (w, word) in m.row(i).iter().enumerate() {
                    if *word != 0 {
                        assert!(lo <= w && w < hi, "word {w} outside [{lo},{hi})");
                    }
                }
            }
        }
    }

    #[test]
    fn or_union_masked_into_composes_and_reports_new_bits() {
        let n = 130;
        let mut mt = BitMatrix::new(n);
        let mut st = BitMatrix::new(n);
        let mut mask = BitSet::new(n);
        mask.insert(7); // "same thread" bit: must not be recorded
        mt.set(5, 70);
        st.set(5, 7);
        st.set(5, 128);
        mt.set(2, 5);
        let mut new_bits = Vec::new();
        let touched = mt.or_union_masked_into(5, &st, mask.words(), 2, |b| new_bits.push(b));
        assert!(touched >= 2, "words touched spans both source rows");
        new_bits.sort_unstable();
        assert_eq!(new_bits, vec![70, 128], "7 masked out, 5 already set? no: 5 is dst bit");
        assert!(mt.get(2, 70) && mt.get(2, 128));
        assert!(!mt.get(2, 7), "masked bit stays clear");
        // Re-running adds nothing.
        let mut again = Vec::new();
        mt.or_union_masked_into(5, &st, mask.words(), 2, |b| again.push(b));
        assert!(again.is_empty());
    }

    #[test]
    fn or_union_masked_into_empty_sources_touches_nothing() {
        let mut mt = BitMatrix::new(70);
        let st = BitMatrix::new(70);
        let mask = BitSet::new(70);
        let touched = mt.or_union_masked_into(3, &st, mask.words(), 1, |_| panic!("no new bits"));
        assert_eq!(touched, 0);
    }

    #[test]
    fn iter_row_yields_sorted_positions() {
        let mut m = BitMatrix::new(200);
        for j in [0, 63, 64, 128, 199] {
            m.set(2, j);
        }
        let got: Vec<usize> = m.iter_row(2).collect();
        assert_eq!(got, vec![0, 63, 64, 128, 199]);
    }

    #[test]
    fn iter_row_respects_offset_bounds() {
        let mut m = BitMatrix::new(300);
        m.set(1, 170);
        m.set(1, 290);
        assert_eq!(m.row_bounds(1), (2, 5));
        assert_eq!(m.iter_row(1).collect::<Vec<_>>(), vec![170, 290]);
    }

    #[test]
    fn clear_masked_removes_bits() {
        let mut m = BitMatrix::new(70);
        m.set(0, 3);
        m.set(0, 68);
        let mut mask = BitSet::new(70);
        mask.insert(3);
        m.clear_masked(mask.words(), 0);
        assert!(!m.get(0, 3));
        assert!(m.get(0, 68));
    }

    #[test]
    fn or_words_into_reports_change() {
        let mut m = BitMatrix::new(70);
        let mut set = BitSet::new(70);
        set.insert(69);
        assert!(m.or_words_into(set.words(), 4));
        assert!(!m.or_words_into(set.words(), 4));
        assert!(m.get(4, 69));
        assert_eq!(m.iter_row(4).collect::<Vec<_>>(), vec![69]);
    }

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(100);
        assert!(!s.contains(99));
        s.insert(99);
        s.insert(0);
        assert!(s.contains(99) && s.contains(0) && !s.contains(50));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 99]);
        s.clear();
        assert!(!s.contains(99) && s.iter().next().is_none());
    }

    #[test]
    fn for_each_set_in_row_matches_iter_row() {
        let mut m = BitMatrix::new(300);
        for j in [1, 64, 130, 131, 299] {
            m.set(2, j);
        }
        let mut got = Vec::new();
        m.for_each_set_in_row(2, |b| got.push(b));
        assert_eq!(got, m.iter_row(2).collect::<Vec<_>>());
    }

    #[test]
    fn store_row_overwrites_bits_and_bounds() {
        let mut m = BitMatrix::new(130);
        m.set(1, 5);
        let mut words = vec![0u64; m.words_per_row()];
        words[2] = 0b1001;
        m.store_row(1, &words, 2, 3);
        assert_eq!(m.iter_row(1).collect::<Vec<_>>(), vec![128, 131]);
        assert_eq!(m.row_bounds(1), (2, 3));
        assert!(!m.get(1, 5));
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = BitMatrix::new(0);
        assert!(m.is_empty());
        assert_eq!(m.count_ones(), 0);
    }
}
