//! The `droidracer` command-line tool: offline race detection over trace
//! files in the text format of `droidracer_trace`.
//!
//! ```text
//! droidracer analyze <trace-file> [--mode MODE] [--no-merge] [--all]
//!                                  [--explain] [--dot FILE] [--coverage]
//! droidracer validate <trace-file>
//! droidracer stats <trace-file>
//! droidracer corpus <app-name> [--out FILE]   # dump a corpus trace
//! droidracer explore <app-name> [depth]       # systematic UI exploration
//! ```
//!
//! Modes: full (default), mt-only, async-only, naive-combined,
//! events-as-threads.

use std::process::ExitCode;

use droidracer::apps;
use droidracer::core::{Analysis, HbConfig, HbMode};
use droidracer::trace::{from_text, to_text, validate, Trace, TraceStats};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  droidracer analyze <trace-file> [--mode full|mt-only|async-only|naive-combined|events-as-threads] [--no-merge] [--all]\n  droidracer validate <trace-file>\n  droidracer stats <trace-file>\n  droidracer corpus <app-name> [--out FILE]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    from_text(&text).map_err(|e| e.to_string())
}

fn parse_mode(s: &str) -> Option<HbMode> {
    Some(match s {
        "full" | "droidracer" => HbMode::Full,
        "mt-only" => HbMode::MultithreadedOnly,
        "async-only" => HbMode::AsyncOnly,
        "naive-combined" => HbMode::NaiveCombined,
        "events-as-threads" => HbMode::EventsAsThreads,
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "analyze" => {
            let Some(path) = args.get(1) else { return usage() };
            let mut mode = HbMode::Full;
            let mut merge = true;
            let mut show_all = false;
            let mut explain_races = false;
            let mut coverage = false;
            let mut dot_file: Option<String> = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--mode" => {
                        let Some(m) = args.get(i + 1).and_then(|s| parse_mode(s)) else {
                            return usage();
                        };
                        mode = m;
                        i += 2;
                    }
                    "--no-merge" => {
                        merge = false;
                        i += 1;
                    }
                    "--all" => {
                        show_all = true;
                        i += 1;
                    }
                    "--explain" => {
                        explain_races = true;
                        i += 1;
                    }
                    "--coverage" => {
                        coverage = true;
                        i += 1;
                    }
                    "--dot" => {
                        let Some(f) = args.get(i + 1) else { return usage() };
                        dot_file = Some(f.clone());
                        i += 2;
                    }
                    _ => return usage(),
                }
            }
            let trace = match load(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut config = HbConfig::for_mode(mode);
            config.merge_accesses = merge;
            let analysis = Analysis::run_with(&trace, config);
            println!(
                "mode={mode} nodes={} ({:.1}% of {} ops), {} fixpoint round(s)",
                analysis.hb().graph().node_count(),
                analysis.hb().graph().reduction_ratio() * 100.0,
                analysis.trace().len(),
                analysis.hb().rounds(),
            );
            print!("{}", analysis.render());
            if show_all {
                println!("all block-pair races: {}", analysis.races().len());
            }
            if explain_races {
                for cr in analysis.representatives() {
                    print!("{}", droidracer::core::explain(&analysis, &cr.race));
                }
            }
            if coverage {
                let report = droidracer::core::race_coverage(&analysis);
                println!(
                    "race coverage: {} root cause(s), {} covered report(s)",
                    report.roots.len(),
                    report.covered.len()
                );
                let names = analysis.trace().names();
                for (k, root) in report.roots.iter().enumerate() {
                    println!("  root #{k}: [{}] {}", root.category, names.loc_name(root.race.loc));
                }
                for (cr, by) in &report.covered {
                    let attribution = by
                        .map(|k| format!("root #{k}"))
                        .unwrap_or_else(|| "a coverage chain".to_owned());
                    println!(
                        "  covered: [{}] {} — by {attribution}",
                        cr.category,
                        names.loc_name(cr.race.loc)
                    );
                }
            }
            if let Some(file) = dot_file {
                let dot = droidracer::core::to_dot(&analysis);
                if let Err(e) = std::fs::write(&file, dot) {
                    eprintln!("cannot write {file}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("happens-before graph written to {file}");
            }
            if analysis.races().is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "validate" => {
            let Some(path) = args.get(1) else { return usage() };
            match load(path).map(|t| validate(&t)) {
                Ok(Ok(())) => {
                    println!("ok: trace satisfies the concurrency semantics");
                    ExitCode::SUCCESS
                }
                Ok(Err(e)) => {
                    eprintln!("invalid: {e}");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "stats" => {
            let Some(path) = args.get(1) else { return usage() };
            match load(path) {
                Ok(t) => {
                    println!("{}", TraceStats::of(&t));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "corpus" => {
            let Some(name) = args.get(1) else { return usage() };
            let entry = apps::corpus()
                .into_iter()
                .find(|e| e.name.eq_ignore_ascii_case(name));
            let Some(entry) = entry else {
                eprintln!(
                    "unknown app `{name}`; available: {}",
                    apps::corpus()
                        .iter()
                        .map(|e| e.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::FAILURE;
            };
            let trace = match entry.generate_trace() {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let text = to_text(&trace);
            match args.get(2).map(String::as_str) {
                Some("--out") => {
                    let Some(file) = args.get(3) else { return usage() };
                    if let Err(e) = std::fs::write(file, text) {
                        eprintln!("cannot write {file}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("wrote {} ops to {file}", trace.len());
                }
                None => print!("{text}"),
                _ => return usage(),
            }
            ExitCode::SUCCESS
        }
        "explore" => {
            let Some(name) = args.get(1) else { return usage() };
            let depth: usize = args
                .get(2)
                .and_then(|d| d.parse().ok())
                .unwrap_or(2);
            let entry = apps::corpus()
                .into_iter()
                .find(|e| e.name.eq_ignore_ascii_case(name));
            let Some(entry) = entry else {
                eprintln!("unknown app `{name}`");
                return ExitCode::FAILURE;
            };
            match entry.explore(depth, 64) {
                Ok(summary) => {
                    println!(
                        "{}: {} tests (depth {depth}), {} manifested races; {} racy locations; union {}",
                        entry.name,
                        summary.tests,
                        summary.racy_tests,
                        summary.racy_locations,
                        summary.union
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
