//! Experiment E4 — regenerates the analysis of **Figures 3 and 4**: the
//! music-player execution traces of §2 with their happens-before edges and
//! races.
//!
//! * Figure 3 (the user presses PLAY): the conflicting pairs (7,12) and
//!   (7,16) are *ordered* — via the fork edge (a), the post→begin edge (b)
//!   and the derived thread-local edge (c) — so no race is reported.
//! * Figure 4 (the user presses BACK): `onDestroy` races with both the
//!   background read (operation 12 vs 21, multi-threaded) and the
//!   `onPostExecute` read (16 vs 21, single-threaded); the write pair
//!   (7, 21) is ordered through the enable edge and is NOT a race.
//!
//! The binary builds the exact traces from the paper and prints each edge
//! and verdict, then cross-checks with a simulated run of the framework
//! model of the same app.
//!
//! Run with `cargo run --release -p droidracer-bench --bin fig3_fig4`.

use droidracer_core::{Analysis, AnalysisBuilder, RaceCategory};
use droidracer_framework::{compile, AppBuilder, Stmt, UiEvent, UiEventKind};
use droidracer_sim::{run, RandomScheduler, SimConfig};
use droidracer_trace::{ThreadKind, Trace, TraceBuilder, validate};

/// Builds the trace of Figure 3 (PLAY pressed) or Figure 4 (BACK pressed).
///
/// Operation numbering follows the paper exactly (1-based in the figures;
/// the returned indices are 0-based, so paper op *n* is index *n − 1*).
fn paper_trace(back: bool) -> Trace {
    let mut b = TraceBuilder::new();
    let t0 = b.thread("binder", ThreadKind::Binder, true); // t0
    let t1 = b.thread("main", ThreadKind::Main, true); // t1
    let t2 = b.thread("background", ThreadKind::App, false); // t2
    let launch = b.task("LAUNCH_ACTIVITY");
    let post_execute = b.task("onPostExecute");
    let on_destroy = b.task("onDestroy");
    let on_play = b.task("onPlayClick");
    let on_pause = b.task("onPause");
    let obj = b.loc("DwFileAct-obj", "DwFileAct.isActivityDestroyed");

    b.thread_init(t1); // 1
    b.attach_q(t1); // 2
    b.loop_on_q(t1); // 3
    b.enable(t1, launch); // 4
    // The binder thread must be running to post (implicit in the paper).
    b.thread_init(t0);
    b.post(t0, launch, t1); // 5
    b.begin(t1, launch); // 6
    b.write(t1, obj); // 7
    b.fork(t1, t2); // 8
    b.enable(t1, on_destroy); // 9
    b.end(t1, launch); // 10
    b.thread_init(t2); // 11
    b.read(t2, obj); // 12
    b.post(t2, post_execute, t1); // 13
    b.thread_exit(t2); // 14
    b.begin(t1, post_execute); // 15
    b.read(t1, obj); // 16
    b.enable(t1, on_play); // 17
    b.end(t1, post_execute); // 18
    if back {
        b.post(t0, on_destroy, t1); // 19
        b.begin(t1, on_destroy); // 20
        b.write(t1, obj); // 21
        b.end(t1, on_destroy); // 22
    } else {
        b.post(t1, on_play, t1); // 19
        b.begin(t1, on_play); // 20
        b.enable(t1, on_pause); // 21
        b.end(t1, on_play); // 22
        b.post(t0, on_pause, t1); // 23
    }
    b.finish()
}

fn check(analysis: &Analysis, label: &str, i: usize, j: usize) {
    // Paper ops are 1-based; adjust for the extra threadinit(t0) we insert
    // before op 5 (index shifts by one from there on).
    let adj = |n: usize| if n >= 5 { n } else { n - 1 };
    let (a, b) = (adj(i), adj(j));
    let ordered = analysis.hb().ordered(a, b);
    let race = analysis
        .races()
        .iter()
        .find(|cr| {
            (cr.race.first == a && cr.race.second == b)
                || (cr.race.first == b && cr.race.second == a)
        });
    match race {
        Some(cr) => println!("  ops ({i},{j}) {label}: RACE [{}]", cr.category),
        None => println!(
            "  ops ({i},{j}) {label}: {}",
            if ordered { "ordered (no race)" } else { "no report" }
        ),
    }
}

fn main() {
    println!("=== Figure 3: the user presses PLAY ===");
    let fig3 = paper_trace(false);
    validate(&fig3).expect("Figure 3 trace is feasible");
    let analysis = AnalysisBuilder::new().analyze(&fig3).unwrap();
    println!("trace:\n{fig3}");
    println!(
        "happens-before edges of the figure: a (fork→init) {}, b (post→begin) {}, c (end LAUNCH ≺ begin onPostExecute) {}, d (enable→post onPlayClick) {}, e (enable→post onPause) {}",
        analysis.hb().ordered(8, 11),
        analysis.hb().ordered(13, 15),
        analysis.hb().ordered(10, 15),
        analysis.hb().ordered(17, 19),
        analysis.hb().ordered(21, 23),
    );
    check(&analysis, "write vs bg read", 7, 12);
    check(&analysis, "write vs onPostExecute read", 7, 16);
    println!("  total races reported: {}\n", analysis.races().len());

    println!("=== Figure 4: the user presses BACK ===");
    let fig4 = paper_trace(true);
    validate(&fig4).expect("Figure 4 trace is feasible");
    let analysis = AnalysisBuilder::new().analyze(&fig4).unwrap();
    println!("trace:\n{fig4}");
    check(&analysis, "bg read vs onDestroy write", 12, 21);
    check(&analysis, "onPostExecute read vs onDestroy write", 16, 21);
    check(&analysis, "LAUNCH write vs onDestroy write", 7, 21);
    println!("  total races reported: {}\n", analysis.races().len());

    println!("=== Cross-check: simulated music player (framework model) ===");
    let mut b = AppBuilder::new("MusicPlayer");
    let act = b.activity("DwFileAct");
    let player = b.activity("MusicPlayActivity");
    let flag = b.var("DwFileAct-obj", "isActivityDestroyed");
    let dl = b.async_task(
        "FileDwTask",
        vec![],
        vec![Stmt::Read(flag), Stmt::PublishProgress],
        vec![],
        vec![Stmt::Read(flag)],
    );
    b.on_create(act, vec![Stmt::Write(flag)]);
    b.on_resume(act, vec![Stmt::ExecuteAsyncTask(dl)]);
    b.on_destroy(act, vec![Stmt::Write(flag)]);
    let play = b.button(act, "playBtn", vec![Stmt::StartActivity(player)]);
    let app = b.finish();

    for (label, events) in [
        ("PLAY", vec![UiEvent::Widget(play, UiEventKind::Click)]),
        ("BACK", vec![UiEvent::Back]),
    ] {
        let compiled = compile(&app, &events).expect("compiles");
        let result = run(
            &compiled.program,
            &mut RandomScheduler::new(3),
            &SimConfig::default(),
        )
        .expect("runs");
        let analysis = AnalysisBuilder::new().analyze(&result.trace).unwrap();
        let mt = analysis.count(RaceCategory::Multithreaded);
        let xp = analysis.count(RaceCategory::CrossPosted);
        println!(
            "  {label}: {} ops, races on isActivityDestroyed: multithreaded={mt} cross-posted={xp}",
            result.trace.len(),
        );
    }
    println!("\n(paper: PLAY scenario race-free on the flag; BACK scenario has the two races)");
}
