//! Experiment E1 — regenerates **Table 2**: statistics about applications
//! and traces (trace length, distinct fields, threads without/with task
//! queues, asynchronous tasks), measured on the synthetic corpus next to the
//! paper's numbers.
//!
//! Run with `cargo run --release -p droidracer-bench --bin table2`.

use droidracer_apps::corpus;
use droidracer_bench::{maybe_export_profile, vs, TextTable};
use droidracer_core::{default_threads, par_map_profiled};
use droidracer_obs::MetricsRegistry;
use droidracer_trace::TraceStats;

fn main() {
    let mut table = TextTable::new([
        "Application (LOC)",
        "Trace length",
        "Fields",
        "Threads (w/o Qs)",
        "Threads (w/ Qs)",
        "Async. tasks",
    ]);
    println!("Table 2: statistics about applications and traces");
    println!("(measured on the synthetic corpus; paper-reported numbers in parentheses)\n");
    // Trace generation is per-entry work: fan it out, render in corpus order.
    let entries = corpus();
    let (traces, span) = par_map_profiled(&entries, default_threads(), "generate", |entry, rec| {
        let trace = entry.generate_trace();
        if let Ok(t) = &trace {
            rec.counter("ops", t.len() as u64);
        }
        trace
    });
    let mut registry = MetricsRegistry::new();
    let mut was_open_source = true;
    for (entry, trace) in entries.iter().zip(traces) {
        if was_open_source && !entry.open_source {
            table.rule();
            was_open_source = false;
        }
        let trace = match trace {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: {e}", entry.name);
                continue;
            }
        };
        let stats = TraceStats::of(&trace);
        registry.counter_add("trace.ops", stats.trace_length as u64);
        registry.counter_add("trace.fields", stats.fields as u64);
        registry.counter_add("trace.async_tasks", stats.async_tasks as u64);
        let p = &entry.paper;
        let name = match p.loc {
            Some(loc) => format!("{} ({loc})", entry.name),
            None => entry.name.to_owned(),
        };
        table.row([
            name,
            vs(stats.trace_length, p.trace_length),
            vs(stats.fields, p.fields),
            vs(stats.threads_without_queues, p.threads_without_queues),
            vs(stats.threads_with_queues, p.threads_with_queues),
            vs(stats.async_tasks, p.async_tasks),
        ]);
    }
    println!("{}", table.render());
    maybe_export_profile(&span, &registry);
}
