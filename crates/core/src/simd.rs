//! Chunked word kernels for the bit-matrix hot path.
//!
//! Every kernel the closure engine spends its time in — row OR, masked
//! union-OR with new-bit collection, range-tracked OR, masked clear,
//! population count and set-bit scan — lives here in two forms:
//!
//! * a **chunked** form processing `LANES` (= 4) words per step with a
//!   scalar tail. The chunk bodies are straight-line, branch-light loops
//!   over fixed-width arrays, the shape LLVM's autovectorizer reliably
//!   turns into 256-bit SIMD on x86-64 and NEON pairs on aarch64 — without
//!   `unsafe`, nightly intrinsics or any dependency (the crate forbids
//!   unsafe code);
//! * a `_scalar` **reference** form, one word at a time, kept `pub` so the
//!   differential tests (`tests/simd_kernels.rs`, the unit tests below) and
//!   `kernel_bench` can pin the chunked form bit-identical to it.
//!
//! The kernels are *pure slice transforms*: they neither count `word_ops`
//! nor touch row bounds. Callers ([`BitMatrix`](crate::bitmatrix::BitMatrix),
//! the streaming column store) slice rows to their nonzero `[lo, hi)`
//! bounds first and do their own accounting, so swapping scalar loops for
//! these kernels cannot change any deterministic counter — only the time
//! per word.

/// Words processed per chunk step. Four `u64`s match one AVX2 register and
/// two NEON registers; wider chunks only add tail overhead on the short
/// rows the engine mostly sees.
const LANES: usize = 4;

/// ORs `src` into `dst` element-wise over their common prefix. Returns
/// `true` iff `dst` changed (some bit of `src` was not already set).
pub fn or_into(dst: &mut [u64], src: &[u64]) -> bool {
    let n = dst.len().min(src.len());
    let (dst, src) = (&mut dst[..n], &src[..n]);
    // `added` accumulates src-bits missing from dst, one accumulator per
    // lane so the chunk body carries no cross-lane dependency.
    let mut added = [0u64; LANES];
    let mut d_chunks = dst.chunks_exact_mut(LANES);
    let mut s_chunks = src.chunks_exact(LANES);
    for (dc, sc) in (&mut d_chunks).zip(&mut s_chunks) {
        for l in 0..LANES {
            added[l] |= sc[l] & !dc[l];
            dc[l] |= sc[l];
        }
    }
    let mut tail = 0u64;
    for (dw, sw) in d_chunks
        .into_remainder()
        .iter_mut()
        .zip(s_chunks.remainder())
    {
        tail |= sw & !*dw;
        *dw |= sw;
    }
    added.iter().fold(tail, |acc, &a| acc | a) != 0
}

/// Scalar reference for [`or_into`].
pub fn or_into_scalar(dst: &mut [u64], src: &[u64]) -> bool {
    let mut changed = false;
    for (dw, sw) in dst.iter_mut().zip(src) {
        let new = *dw | *sw;
        changed |= new != *dw;
        *dw = new;
    }
    changed
}

/// ORs `src` into `dst` and reports the exact word range that changed as
/// `Some((wlo, whi))` (`whi` one past the last changed word), or `None` if
/// nothing changed. Indices are relative to the slices.
pub fn or_into_track(dst: &mut [u64], src: &[u64]) -> Option<(usize, usize)> {
    let n = dst.len().min(src.len());
    let (dst, src) = (&mut dst[..n], &src[..n]);
    let (mut wlo, mut whi) = (usize::MAX, 0usize);
    let mut base = 0usize;
    let mut d_chunks = dst.chunks_exact_mut(LANES);
    let mut s_chunks = src.chunks_exact(LANES);
    for (dc, sc) in (&mut d_chunks).zip(&mut s_chunks) {
        let mut added = [0u64; LANES];
        for l in 0..LANES {
            added[l] = sc[l] & !dc[l];
            dc[l] |= sc[l];
        }
        // Range bookkeeping only runs for chunks that changed something,
        // keeping the common all-covered chunk branch-free.
        if added.iter().any(|&a| a != 0) {
            for (l, &a) in added.iter().enumerate() {
                if a != 0 {
                    wlo = wlo.min(base + l);
                    whi = base + l + 1;
                }
            }
        }
        base += LANES;
    }
    for (dw, sw) in d_chunks
        .into_remainder()
        .iter_mut()
        .zip(s_chunks.remainder())
    {
        if sw & !*dw != 0 {
            wlo = wlo.min(base);
            whi = base + 1;
        }
        *dw |= sw;
        base += 1;
    }
    (wlo < whi).then_some((wlo, whi))
}

/// Scalar reference for [`or_into_track`].
pub fn or_into_track_scalar(dst: &mut [u64], src: &[u64]) -> Option<(usize, usize)> {
    let (mut wlo, mut whi) = (usize::MAX, 0usize);
    for (w, (dw, sw)) in dst.iter_mut().zip(src).enumerate() {
        let new = *dw | *sw;
        if new != *dw {
            wlo = wlo.min(w);
            whi = w + 1;
        }
        *dw = new;
    }
    (wlo < whi).then_some((wlo, whi))
}

/// The TRANS-MT composition kernel: ORs `(a[w] | b[w]) & !mask[w]` into
/// `dst[w]`, invoking `on_new` with `(word_offset + w) * 64 + bit` for
/// every bit this newly sets, in ascending position order. Words of `dst`
/// that gain no bit are left unwritten. Returns `true` iff `dst` changed.
///
/// All four slices must have equal length (the caller slices them to the
/// union of the two source rows' bounds).
pub fn union_masked_collect(
    a: &[u64],
    b: &[u64],
    mask: &[u64],
    dst: &mut [u64],
    word_offset: usize,
    mut on_new: impl FnMut(usize),
) -> bool {
    debug_assert!(a.len() == dst.len() && b.len() == dst.len() && mask.len() == dst.len());
    let mut changed = false;
    let mut base = 0usize;
    let mut d_chunks = dst.chunks_exact_mut(LANES);
    let mut a_chunks = a.chunks_exact(LANES);
    let mut b_chunks = b.chunks_exact(LANES);
    let mut m_chunks = mask.chunks_exact(LANES);
    for (((dc, ac), bc), mc) in (&mut d_chunks)
        .zip(&mut a_chunks)
        .zip(&mut b_chunks)
        .zip(&mut m_chunks)
    {
        let mut val = [0u64; LANES];
        let mut added = [0u64; LANES];
        for l in 0..LANES {
            val[l] = (ac[l] | bc[l]) & !mc[l];
            added[l] = val[l] & !dc[l];
        }
        // The bit-drain is rare and inherently scalar; keep it out of the
        // vectorizable chunk body behind one any-lane test.
        if added.iter().any(|&x| x != 0) {
            changed = true;
            for l in 0..LANES {
                let mut add = added[l];
                if add != 0 {
                    dc[l] |= val[l];
                    while add != 0 {
                        on_new((word_offset + base + l) * 64 + add.trailing_zeros() as usize);
                        add &= add - 1;
                    }
                }
            }
        }
        base += LANES;
    }
    for (((dw, aw), bw), mw) in d_chunks
        .into_remainder()
        .iter_mut()
        .zip(a_chunks.remainder())
        .zip(b_chunks.remainder())
        .zip(m_chunks.remainder())
    {
        let val = (aw | bw) & !mw;
        let mut add = val & !*dw;
        if add != 0 {
            changed = true;
            *dw |= val;
            while add != 0 {
                on_new((word_offset + base) * 64 + add.trailing_zeros() as usize);
                add &= add - 1;
            }
        }
        base += 1;
    }
    changed
}

/// Scalar reference for [`union_masked_collect`].
pub fn union_masked_collect_scalar(
    a: &[u64],
    b: &[u64],
    mask: &[u64],
    dst: &mut [u64],
    word_offset: usize,
    mut on_new: impl FnMut(usize),
) -> bool {
    let mut changed = false;
    for (w, dw) in dst.iter_mut().enumerate() {
        let val = (a[w] | b[w]) & !mask[w];
        let mut added = val & !*dw;
        if added != 0 {
            changed = true;
            *dw |= val;
            while added != 0 {
                on_new((word_offset + w) * 64 + added.trailing_zeros() as usize);
                added &= added - 1;
            }
        }
    }
    changed
}

/// Clears every `mask` bit from `dst` (`dst &= !mask`) over the common
/// prefix.
pub fn and_not(dst: &mut [u64], mask: &[u64]) {
    let n = dst.len().min(mask.len());
    let (dst, mask) = (&mut dst[..n], &mask[..n]);
    let mut d_chunks = dst.chunks_exact_mut(LANES);
    let mut m_chunks = mask.chunks_exact(LANES);
    for (dc, mc) in (&mut d_chunks).zip(&mut m_chunks) {
        for l in 0..LANES {
            dc[l] &= !mc[l];
        }
    }
    for (dw, mw) in d_chunks
        .into_remainder()
        .iter_mut()
        .zip(m_chunks.remainder())
    {
        *dw &= !mw;
    }
}

/// Scalar reference for [`and_not`].
pub fn and_not_scalar(dst: &mut [u64], mask: &[u64]) {
    for (dw, mw) in dst.iter_mut().zip(mask) {
        *dw &= !mw;
    }
}

/// Total set bits in `words`.
pub fn count_ones(words: &[u64]) -> usize {
    let mut lanes = [0usize; LANES];
    let mut chunks = words.chunks_exact(LANES);
    for c in &mut chunks {
        for l in 0..LANES {
            lanes[l] += c[l].count_ones() as usize;
        }
    }
    let tail: usize = chunks.remainder().iter().map(|w| w.count_ones() as usize).sum();
    lanes.iter().sum::<usize>() + tail
}

/// Scalar reference for [`count_ones`].
pub fn count_ones_scalar(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Calls `f` with `(word_offset + w) * 64 + bit` for every set bit of
/// `words`, in ascending position order — the watcher/frontier row scan.
/// Chunks that are entirely zero are skipped with one branch.
pub fn for_each_set(words: &[u64], word_offset: usize, mut f: impl FnMut(usize)) {
    let mut base = 0usize;
    let mut chunks = words.chunks_exact(LANES);
    for c in &mut chunks {
        if c.iter().any(|&w| w != 0) {
            for (l, &w) in c.iter().enumerate() {
                let mut w = w;
                while w != 0 {
                    f((word_offset + base + l) * 64 + w.trailing_zeros() as usize);
                    w &= w - 1;
                }
            }
        }
        base += LANES;
    }
    for &w in chunks.remainder() {
        let mut w = w;
        while w != 0 {
            f((word_offset + base) * 64 + w.trailing_zeros() as usize);
            w &= w - 1;
        }
        base += 1;
    }
}

/// Scalar reference for [`for_each_set`].
pub fn for_each_set_scalar(words: &[u64], word_offset: usize, mut f: impl FnMut(usize)) {
    for (w, &word) in words.iter().enumerate() {
        let mut word = word;
        while word != 0 {
            f((word_offset + w) * 64 + word.trailing_zeros() as usize);
            word &= word - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift word stream for edge-case fuzzing without an
    /// RNG dependency.
    fn words(seed: u64, len: usize, density: u32) -> Vec<u64> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                let mut w = 0u64;
                for _ in 0..density {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    w |= 1u64 << (s % 64);
                }
                w
            })
            .collect()
    }

    /// Lengths covering empty, sub-chunk, exact-chunk and unaligned tails.
    const LENS: [usize; 8] = [0, 1, 3, 4, 5, 8, 13, 67];

    #[test]
    fn or_into_matches_scalar_and_reports_change() {
        for len in LENS {
            for (sa, sb) in [(1, 2), (3, 3), (9, 4)] {
                let src = words(sa, len, 6);
                let base = words(sb, len, 6);
                let mut d1 = base.clone();
                let mut d2 = base.clone();
                let c1 = or_into(&mut d1, &src);
                let c2 = or_into_scalar(&mut d2, &src);
                assert_eq!(d1, d2, "len={len}");
                assert_eq!(c1, c2, "len={len}");
                // Idempotent re-run never reports change.
                assert!(!or_into(&mut d1, &src), "len={len}");
            }
        }
    }

    #[test]
    fn or_into_track_matches_scalar_exactly() {
        for len in LENS {
            let src = words(5, len, 4);
            let base = words(11, len, 4);
            let mut d1 = base.clone();
            let mut d2 = base;
            assert_eq!(
                or_into_track(&mut d1, &src),
                or_into_track_scalar(&mut d2, &src),
                "len={len}"
            );
            assert_eq!(d1, d2, "len={len}");
            assert_eq!(or_into_track(&mut d1, &src), None, "len={len}");
        }
    }

    #[test]
    fn or_into_track_single_word_change_is_tight() {
        let mut dst = vec![0u64; 9];
        let mut src = vec![0u64; 9];
        src[6] = 0b100;
        assert_eq!(or_into_track(&mut dst, &src), Some((6, 7)));
    }

    #[test]
    fn union_masked_collect_matches_scalar_bits_and_order() {
        for len in LENS {
            let a = words(21, len, 5);
            let b = words(22, len, 5);
            let mask = words(23, len, 3);
            let base = words(24, len, 2);
            let mut d1 = base.clone();
            let mut d2 = base;
            let mut n1 = Vec::new();
            let mut n2 = Vec::new();
            let c1 = union_masked_collect(&a, &b, &mask, &mut d1, 7, |p| n1.push(p));
            let c2 = union_masked_collect_scalar(&a, &b, &mask, &mut d2, 7, |p| n2.push(p));
            assert_eq!(d1, d2, "len={len}");
            assert_eq!(c1, c2, "len={len}");
            assert_eq!(n1, n2, "new-bit order must match, len={len}");
            assert!(n1.windows(2).all(|w| w[0] < w[1]), "ascending, len={len}");
        }
    }

    #[test]
    fn union_masked_collect_never_sets_masked_bits() {
        let a = vec![u64::MAX; 5];
        let b = vec![u64::MAX; 5];
        let mask = vec![0xAAAA_AAAA_AAAA_AAAAu64; 5];
        let mut dst = vec![0u64; 5];
        union_masked_collect(&a, &b, &mask, &mut dst, 0, |_| {});
        assert!(dst.iter().all(|&w| w == !0xAAAA_AAAA_AAAA_AAAAu64));
    }

    #[test]
    fn and_not_and_count_ones_match_scalar() {
        for len in LENS {
            let mask = words(31, len, 8);
            let base = words(32, len, 8);
            let mut d1 = base.clone();
            let mut d2 = base.clone();
            and_not(&mut d1, &mask);
            and_not_scalar(&mut d2, &mask);
            assert_eq!(d1, d2, "len={len}");
            assert_eq!(count_ones(&base), count_ones_scalar(&base), "len={len}");
        }
    }

    #[test]
    fn for_each_set_matches_scalar_in_order() {
        for len in LENS {
            let w = words(41, len, 5);
            let mut p1 = Vec::new();
            let mut p2 = Vec::new();
            for_each_set(&w, 3, |p| p1.push(p));
            for_each_set_scalar(&w, 3, |p| p2.push(p));
            assert_eq!(p1, p2, "len={len}");
            assert!(p1.windows(2).all(|x| x[0] < x[1]), "len={len}");
        }
    }

    #[test]
    fn kernels_accept_shorter_src_than_dst() {
        // or_into/and_not operate on the common prefix — the streaming
        // column store ORs short predecessor columns into longer ones.
        let mut dst = vec![0u64; 10];
        let src = vec![u64::MAX; 4];
        assert!(or_into(&mut dst, &src));
        assert_eq!(count_ones(&dst), 4 * 64);
        and_not(&mut dst, &src);
        assert_eq!(count_ones(&dst), 0);
    }
}
