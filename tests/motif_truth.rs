//! Ground-truth oracle suite: every catalog application — the 15 paper
//! apps and the 7 component-automaton apps — must recover *exactly* its
//! planted [`droidracer::apps::RaceTruth`] set.
//!
//! "Exactly" means four things, all checked per app:
//!
//! * every reported representative sits on a planted field (no unplanned
//!   reports),
//! * every planted field is reported (no silent misses),
//! * the measured [`droidracer::apps::RaceCategory`] equals the planted one
//!   field by field (not just in aggregate),
//! * replay agrees with the true/false annotation: planted true races are
//!   witnessable by schedule replay ([`VerifyOutcome::Reordered`]) and
//!   planted false positives — pairs ordered by synchronization the tracer
//!   cannot see — are not.

use std::collections::BTreeMap;

use droidracer::apps::{
    component_corpus, corpus, open_source_corpus, verify_race, RaceCategory, VerifyOutcome,
};

/// field → measured category, one entry per reported representative. An
/// app whose detection is exact produces precisely its truth table here.
fn measured_map(entry: &droidracer::apps::CorpusEntry) -> BTreeMap<String, RaceCategory> {
    let report = entry.analyze().expect("entry analyzes");
    let names = report.analysis.trace().names();
    let mut measured = BTreeMap::new();
    for cr in report.analysis.representatives() {
        let field = names.field_name(cr.race.loc.field);
        let prev = measured.insert(field.clone(), cr.category);
        assert!(
            prev.is_none(),
            "{}: field {field} reported under two categories",
            entry.name
        );
    }
    measured
}

#[test]
fn every_catalog_app_recovers_exactly_the_planted_races() {
    let mut entries = corpus();
    entries.extend(component_corpus());
    for entry in entries {
        let measured = measured_map(&entry);
        let planted: BTreeMap<String, RaceCategory> = entry
            .truth
            .iter()
            .map(|(f, t)| (f.clone(), t.category))
            .collect();
        assert_eq!(
            measured, planted,
            "{}: reported (field, category) set differs from the planted truth",
            entry.name
        );
    }
}

#[test]
fn catalog_reports_carry_zero_unplanned_and_zero_misclassified() {
    // Redundant with the exact-set check above, but phrased through the
    // production diagnostics so those stay honest too.
    let mut entries = corpus();
    entries.extend(component_corpus());
    for entry in entries {
        let report = entry.analyze().expect("entry analyzes");
        assert_eq!(report.unplanned(&entry.truth), 0, "{}", entry.name);
        assert_eq!(
            report.misclassified(&entry.truth),
            Vec::new(),
            "{}",
            entry.name
        );
        assert_eq!(
            report.reported.total(),
            entry.truth.len(),
            "{}: reported count != planted count",
            entry.name
        );
        let planted_true = entry.truth.values().filter(|t| t.is_true).count();
        assert_eq!(
            report.verified.total(),
            planted_true,
            "{}: verified count != planted trues",
            entry.name
        );
    }
}

#[test]
fn component_truth_annotations_agree_with_replay() {
    // The component corpus is small enough to witness every annotation:
    // true races reorder under an alternative schedule, false positives
    // (ordered by untracked joins/enables) never do.
    for entry in component_corpus() {
        for (field, truth) in &entry.truth {
            let outcome = verify_race(&entry, field, 60).expect("verification runs");
            let expected = if truth.is_true {
                VerifyOutcome::Reordered
            } else {
                VerifyOutcome::NotReordered
            };
            assert_eq!(
                outcome, expected,
                "{} field {field}: planted is_true={} but replay says {outcome:?} ({})",
                entry.name, truth.is_true, truth.note
            );
        }
    }
}

#[test]
fn open_source_truth_annotations_agree_with_replay_sampled() {
    // The paper corpus plants hundreds of races; witness one true and one
    // false annotation per open-source app (BTreeMap order makes the
    // sample deterministic).
    for entry in open_source_corpus() {
        let one_true = entry.truth.iter().find(|(_, t)| t.is_true);
        let one_false = entry.truth.iter().find(|(_, t)| !t.is_true);
        for (field, truth) in one_true.into_iter().chain(one_false) {
            let outcome = verify_race(&entry, field, 60).expect("verification runs");
            let expected = if truth.is_true {
                VerifyOutcome::Reordered
            } else {
                VerifyOutcome::NotReordered
            };
            assert_eq!(
                outcome, expected,
                "{} field {field}: planted is_true={} but replay says {outcome:?}",
                entry.name, truth.is_true
            );
        }
    }
}

#[test]
fn serial_executor_handoff_stays_silent() {
    // The Upload Queue app contains deliberately unsynchronized-looking
    // writes from two queued intents to the same IntentService; the
    // per-component FIFO orders them, so they are *not* planted as races
    // and the detector must stay silent about them (checked implicitly by
    // the exact-set test, pinned explicitly here).
    let entry = component_corpus()
        .into_iter()
        .find(|e| e.name == "Upload Queue")
        .expect("Upload Queue exists");
    let report = entry.analyze().expect("entry analyzes");
    let names = report.analysis.trace().names();
    for cr in report.analysis.representatives() {
        let field = names.field_name(cr.race.loc.field);
        assert!(
            !field.starts_with("isvc.safe."),
            "serial-executor handoff field {field} was reported as a race"
        );
    }
}
