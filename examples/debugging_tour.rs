//! The debugging toolkit: race explanations, coverage triage and Graphviz
//! export — the paper's concluding "better debugging support" implemented.
//!
//! The app under test hands data between threads through a hand-rolled flag
//! (ad-hoc synchronization, a classic §6 false-positive source): the
//! detector reports races on the flag AND on everything it guards; coverage
//! triage collapses them to the single root cause.
//!
//! Run with `cargo run --example debugging_tour`.

use droidracer::core::{explain, race_coverage, to_dot, AnalysisBuilder};
use droidracer::trace::{ThreadKind, TraceBuilder};

fn main() {
    // A producer thread fills three payload fields, then raises `ready`;
    // the consumer polls `ready` and reads the payload. No tracked
    // synchronization anywhere.
    let mut b = TraceBuilder::new();
    let main = b.thread("main", ThreadKind::Main, true);
    let producer = b.thread("producer", ThreadKind::App, false);
    let title = b.loc("Document-obj", "title");
    let body = b.loc("Document-obj", "body");
    let footer = b.loc("Document-obj", "footer");
    let ready = b.loc("Document-obj", "ready");
    b.thread_init(main);
    b.fork(main, producer);
    b.thread_init(producer);
    b.write(producer, title);
    b.write(producer, body);
    b.write(producer, footer);
    b.write(producer, ready);
    b.read(main, ready); // the busy-wait poll
    b.read(main, title);
    b.read(main, body);
    b.read(main, footer);
    let trace = b.finish();

    let analysis = AnalysisBuilder::new().analyze(&trace).unwrap();
    println!("{}", analysis.render());
    assert_eq!(analysis.representatives().len(), 4);

    // 1. Explain each report: sites, posting chains, category criteria.
    println!("--- explanations ---");
    for cr in analysis.representatives() {
        print!("{}", explain(&analysis, &cr.race));
    }

    // 2. Coverage triage: the flag race covers the three payload races.
    let coverage = race_coverage(&analysis);
    println!("--- coverage triage ---");
    println!(
        "{} reports → {} root cause(s), {} covered",
        coverage.total(),
        coverage.roots.len(),
        coverage.covered.len()
    );
    let names = analysis.trace().names();
    for root in &coverage.roots {
        println!("  root: {}", names.loc_name(root.race.loc));
    }
    for (covered, by) in &coverage.covered {
        println!(
            "  covered: {} (by root #{})",
            names.loc_name(covered.race.loc),
            by.map(|k| k.to_string()).unwrap_or_else(|| "?".into())
        );
    }
    assert_eq!(coverage.roots.len(), 1, "one root cause: the ready flag");
    assert_eq!(
        names.field_name(coverage.roots[0].race.loc.field),
        "ready"
    );

    // 3. Graphviz export for visual inspection.
    let dot = to_dot(&analysis);
    let path = std::env::temp_dir().join("droidracer_debugging_tour.dot");
    std::fs::write(&path, &dot).expect("write dot file");
    println!("--- graph ---");
    println!(
        "happens-before graph ({} nodes) written to {}",
        analysis.hb().graph().node_count(),
        path.display()
    );
}
